"""Spatial-subsystem perf benchmarks: seed vs fast paths at n in {100, 500, 1000}.

Each test measures a hot query against a faithful seed re-implementation
(see :mod:`repro.experiments.perfbench`), which asserts fast-path/seed
parity before timing.  In the default suite the speed assertions are a
loose sanity floor (the fast path must not lose to the seed) so a loaded
machine cannot flake the tier-1 run; set ``REPRO_PERF_STRICT=1`` to
enforce the real targets locally.  The committed perf trajectory lives
in ``BENCH_perf.json`` (regenerate with ``python benchmarks/run_perf.py``).
"""

import os

import pytest

from repro.experiments.perfbench import (
    measure_coverage,
    measure_cpvf_period,
    measure_neighbor_table,
)

SIZES = (100, 500, 1000)

#: Loose default floor vs strict local target for n >= 500.
_MIN_SPEEDUP = 2.5 if os.environ.get("REPRO_PERF_STRICT") == "1" else 1.2


@pytest.mark.perf
@pytest.mark.parametrize("n", SIZES)
def test_perf_neighbor_table(n):
    result = measure_neighbor_table(n, repeats=5)
    print(
        f"\nneighbor_table n={n}: seed={result['seed_ms']:.2f} ms "
        f"fast={result['fast_ms']:.2f} ms ({result['speedup']:.1f}x)"
    )
    if n >= 500:
        assert result["speedup"] >= _MIN_SPEEDUP


@pytest.mark.perf
@pytest.mark.parametrize("n", SIZES)
def test_perf_cpvf_period(n):
    result = measure_cpvf_period(n, periods=4)
    print(
        f"\ncpvf_period n={n}: seed={result['seed_ms']:.2f} ms "
        f"fast={result['fast_ms']:.2f} ms ({result['speedup']:.1f}x)"
    )
    if n >= 500:
        assert result["speedup"] >= _MIN_SPEEDUP


@pytest.mark.perf
@pytest.mark.parametrize("n", SIZES)
def test_perf_coverage(n):
    result = measure_coverage(n, rounds=3)
    print(
        f"\ncoverage n={n}: seed={result['seed_ms']:.2f} ms "
        f"fast={result['fast_ms']:.2f} ms ({result['speedup']:.1f}x)"
    )
    if n >= 500:
        assert result["speedup"] >= _MIN_SPEEDUP
