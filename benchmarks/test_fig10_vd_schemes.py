"""Figure 10 benchmark: FLOOR vs VOR vs Minimax as ``rc/rs`` varies.

Shape to reproduce: the VD-based schemes leave the network disconnected for
small ``rc/rs`` and only build correct Voronoi cells once ``rc/rs`` is
large, while FLOOR stays connected throughout; with a large ``rc/rs`` the
VD schemes become competitive in coverage.
"""

import pytest

from repro.experiments.fig10 import format_fig10, run_fig10


@pytest.mark.benchmark(group="fig10")
def test_fig10_vd_schemes(benchmark, sweep_scale, run_once):
    rows = run_once(
        benchmark,
        run_fig10,
        sweep_scale,
        ratios=[1.0, 2.0, 4.0],
        vd_rounds=5,
        seed=1,
    )
    print()
    print(format_fig10(rows))

    def row(scheme, ratio):
        return next(r for r in rows if r.scheme == scheme and r.ratio == ratio)

    # FLOOR rows exist for every ratio and report sane coverage.
    assert all(0.0 <= r.coverage <= 1.0 for r in rows)
    # The VD schemes' Voronoi cells are more often correct at rc/rs = 4 than
    # at rc/rs = 1 (the "Incorrect VD" annotation of the paper).
    vor_small = row("VOR", 1.0)
    vor_large = row("VOR", 4.0)
    assert (not vor_small.all_voronoi_cells_correct) or vor_large.all_voronoi_cells_correct
    # Coverage of the VD schemes does not degrade when rc/rs grows.
    assert vor_large.coverage >= vor_small.coverage - 0.05
