"""Ablation benchmark: FLOOR's expansion-priority ordering (Section 5.5.1).

FLOOR ranks floor-line-guided (FLG) expansion above boundary-guided (BLG)
and inter-floor (IFLG) infill because frontier points improve coverage most
per relocation.  The ablation compares the default priority ordering with a
variant that advertises every expansion point indiscriminately.
"""

import pytest

from repro.core import FloorScheme
from repro.experiments.common import make_config, make_world
from repro.sim import SimulationEngine


class _NoPriorityFloor(FloorScheme):
    """FLOOR variant that does not rank expansion kinds against each other."""

    name = "FLOOR-no-priority"

    def _run_expansion_round(self, world):  # noqa: D102
        # Temporarily neutralise the priority filter by monkeypatching the
        # kind comparison: keep every expansion point that was discovered.
        original = FloorScheme._run_expansion_round
        # Re-implement the round without the highest-priority-only filter.
        assert self._expansion is not None and self._registry is not None
        assert self._invitations is not None
        from repro.sensors import SensorState

        expansion_points = []
        exhausted = []
        for searcher_id in sorted(self._active_searchers):
            position = self._searcher_position(world, searcher_id)
            if position is None:
                exhausted.append(searcher_id)
                continue
            points = self._expansion.expansion_points(searcher_id, position)
            if not points:
                exhausted.append(searcher_id)
                continue
            expansion_points.extend(points)
        for searcher_id in exhausted:
            self._active_searchers.discard(searcher_id)
        if not expansion_points:
            return
        movable = [
            s
            for s in world.sensors
            if s.state is SensorState.MOVABLE and s.sensor_id not in self._relocations
        ]
        assignments = self._invitations.run_round(
            expansion_points, movable, len(world.connected_sensor_ids()), world.tree
        )
        for assignment in assignments:
            self._start_relocation(world, assignment.movable_id, assignment.expansion_point)


def _coverage(scheme_cls, scale, seed):
    config = make_config(scale, communication_range=60.0, sensing_range=40.0, seed=seed)
    world = make_world(config, scale)
    result = SimulationEngine(world, scheme_cls()).run()
    return result.final_coverage


@pytest.mark.benchmark(group="ablation")
def test_expansion_priority_helps_coverage(benchmark, sweep_scale, run_once):
    def run_pair():
        prioritised = _coverage(FloorScheme, sweep_scale, seed=6)
        unprioritised = _coverage(_NoPriorityFloor, sweep_scale, seed=6)
        return prioritised, unprioritised

    prioritised, unprioritised = run_once(benchmark, run_pair)
    print()
    print(f"coverage: prioritised={prioritised:.1%}, unprioritised={unprioritised:.1%}")
    # Prioritising frontier expansion should not hurt coverage.
    assert prioritised >= unprioritised - 0.05
