"""Figure 3 benchmark: CPVF coverage in the three canonical scenarios.

Paper values (full scale): (a) 74.5 %, (b) 26.4 %, (c) 37.1 %.  The shape
to reproduce: coverage collapses when ``rc < rs`` and obstacles trap the
population; absolute values at reduced scale differ.
"""

import pytest

from repro.experiments.fig3 import format_fig3, run_fig3


@pytest.mark.benchmark(group="fig3")
def test_fig3_cpvf_scenarios(benchmark, bench_scale, run_once):
    rows = run_once(benchmark, run_fig3, bench_scale, seed=1)
    print()
    print(format_fig3(rows))
    by_case = {r.scenario: r for r in rows}
    # Scenario (b) (small rc) must be the worst of the three.
    assert by_case["b"].coverage < by_case["a"].coverage
    # All runs produce sane coverage values.
    assert all(0.0 < r.coverage <= 1.0 for r in rows)
