#!/usr/bin/env python
"""Regenerate the repo-root ``BENCH_perf.json`` perf trajectory.

Usage (from the repo root)::

    python benchmarks/run_perf.py                      # full suite
    python benchmarks/run_perf.py --only cpvf_period   # one entry only
    python benchmarks/run_perf.py --only cpvf_period --n 2000 10000
    python benchmarks/run_perf.py --only cpvf_period --n 100000
    python benchmarks/run_perf.py --list               # entry names

Runs the spatial-subsystem benchmarks (neighbor-table build, CPVF
periods, coverage re-measurement) plus the sweep-throughput,
scenario-generation and batched-CPVF entries, asserting fast-path/seed
parity (or batched/sequential convergence) while timing, and writes the
results next to this repository's README so future PRs can track the
perf trajectory.

``--only ENTRY [ENTRY ...]`` regenerates a subset of entries and merges
them into the existing ``BENCH_perf.json`` — the untouched entries are
preserved verbatim, so one noisy row can be re-measured without paying
for the whole suite.  ``--n N [N ...]`` overrides the population sizes
of the per-population entries (``neighbor_table``, ``cpvf_period``,
``coverage``); without it, ``cpvf_period`` runs the classic sizes
(100/500/1000, seed vs vectorized) plus the three-mode scale rows
(2000/5000/10000, seed vs vectorized vs batched).  Sizes beyond 20000
(e.g. ``--n 100000``) skip the seed algorithm (``seed_ms`` is null) and
grow the field with sqrt(n) so density matches the n = 10^4 row.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.perfbench import PERF_ENTRIES, run_perf_suite  # noqa: E402

OUT_PATH = REPO_ROOT / "BENCH_perf.json"


def _merge_entry(old, new):
    """Merge regenerated rows into a committed entry, row by row.

    Per-population entries are lists of row dicts keyed by
    ``(n, layout)``; a partial regeneration (``--only ... --n ...``)
    replaces only the re-measured rows and keeps the other committed
    rows, so re-running one noisy row cannot drop its siblings.  Entries
    that are not keyed row lists are replaced wholesale.
    """
    def row_key(row):
        return (row["n"], row.get("layout", ""))

    if not (
        isinstance(old, list)
        and isinstance(new, list)
        and all(isinstance(r, dict) and "n" in r for r in old + new)
    ):
        return new
    rows = {row_key(row): row for row in old}
    rows.update({row_key(row): row for row in new})
    return [rows[key] for key in sorted(rows)]


def _print_results(results: dict) -> None:
    for section in ("neighbor_table", "cpvf_period", "coverage"):
        for row in results.get(section, ()):
            layout = f" {row['layout']}" if "layout" in row else ""
            extra = ""
            if "batched_ms" in row:
                extra = (
                    f" batched={row['batched_ms']:.2f} ms"
                    f" ({row['speedup_vs_vectorized']:.1f}x vs vectorized)"
                )
            if row.get("phases_ms"):
                top = max(row["phases_ms"], key=row["phases_ms"].get)
                extra += f" [top phase {top}={row['phases_ms'][top]:.1f} ms]"
            # seed_ms / speedup are None on rows too large to run the
            # seed algorithm at all (n > 20000).
            if row.get("seed_ms") is None:
                seed_part = "seed=skipped"
            else:
                seed_part = (
                    f"seed={row['seed_ms']:.2f} ms"
                )
            speedup_part = (
                ""
                if row.get("speedup") is None
                else f" ({row['speedup']:.1f}x)"
            )
            print(
                f"{section}{layout} n={row['n']}: "
                f"{seed_part} fast={row['fast_ms']:.2f} ms"
                f"{speedup_part}{extra}"
            )
    for row in results.get("telemetry_overhead", ()):
        print(
            f"telemetry_overhead n={row['n']}: "
            f"untraced={row['untraced_ms']:.2f} ms "
            f"traced={row['traced_ms']:.2f} ms "
            f"(+{row['overhead_pct']:.1f}%)"
        )
    for row in results.get("cpvf_convergence", ()):
        print(
            f"cpvf_convergence {row['scenario']} n={row['n']}: "
            f"sequential={row['sequential_coverage']:.4f} "
            f"batched={row['batched_coverage']:.4f} "
            f"(gap {row['abs_gap']:.4f})"
        )
    for row in results.get("sweep_throughput", ()):
        print(
            f"sweep_throughput runs={row['runs']}: "
            f"serial={row['seed_ms']:.0f} ms jobs={row['jobs']}"
            f"={row['fast_ms']:.0f} ms ({row['speedup']:.1f}x)"
        )
    for row in results.get("sweep_service", ()):
        print(
            f"sweep_service clients={row['clients']} "
            f"cells={row['cells_requested']} "
            f"(unique={row['unique_cells']}): "
            f"cold={row['cold_runs_per_s']:.1f} runs/s "
            f"(hit rate {row['cold_hit_rate']:.0%}) "
            f"warm={row['warm_runs_per_s']:.1f} runs/s "
            f"(hit rate {row['warm_hit_rate']:.0%})"
        )
    for row in results.get("scenario_generation", ()):
        print(
            f"scenario_generation {row['layout']} @ {row['size']:.0f} m: "
            f"{row['gen_ms']:.1f} ms/scenario "
            f"({row['scenarios_per_s']:.0f}/s)"
        )
    for row in results.get("lifecycle_recovery", ()):
        ttr = row["time_to_recover"]
        print(
            f"lifecycle_recovery {row['scheme']} n={row['n']}: "
            f"run={row['run_ms']:.0f} ms "
            f"recovery={row['recovery_ratio']:.1%} "
            f"t-recover={'-' if ttr is None else ttr} "
            f"extra={row['extra_distance']:.0f} m"
        )
    for row in results.get("degraded_coverage", ()):
        print(
            f"degraded_coverage {row['scheme']} n={row['n']} "
            f"loss={row['loss']:.0%}: run={row['run_ms']:.0f} ms "
            f"retained={row['coverage_ratio']:.1%} "
            f"overhead={row['message_overhead']:.2f}x "
            f"(dropped={row['net_dropped']} retries={row['net_retries']} "
            f"timeouts={row['net_timeouts']})"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate (parts of) BENCH_perf.json"
    )
    parser.add_argument(
        "--only",
        nargs="+",
        metavar="ENTRY",
        default=None,
        help="regenerate only these entries and merge into the existing file",
    )
    parser.add_argument(
        "--n",
        nargs="+",
        type=int,
        metavar="N",
        default=None,
        help="population sizes for the per-population entries",
    )
    parser.add_argument(
        "--seed", type=int, default=3, help="benchmark seed (default 3)"
    )
    parser.add_argument(
        "--list", action="store_true", help="list entry names and exit"
    )
    args = parser.parse_args(argv)
    if args.list:
        for name in PERF_ENTRIES:
            print(name)
        return 0

    results = run_perf_suite(ns=args.n, seed=args.seed, only=args.only)
    if args.only and OUT_PATH.exists():
        merged = json.loads(OUT_PATH.read_text())
        for key, value in results.items():
            merged[key] = _merge_entry(merged.get(key), value)
        results = merged
    results["python"] = platform.python_version()
    results["machine"] = platform.machine()
    # Host metadata: timings are only comparable across PRs measured on
    # the same class of machine, so pin what the numbers were taken on.
    results["host"] = {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
    }
    OUT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")
    _print_results(results)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
