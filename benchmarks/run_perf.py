#!/usr/bin/env python
"""Regenerate the repo-root ``BENCH_perf.json`` perf trajectory.

Usage (from the repo root)::

    python benchmarks/run_perf.py

Runs the spatial-subsystem benchmarks (neighbor-table build, one full
CPVF period, coverage re-measurement) at n in {100, 500, 1000}, asserting
fast-path/seed parity while timing, plus the sweep-throughput entry
(serial vs process-sharded ``SweepRunner``, asserting record equality),
and writes the results next to this repository's README so future PRs can
track the perf trajectory.
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.perfbench import run_perf_suite  # noqa: E402


def main() -> None:
    results = run_perf_suite()
    results["python"] = platform.python_version()
    results["machine"] = platform.machine()
    out = REPO_ROOT / "BENCH_perf.json"
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out}")
    for section in ("neighbor_table", "cpvf_period", "coverage"):
        for row in results[section]:
            layout = f" {row['layout']}" if "layout" in row else ""
            print(
                f"{section}{layout} n={row['n']}: "
                f"seed={row['seed_ms']:.2f} ms fast={row['fast_ms']:.2f} ms "
                f"({row['speedup']:.1f}x)"
            )
    for row in results["sweep_throughput"]:
        print(
            f"sweep_throughput runs={row['runs']}: "
            f"serial={row['seed_ms']:.0f} ms jobs={row['jobs']}"
            f"={row['fast_ms']:.0f} ms ({row['speedup']:.1f}x)"
        )
    for row in results["scenario_generation"]:
        print(
            f"scenario_generation {row['layout']} @ {row['size']:.0f} m: "
            f"{row['gen_ms']:.1f} ms/scenario "
            f"({row['scenarios_per_s']:.0f}/s)"
        )


if __name__ == "__main__":
    main()
