"""Shared configuration for the benchmark harness.

Every benchmark regenerates (a scaled-down version of) one of the paper's
tables or figures.  The benchmarks default to reduced scales so the whole
suite finishes on a laptop; set the environment variable
``REPRO_BENCH_SCALE=full`` to run the paper's exact parameters (expect a
multi-hour run for the sweep figures).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import BENCH_SCALE, FULL_SCALE, SMOKE_SCALE, ExperimentScale


def _selected_scale() -> ExperimentScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "bench").lower()
    return {"full": FULL_SCALE, "bench": BENCH_SCALE, "smoke": SMOKE_SCALE}.get(
        name, BENCH_SCALE
    )


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    """Scale used by single-run benchmarks (Fig 3 / Fig 8 scenarios)."""
    return _selected_scale()


@pytest.fixture(scope="session")
def sweep_scale() -> ExperimentScale:
    """Smaller scale used by the sweep benchmarks (Figs 9-13, Table 1)."""
    if os.environ.get("REPRO_BENCH_SCALE", "").lower() == "full":
        return FULL_SCALE
    return SMOKE_SCALE


@pytest.fixture(scope="session")
def run_once():
    """Run a workload exactly once under pytest-benchmark timing.

    Provided as a fixture (not a module-level helper) so benchmark modules
    need no imports from this conftest: relative imports fail under plain
    rootdir collection (``python -m pytest`` from the repo root) because
    ``benchmarks`` is not a package.
    """

    def _run_once(benchmark, func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return _run_once
