"""Table 1 benchmark: FLOOR's protocol message overhead.

Shape to reproduce: the total number of protocol messages grows roughly
linearly with the invitation TTL and mildly with the network size, in both
the obstacle-free and the two-obstacle environment.
"""

import pytest

from repro.experiments.table1 import format_table1, run_table1


@pytest.mark.benchmark(group="table1")
def test_table1_message_overhead(benchmark, sweep_scale, run_once):
    rows = run_once(
        benchmark,
        run_table1,
        sweep_scale,
        sensor_counts=[120, 240],
        ttl_fractions=[0.1, 0.4],
        environments=["non-obstacle", "two-obstacle"],
        seed=1,
    )
    print()
    print(format_table1(rows))

    def total(environment, count, fraction):
        return next(
            r.total_messages
            for r in rows
            if r.environment == environment
            and r.sensor_count == count
            and r.ttl_fraction == fraction
        )

    # A larger TTL means more invitation transmissions.
    assert total("non-obstacle", 240, 0.4) > total("non-obstacle", 240, 0.1)
    assert total("two-obstacle", 240, 0.4) > total("two-obstacle", 240, 0.1)
    # Every configuration transmits a non-trivial number of messages.
    assert all(r.total_messages > 0 for r in rows)
    assert all(r.messages_per_node > 0 for r in rows)
