#!/usr/bin/env python
"""CI network smoke: the unreliable-network backend under 10% loss.

Runs both paper schemes at the smoke scale on the same scenario twice —
once on the perfect network and once at 10% per-message loss with the
default retry budget — and gates on the robustness contract: each scheme
must retain at least 85% of its own perfect-network coverage, and the
degraded run must surface non-zero ``net.*`` telemetry (proof the loss
model actually engaged).  A second, advisory check reads the committed
``degraded_coverage`` entry of ``BENCH_perf.json`` and re-asserts the
same contract on the bench-scale numbers; a missing entry skips that
check rather than failing, so the gate works on branches that predate
the entry.

Exit codes: 0 when every scheme holds the contract, 1 otherwise.
"""

from __future__ import annotations

import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

BENCH_PATH = REPO_ROOT / "BENCH_perf.json"
SCHEMES = ("CPVF", "FLOOR")
LOSS = 0.1
MIN_RATIO = 0.85


def check_bench_entry() -> bool:
    """Advisory re-check of the committed bench-scale numbers."""
    if not BENCH_PATH.exists():
        print("network-smoke: BENCH_perf.json missing, skipping bench check")
        return True
    rows = json.loads(BENCH_PATH.read_text()).get("degraded_coverage")
    if not rows:
        print(
            "network-smoke: no degraded_coverage entry in BENCH_perf.json, "
            "skipping bench check"
        )
        return True
    ok = True
    for row in rows:
        ratio = row["coverage_ratio"]
        verdict = "ok" if ratio >= MIN_RATIO else "FAIL"
        print(
            f"network-smoke: bench {row['scheme']} {verdict} "
            f"(retained {ratio:.1%} at {row['loss']:.0%} loss)"
        )
        ok = ok and ratio >= MIN_RATIO
    return ok


def main() -> int:
    from repro.api import NetworkSpec, RunSpec, execute_run
    from repro.experiments import SMOKE_SCALE, make_scenario

    scenario = make_scenario(SMOKE_SCALE, seed=1)
    network = NetworkSpec(model="unreliable", loss=LOSS)
    failures = []
    for scheme in SCHEMES:
        try:
            perfect = execute_run(RunSpec(scenario=scenario, scheme=scheme))
            degraded = execute_run(
                RunSpec(
                    scenario=scenario,
                    scheme=scheme,
                    network=network,
                    profile=True,
                )
            )
        except Exception as exc:  # noqa: BLE001 - the gate reports, CI fails
            print(f"network-smoke: {scheme} CRASH ({exc!r})")
            failures.append(scheme)
            continue
        ratio = (
            degraded.coverage / perfect.coverage if perfect.coverage > 0 else 0.0
        )
        counters = (
            degraded.telemetry.counters if degraded.telemetry is not None else {}
        )
        dropped = counters.get("net.dropped", 0)
        ok = ratio >= MIN_RATIO and dropped > 0
        verdict = "ok" if ok else "FAIL"
        print(
            f"network-smoke: {scheme} {verdict} "
            f"(perfect={perfect.coverage:.3f} degraded={degraded.coverage:.3f} "
            f"retained={ratio:.1%} dropped={dropped} "
            f"retries={counters.get('net.retries', 0)} "
            f"timeouts={counters.get('net.timeouts', 0)})"
        )
        if not ok:
            failures.append(scheme)
    if not check_bench_entry():
        failures.append("bench-entry")
    if failures:
        print(f"network-smoke: FAILED for {failures}")
        return 1
    print(f"network-smoke: both schemes retained >= {MIN_RATIO:.0%} at 10% loss")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
