"""Ablation benchmark: the lazy-movement strategy (Section 3.3).

Lazy movement lets a disconnected sensor pause behind a neighbour that is
closer to the base station, in the hope of saving its own walk.  The
ablation compares the moving distance spent establishing connectivity with
and without the strategy; lazy movement should not increase it.
"""

import pytest

from repro.core import CPVFScheme
from repro.core.lazy import LazyMovementController
from repro.experiments.common import make_config, make_world
from repro.sim import SimulationEngine


class _EagerController(LazyMovementController):
    """A controller that never waits: every sensor always walks itself."""

    def choose_path_parent(self, sensor, destination, neighbors):  # noqa: D102
        return None


class _LazyCPVF(CPVFScheme):
    """CPVF with the reference (scalar) force evaluation.

    The ablation isolates the lazy-movement strategy, so both variants run
    the seed-faithful sequential force path: the batched evaluation uses
    start-of-period positions, which perturbs trajectories enough to
    confound this margin-sensitive comparison at smoke scale.
    """

    def __init__(self):
        super().__init__(vectorized=False)


class _EagerCPVF(_LazyCPVF):
    """CPVF with lazy movement disabled."""

    name = "CPVF-no-lazy"

    def initialize(self, world):  # noqa: D102
        super().initialize(world)
        self._lazy = _EagerController(world.routing)


def _connectivity_distance(scheme_cls, scale, seed):
    # A small rc forces a real connectivity-establishment phase.
    config = make_config(scale, communication_range=30.0, sensing_range=40.0, seed=seed)
    world = make_world(config, scale)
    SimulationEngine(world, scheme_cls()).run()
    return world.average_moving_distance()


@pytest.mark.benchmark(group="ablation")
def test_lazy_movement_saves_distance(benchmark, sweep_scale, run_once):
    def run_pair():
        lazy = _connectivity_distance(_LazyCPVF, sweep_scale, seed=4)
        eager = _connectivity_distance(_EagerCPVF, sweep_scale, seed=4)
        return lazy, eager

    lazy, eager = run_once(benchmark, run_pair)
    print()
    print(f"average moving distance: lazy={lazy:.1f} m, eager={eager:.1f} m")
    # Lazy movement must not cost extra distance (it usually saves some).
    assert lazy <= eager * 1.1 + 1.0
