"""Figure 13 benchmark: CPVF vs FLOOR under random rectangular obstacles.

Shape to reproduce: over repeated random-obstacle deployments FLOOR's mean
coverage is higher and its mean moving distance lower than CPVF's (the
paper reports +20 coverage points and less than half the distance over 300
runs; the benchmark uses a handful of runs).
"""

import pytest

from repro.experiments.fig13 import format_fig13, run_fig13


@pytest.mark.benchmark(group="fig13")
def test_fig13_random_obstacles(benchmark, sweep_scale, run_once):
    repetitions = 2 if sweep_scale.repetitions <= 10 else sweep_scale.repetitions
    summary = run_once(benchmark, run_fig13, sweep_scale, repetitions=repetitions, seed=1)
    print()
    print(format_fig13(summary, cdf_points=4))

    assert len(summary.runs) == 2 * repetitions
    # FLOOR's moving distance advantage is robust even at reduced scale.
    assert summary.mean_distance("FLOOR") <= summary.mean_distance("CPVF")
    # Both schemes produce valid CDFs.
    assert summary.coverage_cdf("CPVF").values
    assert summary.coverage_cdf("FLOOR").values
