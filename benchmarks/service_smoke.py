#!/usr/bin/env python
"""CI service smoke: concurrent dedup, kill/resume, and store GC.

Three gates over the async sweep service (``repro.service``), each an
end-to-end property the unit tests can only approximate:

1. **Concurrent dedup** — two overlapping mini-sweeps submitted to one
   service must compute their shared cells exactly once (the in-flight
   dedup contract) and return records identical to ``SweepRunner(jobs=1)``.
2. **Kill / resume** — a ``python -m repro.service submit`` subprocess is
   SIGKILLed mid-sweep, leaving a genuinely partial store (the
   write-through guarantee); resubmitting the same sweep must recompute
   only the missing cells.
3. **Store GC** — entries under a stale schema version and orphaned
   ``.tmp`` files are reclaimed while every current entry survives.

Exit codes: 0 when all three gates hold, 1 otherwise.  See
``docs/service.md``.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Per-cell workload of the kill/resume sweep: large enough that a poll
#: loop reliably catches the subprocess between its first and last
#: write-through, small enough for a CI smoke budget.
KILL_SWEEP_CELLS = 6


def _scenario(duration: float):
    from repro.api import ScenarioSpec

    return ScenarioSpec(
        field_size=300.0,
        sensor_count=24,
        communication_range=60.0,
        sensing_range=40.0,
        duration=duration,
        coverage_resolution=15.0,
        seed=5,
    )


def check_concurrent_dedup() -> list:
    from repro.api import SweepRunner, SweepSpec
    from repro.service import SweepService

    scenario = _scenario(duration=20.0)
    sweep_a = SweepSpec.grid(
        "smoke-a", scenario, schemes=("CPVF",),
        axes={"communication_range": [40.0, 50.0]},
    )
    sweep_b = SweepSpec.grid(
        "smoke-b", scenario, schemes=("CPVF",),
        axes={"communication_range": [50.0, 60.0]},
    )
    serial = [SweepRunner(jobs=1).run(s) for s in (sweep_a, sweep_b)]

    async def drive():
        service = SweepService()
        try:
            jobs = [service.submit(s) for s in (sweep_a, sweep_b)]
            records = await asyncio.gather(*(j.result() for j in jobs))
            await service.drain()
            return records, service.metrics
        finally:
            service.close()

    records, metrics = asyncio.run(drive())
    failures = []
    if metrics.computed != 3:
        failures.append(
            f"dedup: computed {metrics.computed} cells, expected 3 "
            "(the shared rc=50 cell must ride the in-flight dedup)"
        )
    if metrics.inflight_hits != 1:
        failures.append(
            f"dedup: {metrics.inflight_hits} in-flight hits, expected 1"
        )
    if records != serial:
        failures.append("dedup: service records diverged from SweepRunner(jobs=1)")
    print(
        f"service-smoke: dedup {'FAIL' if failures else 'ok'} "
        f"(computed={metrics.computed} inflight_hits={metrics.inflight_hits} "
        f"hit_rate={metrics.cache_hit_rate():.0%})"
    )
    return failures


def check_kill_resume(tmp: pathlib.Path) -> list:
    from repro.api import SweepRunner, SweepSpec
    from repro.service import RunStore, SweepService

    scenario = _scenario(duration=60.0)
    sweep = SweepSpec.grid(
        "smoke-kill", scenario, schemes=("CPVF",),
        axes={"communication_range": [35.0, 40.0, 45.0, 50.0, 55.0, 60.0]},
    )
    assert len(sweep.runs) == KILL_SWEEP_CELLS
    sweep_path = tmp / "kill-sweep.json"
    sweep_path.write_text(json.dumps(sweep.to_dict()))
    store_root = tmp / "kill-store"

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service", "submit",
            str(sweep_path), "--store", str(store_root), "--quiet",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    # Kill the client the moment the store holds a strict subset of the
    # sweep: the write-through contract persists each cell as it
    # finishes, so this leaves a genuinely partial store.
    store = RunStore(store_root)
    deadline = time.monotonic() + 120.0
    partial = 0
    try:
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break
            partial = len(store)
            if 1 <= partial < KILL_SWEEP_CELLS:
                proc.send_signal(signal.SIGKILL)
                break
            time.sleep(0.01)
        proc.wait(timeout=120.0)
    finally:
        if proc.poll() is None:  # pragma: no cover - safety net
            proc.kill()
            proc.wait()
    partial = len(store)
    if not 1 <= partial < KILL_SWEEP_CELLS:
        print(
            f"service-smoke: kill/resume FAIL (store holds {partial}/"
            f"{KILL_SWEEP_CELLS} cells after SIGKILL; need a strict subset)"
        )
        return ["kill/resume: no partial store to resume from"]

    async def resume():
        service = SweepService(store=store)
        try:
            records = await service.run(sweep)
            await service.drain()
            return records, service.metrics
        finally:
            service.close()

    records, metrics = asyncio.run(resume())
    failures = []
    missing = KILL_SWEEP_CELLS - partial
    if metrics.computed != missing or metrics.store_hits != partial:
        failures.append(
            f"kill/resume: recomputed {metrics.computed} cells "
            f"({metrics.store_hits} store hits), expected exactly the "
            f"{missing} missing ones"
        )
    if records != SweepRunner(jobs=1).run(sweep):
        failures.append("kill/resume: resumed records diverged from serial run")
    print(
        f"service-smoke: kill/resume {'FAIL' if failures else 'ok'} "
        f"(killed at {partial}/{KILL_SWEEP_CELLS} cells, "
        f"recomputed {metrics.computed})"
    )
    return failures


def check_store_gc(tmp: pathlib.Path) -> list:
    from repro.service import RunStore

    store = RunStore(tmp / "kill-store")
    entries = len(store)
    # A stale schema version and an orphaned temp file are exactly what a
    # version bump / a crashed writer leave behind.
    record = store.load(next(iter(store.fingerprints())))
    RunStore(store.root, schema_version=0).put(record)
    shard = store.path_for(record.spec.fingerprint()).parent
    (shard / ".deadbeef.tmp").write_text("orphan")

    report = store.gc()
    failures = []
    if report.removed_files < 2:
        failures.append(
            f"gc: removed {report.removed_files} files, expected the stale "
            "version entry and the orphaned .tmp"
        )
    if len(store) != entries or report.kept_entries != entries:
        failures.append(
            f"gc: {len(store)} current entries survive (expected {entries})"
        )
    print(
        f"service-smoke: gc {'FAIL' if failures else 'ok'} "
        f"(removed {report.removed_files} files, kept {report.kept_entries})"
    )
    return failures


def main() -> int:
    failures = []
    with tempfile.TemporaryDirectory(prefix="service-smoke-") as tmpdir:
        tmp = pathlib.Path(tmpdir)
        failures += check_concurrent_dedup()
        failures += check_kill_resume(tmp)
        failures += check_store_gc(tmp)
    if failures:
        for failure in failures:
            print(f"service-smoke: {failure}")
        print("service-smoke: FAILED")
        return 1
    print("service-smoke: dedup + kill/resume + gc all hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
