"""Figure 9 benchmark: coverage of CPVF / FLOOR / OPT vs number of sensors.

Shape to reproduce: FLOOR >= CPVF across the sweep (most markedly at small
``rc/rs``), OPT upper-bounds both, and coverage grows with the number of
sensors.
"""

import pytest

from repro.experiments.fig9 import format_fig9, run_fig9


@pytest.mark.benchmark(group="fig9")
def test_fig9_coverage_sweep(benchmark, sweep_scale, run_once):
    rows = run_once(
        benchmark,
        run_fig9,
        sweep_scale,
        sensor_counts=[120, 240],
        range_pairs=[(20.0, 60.0), (60.0, 60.0)],
        seed=1,
    )
    print()
    print(format_fig9(rows))

    def coverage(scheme, count, rc):
        return next(
            r.coverage
            for r in rows
            if r.scheme == scheme and r.sensor_count == count and r.communication_range == rc
        )

    # More sensors never hurt the OPT pattern.
    assert coverage("OPT", 240, 60.0) >= coverage("OPT", 120, 60.0) - 1e-9
    # FLOOR handles the small-rc regime better than CPVF at the largest count.
    assert coverage("FLOOR", 240, 20.0) >= coverage("CPVF", 240, 20.0) - 0.02
    # OPT is the upper baseline for the large-rc configuration.
    assert coverage("OPT", 240, 60.0) >= coverage("FLOOR", 240, 60.0) - 0.05
