"""Figure 12 benchmark: oscillation avoidance for CPVF.

Shape to reproduce: enabling avoidance (smaller ``delta``) reduces the
moving distance, at some cost in coverage.
"""

import pytest

from repro.experiments.fig12 import format_fig12, run_fig12


@pytest.mark.benchmark(group="fig12")
def test_fig12_oscillation_avoidance(benchmark, sweep_scale, run_once):
    rows = run_once(
        benchmark,
        run_fig12,
        sweep_scale,
        deltas=[None, 2.0, 8.0],
        modes=["one-step", "two-step"],
        seed=1,
    )
    print()
    print(format_fig12(rows))

    plain = next(r for r in rows if r.delta is None)
    one_step_aggressive = next(
        r for r in rows if r.mode == "one-step" and r.delta == 2.0
    )
    # Aggressive avoidance reduces the moving distance.
    assert one_step_aggressive.average_moving_distance <= plain.average_moving_distance + 1e-6
    # Every configuration still produces usable coverage.
    assert all(r.coverage > 0.0 for r in rows)
