#!/usr/bin/env python
"""CI perf smoke: one n=500 batched CPVF period vs the committed budget.

Times a batched-mode CPVF period at n = 500 (clustered, the canonical
bench layout) and compares it with the committed ``cpvf_period`` n=500
``fast_ms`` row of ``BENCH_perf.json``.  The budget is deliberately
generous — ``3 x fast_ms`` — because hosted CI runners are noisy and
this gate exists to catch order-of-magnitude regressions (an
accidentally quadratic path, a lost cache), not timer jitter.

A second check drives the same configuration with telemetry installed
and asserts the *incremental pair maintenance* path actually engaged —
most timed periods must be answered from the maintained pair store
(``cpvf.pairs_repaired``) rather than rebuilt from scratch
(``cpvf.pairs_rebuilt``).  This catches a silent fall-back-to-rebuild
regression (an eligibility check accidentally failing, the store being
dropped every epoch) that the generous timing budget alone would let
through at n = 500.

Exit codes: 0 on pass *or* skip (no committed entry / unmeasurable),
1 only when the measured period exceeds the budget or the incremental
path never engaged.
"""

from __future__ import annotations

import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

N = 500
BUDGET_FACTOR = 3.0


def main() -> int:
    bench_path = REPO_ROOT / "BENCH_perf.json"
    if not bench_path.exists():
        print("perf-smoke: SKIP (no committed BENCH_perf.json)")
        return 0
    bench = json.loads(bench_path.read_text())
    row = next(
        (r for r in bench.get("cpvf_period", ()) if r.get("n") == N), None
    )
    if row is None or "fast_ms" not in row:
        print(f"perf-smoke: SKIP (no committed cpvf_period n={N} entry)")
        return 0

    from repro.experiments.perfbench import _timed_periods
    from repro.obs import Telemetry

    batched_s = _timed_periods(
        N, seed=3, fast=True, periods=4, mode="batched"
    )
    batched_ms = batched_s * 1000.0
    budget_ms = BUDGET_FACTOR * row["fast_ms"]
    verdict = "ok" if batched_ms <= budget_ms else "FAIL"
    print(
        f"perf-smoke: n={N} batched period {batched_ms:.2f} ms, "
        f"budget {budget_ms:.2f} ms (3 x committed fast_ms "
        f"{row['fast_ms']:.2f} ms) -> {verdict}"
    )
    if verdict != "ok":
        return 1

    tel = Telemetry()
    _timed_periods(
        N, seed=3, fast=True, periods=4, mode="batched", telemetry=tel
    )
    counters = tel.summary().counters
    repaired = counters.get("cpvf.pairs_repaired", 0)
    rebuilt = counters.get("cpvf.pairs_rebuilt", 0)
    # Drift accumulates toward the store's slack budget over the window,
    # so one mid-window rebuild is legitimate; the incremental path must
    # still dominate.
    incremental_ok = repaired >= 2 and repaired >= rebuilt
    print(
        f"perf-smoke: incremental pairs repaired={repaired} "
        f"rebuilt={rebuilt} -> {'ok' if incremental_ok else 'FAIL'}"
    )
    return 0 if incremental_ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
