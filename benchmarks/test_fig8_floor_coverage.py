"""Figure 8 benchmark: FLOOR coverage in the three canonical scenarios.

Paper values (full scale): (a) 78.8 %, (b) 46.2 %, (c) 72.5 %.  The shape
to reproduce: FLOOR degrades gracefully when ``rc < rs`` and expands past
obstacles, beating CPVF clearly in scenarios (b) and (c).
"""

import pytest

from repro.experiments.fig3 import run_fig3
from repro.experiments.fig8 import format_fig8, run_fig8


@pytest.mark.benchmark(group="fig8")
def test_fig8_floor_scenarios(benchmark, bench_scale, run_once):
    rows = run_once(benchmark, run_fig8, bench_scale, seed=1)
    print()
    print(format_fig8(rows))
    by_case = {r.scenario: r for r in rows}
    assert all(0.0 < r.coverage <= 1.0 for r in rows)
    # FLOOR's small-rc scenario keeps a usable fraction of its large-rc
    # coverage (the paper's 46.2 % vs 78.8 %), unlike CPVF's collapse.
    assert by_case["b"].coverage >= 0.4 * by_case["a"].coverage


@pytest.mark.benchmark(group="fig8")
def test_fig8_floor_beats_cpvf_at_small_rc(benchmark, bench_scale, run_once):
    """The headline Fig 3(b) vs Fig 8(b) comparison."""

    def run_pair():
        floor_rows = run_fig8(bench_scale, seed=1)
        cpvf_rows = run_fig3(bench_scale, seed=1)
        return floor_rows, cpvf_rows

    floor_rows, cpvf_rows = run_once(benchmark, run_pair)
    floor_b = next(r for r in floor_rows if r.scenario == "b")
    cpvf_b = next(r for r in cpvf_rows if r.scenario == "b")
    print()
    print(f"scenario (b): FLOOR {floor_b.coverage:.1%} vs CPVF {cpvf_b.coverage:.1%}")
    assert floor_b.coverage > cpvf_b.coverage
