"""Figure 11 benchmark: average moving distance of the six schemes.

Shape to reproduce: FLOOR moves far less than VOR/Minimax (whose explosion
dispersal dominates) and less than CPVF (which oscillates); the Hungarian
bound for FLOOR's own layout lower-bounds FLOOR's distance.
"""

import pytest

from repro.experiments.fig11 import format_fig11, run_fig11


@pytest.mark.benchmark(group="fig11")
def test_fig11_moving_distance(benchmark, sweep_scale, run_once):
    rows = run_once(benchmark, run_fig11, sweep_scale, vd_rounds=5, seed=1)
    print()
    print(format_fig11(rows))
    by_scheme = {r.scheme: r.average_moving_distance for r in rows}

    # CPVF's oscillation costs it more movement than FLOOR.
    assert by_scheme["CPVF"] > by_scheme["FLOOR"]
    # The Hungarian matching to FLOOR's own layout is a lower bound on what
    # FLOOR actually travelled.
    assert by_scheme["FLOOR-Hungarian"] <= by_scheme["FLOOR"] + 1e-6
    # All six schemes are present with non-negative distances.
    assert len(by_scheme) == 6
    assert all(d >= 0.0 for d in by_scheme.values())
