#!/usr/bin/env python
"""CI lifecycle smoke: tiny churn timelines against every scheme.

Runs a short mass-failure timeline (a 20% kill at 40% of the horizon) at
the smoke scale for CPVF, FLOOR and VOR.  The gate is deliberately loose —
it exists to catch structural breakage (a crash in the injector, the tree
repair, or a scheme's churn hook; an empty outcome list; zero recovery),
not to police recovery quality, which the test suite and the
``lifecycle_recovery`` entry of ``BENCH_perf.json`` already do.

Exit codes: 0 when every scheme survives its churn run with a positive
coverage recovery, 1 otherwise.
"""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

SCHEMES = ("CPVF", "FLOOR", "VOR")


def main() -> int:
    from repro.api import RunSpec, execute_run
    from repro.experiments import SMOKE_SCALE, make_scenario
    from repro.experiments.lifecycle import lifecycle_events

    events = lifecycle_events("mass-failure", SMOKE_SCALE)
    failures = []
    for scheme in SCHEMES:
        scenario = make_scenario(SMOKE_SCALE, seed=1, events=events)
        try:
            record = execute_run(RunSpec(scenario=scenario, scheme=scheme))
        except Exception as exc:  # noqa: BLE001 - the gate reports, CI fails
            print(f"lifecycle-smoke: {scheme} CRASH ({exc!r})")
            failures.append(scheme)
            continue
        if not record.events:
            print(f"lifecycle-smoke: {scheme} FAIL (no event outcomes)")
            failures.append(scheme)
            continue
        outcome = record.events[0]
        recovered = outcome.best_coverage - outcome.post_coverage
        verdict = "ok" if recovered > 0.0 else "FAIL"
        print(
            f"lifecycle-smoke: {scheme} {verdict} "
            f"(pre={outcome.pre_coverage:.3f} post={outcome.post_coverage:.3f} "
            f"best={outcome.best_coverage:.3f} "
            f"recovery={outcome.recovery_ratio:.1%})"
        )
        if recovered <= 0.0:
            failures.append(scheme)
    if failures:
        print(f"lifecycle-smoke: FAILED for {failures}")
        return 1
    print("lifecycle-smoke: all schemes recovered coverage after churn")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
