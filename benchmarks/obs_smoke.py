#!/usr/bin/env python
"""CI observability smoke: profiled-run round-trip, report CLI, overhead.

Three gates over the telemetry subsystem (``repro.obs``):

1. **Profiled round-trip** — a profiled ``execute_run`` must attach a
   ``TelemetrySummary`` with engine phases and deterministic counters,
   survive a JSON round-trip through ``RunRecord.to_dict``, and leave the
   spec fingerprint identical to the unprofiled run (profiling must never
   split the store's cache cells).
2. **Report CLI** — a JSONL trace exported from the profiled record must
   render through ``python -m repro.obs report`` without error.
3. **Overhead** — the committed ``telemetry_overhead`` entry of
   ``BENCH_perf.json`` must show the null-sink traced batched CPVF period
   within ``MAX_COMMITTED_OVERHEAD_PCT`` of the untraced one, and a fresh
   traced measurement at n = 500 must stay within a generous CI budget of
   both the fresh untraced period and the committed ``fast_ms``.

Exit codes: 0 on pass *or* skip (no committed entry), 1 on failure.  See
``docs/observability.md``.
"""

from __future__ import annotations

import io
import json
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

N = 500
#: The contract asserted when BENCH_perf.json was generated on the quiet
#: bench host; re-checked here so a regenerated entry cannot silently
#: commit a regression.
MAX_COMMITTED_OVERHEAD_PCT = 5.0
#: Fresh-measurement budget factor — hosted CI runners are noisy, so the
#: live gate only catches order-of-magnitude instrumentation regressions.
CI_BUDGET_FACTOR = 3.0


def check_profiled_roundtrip() -> list:
    from repro.api import RunRecord, RunSpec, ScenarioSpec, execute_run

    scenario = ScenarioSpec(
        field_size=300.0,
        sensor_count=24,
        communication_range=60.0,
        sensing_range=40.0,
        duration=20.0,
        coverage_resolution=15.0,
        seed=5,
    )
    plain_spec = RunSpec(scenario=scenario, scheme="CPVF", trace_every=2)
    profiled_spec = RunSpec(
        scenario=scenario, scheme="CPVF", trace_every=2, profile=True
    )
    failures = []
    if plain_spec.fingerprint() != profiled_spec.fingerprint():
        failures.append("round-trip: profile=True changed the fingerprint")

    record = execute_run(profiled_spec)
    summary = record.telemetry
    if summary is None:
        failures.append("round-trip: profiled record has no telemetry")
        return failures, record
    if "engine.scheme_step" not in summary.phases:
        failures.append(
            "round-trip: summary lacks the engine.scheme_step phase "
            f"(has {sorted(summary.phases)})"
        )
    if summary.counters.get("engine.periods", 0) <= 0:
        failures.append("round-trip: engine.periods counter missing/zero")
    restored = RunRecord.from_dict(json.loads(json.dumps(record.to_dict())))
    if restored.telemetry != summary:
        failures.append("round-trip: TelemetrySummary did not survive JSON")

    plain = execute_run(plain_spec)
    if plain.telemetry is not None:
        failures.append("round-trip: unprofiled record carries telemetry")
    if plain.coverage != record.coverage:
        failures.append("round-trip: profiling changed the simulation result")
    print(
        f"obs-smoke: round-trip {'FAIL' if failures else 'ok'} "
        f"(phases={len(summary.phases)} counters={len(summary.counters)})"
    )
    return failures, record


def check_report_cli(record) -> list:
    from repro.obs.report import write_record_trace

    buffer = io.StringIO()
    lines = write_record_trace(buffer, [record])
    proc = subprocess.run(
        [sys.executable, "-m", "repro.obs", "report", "-"],
        input=buffer.getvalue(),
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src")},
    )
    failures = []
    if proc.returncode != 0:
        failures.append(f"report: CLI exited {proc.returncode}: {proc.stderr}")
    elif "phase breakdown" not in proc.stdout:
        failures.append("report: CLI output missing the phase table")
    print(
        f"obs-smoke: report CLI {'FAIL' if failures else 'ok'} "
        f"({lines} trace lines)"
    )
    return failures


def check_overhead() -> list:
    bench_path = REPO_ROOT / "BENCH_perf.json"
    if not bench_path.exists():
        print("obs-smoke: overhead SKIP (no committed BENCH_perf.json)")
        return []
    bench = json.loads(bench_path.read_text())
    entry = next(iter(bench.get("telemetry_overhead", ())), None)
    if entry is None:
        print("obs-smoke: overhead SKIP (no committed telemetry_overhead entry)")
        return []

    failures = []
    if entry["overhead_pct"] > MAX_COMMITTED_OVERHEAD_PCT:
        failures.append(
            f"overhead: committed entry shows {entry['overhead_pct']:.1f}% "
            f"null-sink overhead (contract: <= {MAX_COMMITTED_OVERHEAD_PCT}%)"
        )

    from repro.experiments.perfbench import _timed_periods
    from repro.obs import Telemetry

    untraced_ms = 1000.0 * min(
        _timed_periods(N, seed=3, fast=True, periods=4, mode="batched")
        for _ in range(2)
    )
    traced_ms = 1000.0 * min(
        _timed_periods(
            N, seed=3, fast=True, periods=4, mode="batched",
            telemetry=Telemetry(),
        )
        for _ in range(2)
    )
    budget_ms = CI_BUDGET_FACTOR * untraced_ms
    row = next(
        (r for r in bench.get("cpvf_period", ()) if r.get("n") == N), None
    )
    if row is not None and "fast_ms" in row:
        budget_ms = min(budget_ms, CI_BUDGET_FACTOR * row["fast_ms"])
    if traced_ms > budget_ms:
        failures.append(
            f"overhead: traced n={N} batched period {traced_ms:.2f} ms "
            f"exceeds CI budget {budget_ms:.2f} ms"
        )
    print(
        f"obs-smoke: overhead {'FAIL' if failures else 'ok'} "
        f"(committed +{entry['overhead_pct']:.1f}%; fresh n={N} "
        f"untraced={untraced_ms:.2f} ms traced={traced_ms:.2f} ms)"
    )
    return failures


def main() -> int:
    failures, record = check_profiled_roundtrip()
    failures = list(failures)
    if record.telemetry is not None:
        failures += check_report_cli(record)
    failures += check_overhead()
    if failures:
        for failure in failures:
            print(f"obs-smoke: {failure}", file=sys.stderr)
        return 1
    print("obs-smoke: all gates ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
