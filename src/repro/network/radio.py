"""Unit-disk radio model and neighbour tables.

The paper models communication as an isotropic unit disk of radius ``rc``:
two sensors are neighbours exactly when their distance is at most ``rc``.
Obstacles block *movement* and *sensing* but the paper does not model radio
shadowing, so by default neither do we; an optional flag enables line-of-
sight blocking for sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set

import numpy as np

from ..field import Field
from ..geometry import Segment, Vec2
from ..sensors import Sensor

__all__ = ["Radio"]


@dataclass
class Radio:
    """Computes neighbour relations among sensors (plus the base station).

    Parameters
    ----------
    field:
        The deployment field (used only when ``line_of_sight`` is enabled).
    line_of_sight:
        When ``True``, two nodes are neighbours only if the straight segment
        between them does not cross an obstacle.  The paper's experiments use
        the plain unit-disk model (``False``).
    """

    field: Field
    line_of_sight: bool = False

    # ------------------------------------------------------------------
    # Pairwise link predicate
    # ------------------------------------------------------------------
    def link_exists(self, a: Vec2, b: Vec2, communication_range: float) -> bool:
        """Whether two positions can communicate directly."""
        if a.distance_to(b) > communication_range + 1e-9:
            return False
        if self.line_of_sight and self.field.segment_blocked(Segment(a, b)):
            return False
        return True

    # ------------------------------------------------------------------
    # Neighbour tables
    # ------------------------------------------------------------------
    def neighbor_table(self, sensors: Sequence[Sensor]) -> Dict[int, List[int]]:
        """Neighbour lists keyed by sensor id.

        Uses a vectorised distance computation; the per-sensor communication
        ranges may differ (the paper uses a common ``rc`` but the library
        does not require it).
        """
        ids = [s.sensor_id for s in sensors]
        if not ids:
            return {}
        xs = np.array([s.position.x for s in sensors])
        ys = np.array([s.position.y for s in sensors])
        rcs = np.array([s.communication_range for s in sensors])
        dx = xs[:, None] - xs[None, :]
        dy = ys[:, None] - ys[None, :]
        dist = np.sqrt(dx * dx + dy * dy)
        table: Dict[int, List[int]] = {i: [] for i in ids}
        n = len(sensors)
        for i in range(n):
            within = np.flatnonzero(dist[i] <= rcs[i] + 1e-9)
            for j in within:
                if j == i:
                    continue
                if self.line_of_sight and self.field.segment_blocked(
                    Segment(sensors[i].position, sensors[j].position)
                ):
                    continue
                table[ids[i]].append(ids[int(j)])
        return table

    def neighbors_of_point(
        self,
        point: Vec2,
        sensors: Iterable[Sensor],
        communication_range: float,
    ) -> List[int]:
        """IDs of sensors within ``communication_range`` of a point.

        Used for base-station adjacency (the base station is a point, not a
        :class:`Sensor`).
        """
        result: List[int] = []
        for s in sensors:
            if self.link_exists(point, s.position, communication_range):
                result.append(s.sensor_id)
        return result

    # ------------------------------------------------------------------
    # Whole-network connectivity
    # ------------------------------------------------------------------
    def connected_component_of(
        self,
        sensors: Sequence[Sensor],
        base_station: Vec2,
        communication_range: float,
    ) -> Set[int]:
        """Sensors reachable from the base station via multi-hop links."""
        table = self.neighbor_table(sensors)
        by_id = {s.sensor_id: s for s in sensors}
        frontier = list(
            self.neighbors_of_point(base_station, sensors, communication_range)
        )
        reached: Set[int] = set(frontier)
        while frontier:
            current = frontier.pop()
            for nxt in table.get(current, []):
                if nxt not in reached:
                    reached.add(nxt)
                    frontier.append(nxt)
        return reached

    def network_is_connected(
        self,
        sensors: Sequence[Sensor],
        base_station: Vec2,
        communication_range: float,
    ) -> bool:
        """Whether every sensor has a multi-hop route to the base station."""
        component = self.connected_component_of(
            sensors, base_station, communication_range
        )
        return len(component) == len(sensors)
