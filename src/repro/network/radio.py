"""Unit-disk radio model and neighbour tables.

The paper models communication as an isotropic unit disk of radius ``rc``:
two sensors are neighbours exactly when their distance is at most ``rc``.
Obstacles block *movement* and *sensing* but the paper does not model radio
shadowing, so by default neither do we; an optional flag enables line-of-
sight blocking for sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

import numpy as np

from ..field import Field
from ..geometry import Segment, Vec2
from ..sensors import Sensor
from ..spatial import SpatialIndex, pack_positions

__all__ = ["Radio", "LINK_EPS"]

#: Link tolerance used by every range comparison (matches ``link_exists``).
#: Public because protocol layers that read *stale* neighbour tables (see
#: ``repro.network.conditions``) must revalidate entries against live
#: positions with exactly this tolerance before acting on them.
LINK_EPS = 1e-9

# Backwards-compatible private alias (internal call sites predate export).
_LINK_EPS = LINK_EPS


@dataclass
class Radio:
    """Computes neighbour relations among sensors (plus the base station).

    Parameters
    ----------
    field:
        The deployment field (used only when ``line_of_sight`` is enabled).
    line_of_sight:
        When ``True``, two nodes are neighbours only if the straight segment
        between them does not cross an obstacle.  The paper's experiments use
        the plain unit-disk model (``False``).
    use_spatial_index:
        When ``True`` (the default) neighbour tables are computed through a
        :class:`~repro.spatial.SpatialIndex` instead of a dense ``n x n``
        distance matrix.  The brute-force path is kept (and used for very
        small populations) and produces identical tables; parity is
        enforced by ``tests/spatial``.
    """

    field: Field
    line_of_sight: bool = False
    use_spatial_index: bool = True

    # ------------------------------------------------------------------
    # Pairwise link predicate
    # ------------------------------------------------------------------
    def link_exists(self, a: Vec2, b: Vec2, communication_range: float) -> bool:
        """Whether two positions can communicate directly."""
        if a.distance_to(b) > communication_range + 1e-9:
            return False
        if self.line_of_sight and self.field.segment_blocked(Segment(a, b)):
            return False
        return True

    # ------------------------------------------------------------------
    # Neighbour tables
    # ------------------------------------------------------------------
    def neighbor_table(self, sensors: Sequence[Sensor]) -> Dict[int, List[int]]:
        """Neighbour lists keyed by sensor id.

        The per-sensor communication ranges may differ (the paper uses a
        common ``rc`` but the library does not require it).  Dispatches to
        the spatial-index fast path unless disabled or the population is
        too small for it to pay off.
        """
        if not self.use_spatial_index or len(sensors) < 8:
            return self.neighbor_table_bruteforce(sensors)
        return self.neighbor_table_indexed(sensors)

    def neighbor_table_bruteforce(
        self, sensors: Sequence[Sensor]
    ) -> Dict[int, List[int]]:
        """Dense-matrix neighbour table (parity reference / small-n path).

        Compares *squared* distances — no ``sqrt`` over the full matrix —
        which keeps the accepted set identical to the indexed path.
        """
        ids = [s.sensor_id for s in sensors]
        if not ids:
            return {}
        xs = np.array([s.position.x for s in sensors])
        ys = np.array([s.position.y for s in sensors])
        rcs = np.array([s.communication_range for s in sensors]) + _LINK_EPS
        dx = xs[:, None] - xs[None, :]
        dy = ys[:, None] - ys[None, :]
        dist_sq = dx * dx + dy * dy
        rc_sq = rcs * rcs
        table: Dict[int, List[int]] = {i: [] for i in ids}
        n = len(sensors)
        for i in range(n):
            within = np.flatnonzero(dist_sq[i] <= rc_sq[i])
            for j in within:
                if j == i:
                    continue
                if self.line_of_sight and self.field.segment_blocked(
                    Segment(sensors[i].position, sensors[j].position)
                ):
                    continue
                table[ids[i]].append(ids[int(j)])
        return table

    def neighbor_table_indexed(
        self,
        sensors: Sequence[Sensor],
        index: Optional[SpatialIndex] = None,
    ) -> Dict[int, List[int]]:
        """Neighbour table computed through a :class:`SpatialIndex`.

        ``index`` may be a prebuilt index over the sensors' current
        positions (the :class:`~repro.spatial.NeighborCache` shares one per
        epoch); when omitted a throwaway index is built.
        """
        ids = [s.sensor_id for s in sensors]
        n = len(sensors)
        if n < 2:
            return {i: [] for i in ids}
        rc_list = [s.communication_range for s in sensors]
        max_range = max(rc_list) + _LINK_EPS
        if index is None:
            index = SpatialIndex(max(max_range, _LINK_EPS) * 1.001).build(
                pack_positions(sensors)
            )
        rows, cols, dist_sq = index.neighbor_pairs_directed(max_range)
        if min(rc_list) != max(rc_list):
            # Heterogeneous ranges: j is a neighbour of i iff d <= rc_i.
            rcs = np.fromiter(rc_list, dtype=float, count=n) + _LINK_EPS
            keep = dist_sq <= rcs[rows] * rcs[rows]
            rows, cols = rows[keep], cols[keep]
        if self.line_of_sight:
            table: Dict[int, List[int]] = {i: [] for i in ids}
            blocked: Dict[tuple, bool] = {}
            for i, j in zip(rows.tolist(), cols.tolist()):
                key = (i, j) if i < j else (j, i)
                hit = blocked.get(key)
                if hit is None:
                    hit = self.field.segment_blocked(
                        Segment(sensors[i].position, sensors[j].position)
                    )
                    blocked[key] = hit
                if not hit:
                    table[ids[i]].append(ids[j])
            return table
        # rows is sorted, cols ascending within each row: slice the packed
        # neighbour list per sensor instead of appending pair by pair.
        flat = np.asarray(ids, dtype=np.intp)[cols].tolist()
        bounds = np.cumsum(np.bincount(rows, minlength=n)).tolist()
        table = {}
        lo = 0
        for sensor_id, hi in zip(ids, bounds):
            table[sensor_id] = flat[lo:hi]
            lo = hi
        return table

    def neighbors_of_point(
        self,
        point: Vec2,
        sensors: Iterable[Sensor],
        communication_range: float,
        index: Optional[SpatialIndex] = None,
    ) -> List[int]:
        """IDs of sensors within ``communication_range`` of a point.

        Used for base-station adjacency (the base station is a point, not a
        :class:`Sensor`).  Large populations are served through a
        :class:`~repro.spatial.SpatialIndex` (pass ``index`` to reuse one
        already built over the *same* sensor sequence); the brute scan
        below remains the small-``n`` path and the parity reference.
        Candidate indices are sorted, so the result order matches the
        brute scan's input order.
        """
        sensor_list = sensors if isinstance(sensors, list) else list(sensors)
        if index is None:
            if not self.use_spatial_index or len(sensor_list) < 8:
                return self.neighbors_of_point_bruteforce(
                    point, sensor_list, communication_range
                )
            cell = max(communication_range, _LINK_EPS) * 1.001
            index = SpatialIndex(cell).build(pack_positions(sensor_list))
        candidates = np.sort(
            index.query_radius(point, communication_range + 2.0 * _LINK_EPS)
        )
        return [
            sensor_list[i].sensor_id
            for i in candidates.tolist()
            if self.link_exists(
                point, sensor_list[i].position, communication_range
            )
        ]

    def neighbors_of_point_bruteforce(
        self,
        point: Vec2,
        sensors: Iterable[Sensor],
        communication_range: float,
    ) -> List[int]:
        """Reference linear scan for :meth:`neighbors_of_point`."""
        result: List[int] = []
        for s in sensors:
            if self.link_exists(point, s.position, communication_range):
                result.append(s.sensor_id)
        return result

    # ------------------------------------------------------------------
    # Whole-network connectivity
    # ------------------------------------------------------------------
    def connected_component_of(
        self,
        sensors: Sequence[Sensor],
        base_station: Vec2,
        communication_range: float,
        table: Optional[Dict[int, List[int]]] = None,
        base_neighbors: Optional[Sequence[int]] = None,
    ) -> Set[int]:
        """Sensors reachable from the base station via multi-hop links.

        ``table`` and ``base_neighbors`` let callers (the neighbor cache)
        reuse structures already computed for the same positions instead of
        rebuilding the neighbour table a second time.
        """
        if table is None:
            table = self.neighbor_table(sensors)
        if base_neighbors is None:
            base_neighbors = self.neighbors_of_point(
                base_station, sensors, communication_range
            )
        frontier = list(base_neighbors)
        reached: Set[int] = set(frontier)
        while frontier:
            current = frontier.pop()
            for nxt in table.get(current, []):
                if nxt not in reached:
                    reached.add(nxt)
                    frontier.append(nxt)
        return reached

    def network_is_connected(
        self,
        sensors: Sequence[Sensor],
        base_station: Vec2,
        communication_range: float,
    ) -> bool:
        """Whether every sensor has a multi-hop route to the base station."""
        component = self.connected_component_of(
            sensors, base_station, communication_range
        )
        return len(component) == len(sensors)
