"""Network substrate: radio model, messages, connectivity tree, routing costs."""

from .messages import Message, MessageType
from .radio import Radio
from .routing import RoutingCostModel
from .stats import MessageStats
from .tree import BASE_STATION_ID, ConnectivityTree

__all__ = [
    "Message",
    "MessageType",
    "Radio",
    "RoutingCostModel",
    "MessageStats",
    "BASE_STATION_ID",
    "ConnectivityTree",
]
