"""Network substrate: radio model, messages, conditions, tree, routing costs."""

from .conditions import (
    NETWORK_SCHEMA_VERSION,
    NetworkModel,
    NetworkSpec,
    PERFECT_NETWORK,
    PerfectNetwork,
    UnreliableNetwork,
)
from .messages import Message, MessageType, NET_COUNTER_KEYS
from .radio import LINK_EPS, Radio
from .routing import RoutingCostModel
from .stats import MessageStats
from .tree import BASE_STATION_ID, ConnectivityTree
from .walks import TreeWalkIndex

__all__ = [
    "Message",
    "MessageType",
    "NET_COUNTER_KEYS",
    "NETWORK_SCHEMA_VERSION",
    "NetworkModel",
    "NetworkSpec",
    "PERFECT_NETWORK",
    "PerfectNetwork",
    "UnreliableNetwork",
    "LINK_EPS",
    "Radio",
    "RoutingCostModel",
    "MessageStats",
    "BASE_STATION_ID",
    "ConnectivityTree",
    "TreeWalkIndex",
]
