"""Batched tree-route evaluation for FLOOR's invitation round.

The scalar :meth:`RoutingCostModel.tree_route_hops` materialises both
endpoints' ancestor chains as Python lists and intersects them — one
full tree walk per invitation message.  A FLOOR round routes one
``AcceptInvitation`` and one ``Acknowledge`` per responding sensor, so
at scale the protocol spends its period walking the same tree thousands
of times.

:class:`TreeWalkIndex` flattens the tree once per ``tree.version`` into
parent/depth arrays and answers a whole round's routes level-
synchronously: all pending routes lift one tree level per iteration
(deeper endpoint first, classic LCA stepping), so the loop count is the
tree height, not the number of routes.  The answers are exactly the
scalar ones — for members, for ids outside the tree (ancestor chain
``[BASE]``, depth 1, which covers FLOOR's virtual fixed nodes used as
route endpoints), and for members whose chain passes through a detached
(dead, off-tree) ancestor.

The index never mutates the tree and is only valid for the
``tree.version`` it was built at; callers cache it keyed on the version.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .tree import BASE_STATION_ID, ConnectivityTree

__all__ = ["TreeWalkIndex"]

#: The id-domain cap is ``_DOMAIN_FACTOR * (members + _DOMAIN_SLACK)``:
#: the flattened arrays are indexed by raw sensor id, so a pathological
#: tree holding a huge id (never produced by the schemes — FLOOR's
#: virtual ids are route endpoints, not members) would force enormous
#: arrays; such trees mark the index degenerate and callers fall back to
#: the scalar walk.
_DOMAIN_FACTOR = 16
_DOMAIN_SLACK = 1024


class TreeWalkIndex:
    """Flattened parent/depth arrays answering batched route queries."""

    def __init__(self, tree: ConnectivityTree):
        self.version = tree.version
        ids = [i for i in tree.parent if i >= 0]
        ids += [p for p in tree.parent.values() if p >= 0]
        domain = (max(ids) + 1) if ids else 0
        cap = _DOMAIN_FACTOR * (len(tree.parent) + _DOMAIN_SLACK)
        #: ``True`` when the id domain is too sparse to flatten; callers
        #: must fall back to the scalar per-route walk.
        self.degenerate = domain > cap
        if self.degenerate:
            self._domain = 0
            self._parent = np.empty(0, dtype=np.int64)
            self._depth = np.empty(0, dtype=np.int64)
            return
        self._domain = domain
        # One uniform rule reproduces ``ancestors_of`` for every id:
        # any id without a parent entry — non-members, virtual route
        # endpoints, detached ancestors — has the chain [BASE], depth 1.
        parent = np.full(domain, BASE_STATION_ID, dtype=np.int64)
        for node, par in tree.parent.items():
            if node >= 0:
                parent[node] = par
        depth = np.full(domain, -1, dtype=np.int64)
        depth[parent == BASE_STATION_ID] = 1
        unresolved = np.flatnonzero(depth < 0)
        while unresolved.size:
            pd = depth[parent[unresolved]]
            ready = pd >= 0
            if not ready.any():
                raise RuntimeError("cycle detected in connectivity tree")
            depth[unresolved[ready]] = pd[ready] + 1
            unresolved = unresolved[~ready]
        self._parent = parent
        self._depth = depth

    # ------------------------------------------------------------------
    # Vector chain primitives
    # ------------------------------------------------------------------
    def _depths(self, a: np.ndarray) -> np.ndarray:
        """Per-id hop distance to the base station (base itself is 0)."""
        d = np.ones(len(a), dtype=np.int64)
        d[a == BASE_STATION_ID] = 0
        in_dom = (a >= 0) & (a < self._domain)
        if in_dom.any():
            d[in_dom] = self._depth[a[in_dom]]
        return d

    def _parents(self, a: np.ndarray) -> np.ndarray:
        """Per-id parent; the base station and out-of-domain ids map to
        the base station (their chains are exhausted)."""
        out = np.full(len(a), BASE_STATION_ID, dtype=np.int64)
        in_dom = (a >= 0) & (a < self._domain)
        if in_dom.any():
            out[in_dom] = self._parent[a[in_dom]]
        return out

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def depths(self, node_ids: Sequence[int]) -> np.ndarray:
        """``tree.depth_of`` for many ids at once."""
        return self._depths(np.asarray(node_ids, dtype=np.int64))

    def route_hops(
        self, sources: Sequence[int], destinations: Sequence[int]
    ) -> np.ndarray:
        """``RoutingCostModel.tree_route_hops`` for many routes at once.

        Level-synchronous LCA stepping: every not-yet-met route lifts its
        deeper endpoint (both when tied) one level per iteration; all
        chains end at the base station, so the loop runs at most
        tree-height times.  The hop count is
        ``depth(src) + depth(dst) - 2 * depth(meet)`` — identical to the
        scalar chain intersection, including equal endpoints (0 hops)
        and non-member endpoints.
        """
        u = np.asarray(sources, dtype=np.int64).copy()
        v = np.asarray(destinations, dtype=np.int64).copy()
        du = self._depths(u)
        dv = self._depths(v)
        hops = du + dv
        pending = np.flatnonzero(u != v)
        while pending.size:
            pu, pv = u[pending], v[pending]
            pdu, pdv = du[pending], dv[pending]
            lift_u = pdu >= pdv
            lift_v = pdv >= pdu
            iu = pending[lift_u]
            u[iu] = self._parents(pu[lift_u])
            du[iu] -= 1
            iv = pending[lift_v]
            v[iv] = self._parents(pv[lift_v])
            dv[iv] -= 1
            pending = pending[u[pending] != v[pending]]
        return hops - 2 * du
