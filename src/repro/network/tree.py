"""The connectivity tree rooted at the base station.

Both schemes organise connected sensors into a tree rooted at the base
station (the reference point ``O``).  The tree provides:

* parent / children / ancestor bookkeeping,
* loop detection when re-parenting (CPVF's parent changes, FLOOR's phase-2
  re-homing of a movable sensor's children),
* the subtree-locking handshake CPVF uses before a parent change,
* hop counts for routing messages up the tree (used for message accounting).

The base station is represented by the pseudo-identifier
:data:`BASE_STATION_ID` so that tree logic does not need a special-case
``Sensor`` object for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

__all__ = ["BASE_STATION_ID", "ConnectivityTree"]

#: Pseudo node id used for the base station / reference point.
BASE_STATION_ID = -1


@dataclass
class ConnectivityTree:
    """A rooted tree over sensor ids, with the base station as the root."""

    parent: Dict[int, int] = field(default_factory=dict)
    children: Dict[int, Set[int]] = field(default_factory=dict)
    #: Monotone counter bumped on every structural mutation.  Consumers
    #: that derive expensive structures from the tree (the CPVF link-id
    #: cache, the batched kernel's coloring schedule) key their caches on
    #: it, so an unchanged tree never recomputes anything.
    version: int = 0

    # ------------------------------------------------------------------
    # Membership and structure
    # ------------------------------------------------------------------
    def __contains__(self, node_id: int) -> bool:
        return node_id == BASE_STATION_ID or node_id in self.parent

    def members(self) -> List[int]:
        """All sensor ids currently attached to the tree."""
        return list(self.parent.keys())

    def parent_of(self, node_id: int) -> Optional[int]:
        """Parent of ``node_id`` (``None`` for the base station or outsiders)."""
        return self.parent.get(node_id)

    def children_of(self, node_id: int) -> Set[int]:
        """Direct children of ``node_id``."""
        return set(self.children.get(node_id, set()))

    def ancestors_of(self, node_id: int) -> List[int]:
        """Ancestor chain from the parent of ``node_id`` up to the root."""
        chain: List[int] = []
        current = self.parent.get(node_id)
        seen: Set[int] = set()
        while current is not None and current != BASE_STATION_ID:
            if current in seen:
                raise RuntimeError("cycle detected in connectivity tree")
            seen.add(current)
            chain.append(current)
            current = self.parent.get(current)
        chain.append(BASE_STATION_ID)
        return chain

    def depth_of(self, node_id: int) -> int:
        """Number of hops from ``node_id`` to the base station."""
        if node_id == BASE_STATION_ID:
            return 0
        return len(self.ancestors_of(node_id))

    def subtree_of(self, node_id: int) -> Set[int]:
        """All ids in the subtree rooted at ``node_id`` (inclusive)."""
        result: Set[int] = {node_id}
        frontier = [node_id]
        while frontier:
            current = frontier.pop()
            for child in self.children.get(current, set()):
                if child not in result:
                    result.add(child)
                    frontier.append(child)
        return result

    def is_descendant(self, node_id: int, potential_ancestor: int) -> bool:
        """Whether ``node_id`` lies in the subtree of ``potential_ancestor``."""
        if potential_ancestor == BASE_STATION_ID:
            return node_id in self
        return node_id in self.subtree_of(potential_ancestor)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def attach(self, node_id: int, parent_id: int) -> None:
        """Attach ``node_id`` under ``parent_id``.

        ``parent_id`` must be the base station or an existing member, and
        the attachment must not create a loop.
        """
        if parent_id != BASE_STATION_ID and parent_id not in self.parent:
            raise ValueError(f"parent {parent_id} is not in the tree")
        if node_id == parent_id:
            raise ValueError("a node cannot be its own parent")
        if node_id in self.parent or node_id in self.children:
            if self.would_create_loop(node_id, parent_id):
                raise ValueError("attachment would create a loop")
            self.detach(node_id, keep_subtree=True)
        self.parent[node_id] = parent_id
        self.children.setdefault(parent_id, set()).add(node_id)
        self.children.setdefault(node_id, set())
        self.version += 1

    def detach(self, node_id: int, keep_subtree: bool = True) -> None:
        """Remove ``node_id`` from its parent.

        With ``keep_subtree`` the node keeps its children (it becomes a
        floating subtree root until re-attached); otherwise the whole
        subtree is removed from the tree.
        """
        parent_id = self.parent.pop(node_id, None)
        if parent_id is not None:
            self.children.get(parent_id, set()).discard(node_id)
        if not keep_subtree:
            for child in list(self.children.get(node_id, set())):
                self.detach(child, keep_subtree=False)
            self.children.pop(node_id, None)
        self.version += 1

    def reparent(self, node_id: int, new_parent_id: int) -> bool:
        """Move ``node_id`` (with its subtree) under ``new_parent_id``.

        Returns ``False`` (and leaves the tree unchanged) when the move
        would create a loop or the new parent is unknown.
        """
        if new_parent_id != BASE_STATION_ID and new_parent_id not in self.parent:
            return False
        if self.would_create_loop(node_id, new_parent_id):
            return False
        old_parent = self.parent.get(node_id)
        if old_parent is not None:
            self.children.get(old_parent, set()).discard(node_id)
        self.parent[node_id] = new_parent_id
        self.children.setdefault(new_parent_id, set()).add(node_id)
        self.children.setdefault(node_id, set())
        self.version += 1
        return True

    # ------------------------------------------------------------------
    # Failure repair (node death)
    # ------------------------------------------------------------------
    def remove_node(self, node_id: int) -> List[int]:
        """Remove a dead node entirely; its children become floating roots.

        Each orphaned child keeps its own subtree (children entries intact)
        but loses its ``parent`` entry, exactly like a
        ``detach(keep_subtree=True)`` — the caller is expected to re-attach
        or discard every returned root, since :meth:`validate` rejects
        floating subtrees.  Returns the orphan roots in ascending id order.
        """
        if node_id not in self.parent:
            return []
        orphans = sorted(self.children.get(node_id, set()))
        parent_id = self.parent.pop(node_id)
        self.children.get(parent_id, set()).discard(node_id)
        for child in orphans:
            self.parent.pop(child, None)
        self.children.pop(node_id, None)
        self.version += 1
        return orphans

    def reroot_floating(self, root: int, new_root: int) -> None:
        """Re-root a floating subtree at one of its members.

        Reverses the parent pointers along the path ``new_root .. root`` so
        ``new_root`` becomes the subtree's (still floating) root — the
        repair step before attaching the subtree to the main tree through
        the member that actually has a live link into it.
        """
        if new_root == root:
            return
        chain = [new_root]
        current = new_root
        while current != root:
            current = self.parent[current]
            chain.append(current)
        for node, old_parent in zip(chain, chain[1:]):
            self.children.get(old_parent, set()).discard(node)
            self.parent[old_parent] = node
            self.children.setdefault(node, set()).add(old_parent)
        self.parent.pop(new_root, None)
        self.version += 1

    def discard_floating(self, root: int) -> List[int]:
        """Remove an unreachable floating subtree from the tree entirely.

        Returns the removed member ids (ascending).  Used when no member of
        an orphaned subtree has a link back to the main tree: those sensors
        fall out of the tree and must reconnect from scratch.
        """
        members = sorted(self.subtree_of(root))
        for member in members:
            self.parent.pop(member, None)
            self.children.pop(member, None)
        self.version += 1
        return members

    def would_create_loop(self, node_id: int, new_parent_id: int) -> bool:
        """Whether putting ``node_id`` under ``new_parent_id`` creates a loop."""
        if new_parent_id == node_id:
            return True
        if new_parent_id == BASE_STATION_ID:
            return False
        # A loop appears exactly when the new parent is in node's subtree.
        return new_parent_id in self.subtree_of(node_id)

    # ------------------------------------------------------------------
    # Subtree locking (CPVF parent-change handshake)
    # ------------------------------------------------------------------
    def lock_subtree_message_count(self, node_id: int) -> int:
        """Number of transmissions of a full LockTree + UnLockTree handshake.

        The request travels down the subtree (one transmission per edge) and
        the unlock travels back up, so the cost is twice the number of edges
        in the subtree.
        """
        size = len(self.subtree_of(node_id))
        edges = max(0, size - 1)
        return 2 * edges

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise ``RuntimeError`` if the structure is inconsistent."""
        for node_id, parent_id in self.parent.items():
            if parent_id != BASE_STATION_ID and parent_id not in self.parent:
                raise RuntimeError(f"node {node_id} has unknown parent {parent_id}")
            if node_id not in self.children.get(parent_id, set()):
                raise RuntimeError(
                    f"node {node_id} missing from children of {parent_id}"
                )
        for node_id in self.parent:
            # ancestors_of raises on cycles.
            self.ancestors_of(node_id)
