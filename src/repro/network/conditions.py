"""Pluggable network-condition models: perfect vs unreliable delivery.

The seed repository counts messages *structurally*: delivery is instant and
lossless, and neighbour tables are read straight from the world.  This
module makes delivery conditions a first-class, configurable axis behind
the existing ``network/`` interfaces:

``PerfectNetwork``
    The pinned default.  Every call is a pass-through to the structural
    path, so runs without a :class:`NetworkSpec` (or with a structural
    one) stay byte-identical to the seed behaviour.

``UnreliableNetwork``
    Applies seed-deterministic per-message loss, per-hop latency (in
    periods) and neighbour-table staleness (tables are refreshed every
    ``staleness`` periods instead of read live, so schemes act on aged
    positions — the ``position_update_interval`` idiom).

Determinism contract: every random draw is made on a private
``random.Random`` derived via blake2b from ``(seed, period, message key)``
— the same construction as the fault injector's per-event streams — never
from a shared stream.  Two consequences:

* the world RNG (``world.rng``) is never touched, so enabling the
  unreliable model does not perturb scheme-side draws, and
* outcomes are independent of evaluation order, so sweeps parallelised
  over jobs produce identical results to serial runs.

Condition events are recorded through ``MessageStats.record_net`` under
the dotted keys in :data:`~repro.network.messages.NET_COUNTER_KEYS` and
surface as ``net.*`` telemetry counters.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "NETWORK_SCHEMA_VERSION",
    "NetworkModel",
    "NetworkSpec",
    "PerfectNetwork",
    "PERFECT_NETWORK",
    "UnreliableNetwork",
]

#: Version of the serialized :class:`NetworkSpec` payload.  Hashed into the
#: run fingerprint whenever a non-structural spec is attached (structural
#: specs are omitted entirely so default fingerprints never move).
NETWORK_SCHEMA_VERSION = 1

_MODELS = ("perfect", "unreliable")


def _derive_rng(base_seed: int, *keys) -> random.Random:
    """Private RNG stream for one message event (blake2b over the keys).

    Mirrors ``repro.sim.lifecycle._derive_rng`` / ``repro.api.seeds
    .derive_seed``: distinct key tuples yield independent-looking streams,
    the same tuple always yields the same stream.
    """
    payload = repr((int(base_seed),) + tuple(keys)).encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return random.Random(int.from_bytes(digest, "big") >> 33)


class NetworkModel:
    """Delivery-condition strategy consulted by the protocol layers.

    The base class *is* the perfect network: every hook is a structural
    pass-through.  Subclasses override the hooks they degrade.  Models are
    consulted only at protocol decision points; physics (movement,
    sensing/coverage, the unit-disk link predicate itself) always reads
    live state.

    ``exchange`` is the timeout/retry primitive: one call models a
    round-trip whose ``critical_transmissions`` sends must *all* arrive
    for the round-trip to count as delivered.  Retries retransmit (the
    optional ``retry_charge`` callback lets the caller charge the repeat
    cost to :class:`~repro.network.stats.MessageStats`), back off
    exponentially, and give up after the delivery budget is exhausted —
    callers then abort to their safe state.
    """

    #: True only for the structural pass-through model.
    is_perfect: bool = True
    #: Whether messages can be dropped (gates the hardened code paths).
    lossy: bool = False
    #: Per-hop delivery latency in whole periods (0 = instantaneous).
    latency: int = 0
    #: Neighbour-table refresh interval in periods (<= 1 = read live).
    staleness: int = 0

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    def on_period(self, world) -> None:
        """Hook invoked by the engine at the start of every period."""

    # ------------------------------------------------------------------
    # Neighbour state
    # ------------------------------------------------------------------
    def neighbor_table(self, world) -> Dict[int, List[int]]:
        """The neighbour table as the protocol layer sees it."""
        return world.neighbor_table()

    def neighbor_rows(
        self, world, sensor_ids: Sequence[int]
    ) -> Dict[int, List[int]]:
        """Per-sensor neighbour rows as the protocol layer sees them."""
        return world.neighbor_rows(sensor_ids)

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def exchange(
        self,
        world,
        key: Tuple,
        critical_transmissions: int = 1,
        retry_charge: Optional[Callable[[], None]] = None,
    ) -> Tuple[bool, int]:
        """Attempt a protocol round-trip; returns ``(delivered, attempts)``.

        The perfect network always delivers on the first attempt.
        """
        return True, 1

    def walk_hops(self, world, key: Tuple, ttl: int) -> int:
        """How many hops of a TTL-bounded random walk actually complete."""
        return max(0, int(ttl))


class PerfectNetwork(NetworkModel):
    """The structural default: lossless, instantaneous, live state."""


#: Shared stateless instance used as the default ``World.network``.
PERFECT_NETWORK = PerfectNetwork()


class UnreliableNetwork(NetworkModel):
    """Seed-deterministic loss, latency and staleness degradation.

    Parameters
    ----------
    seed:
        Base seed for the per-message blake2b streams (normally the
        scenario seed, threaded through ``NetworkSpec.build``).
    loss:
        Per-transmission drop probability in ``[0, 1)``.  An exchange
        whose critical path needs ``k`` transmissions succeeds per
        attempt with probability ``(1 - loss) ** k``.
    latency:
        Per-hop delivery delay in whole periods.  Protocol layers that
        honour latency defer their action and record ``net.delayed``.
    staleness:
        Neighbour-table refresh interval in periods.  With ``staleness
        <= 1`` tables are read live; otherwise the table captured at the
        last refresh boundary is served (recording ``net.stale_reads``)
        until the next boundary or a population change.
    retry_limit:
        Extra delivery attempts after the first (budget = ``retry_limit
        + 1``).  Exhausting the budget records ``net.timeouts`` and the
        exchange reports non-delivery.
    """

    is_perfect = False

    def __init__(
        self,
        seed: int,
        loss: float = 0.0,
        latency: int = 0,
        staleness: int = 0,
        retry_limit: int = 3,
    ) -> None:
        if not 0.0 <= loss < 1.0:
            raise ValueError("loss probability must be in [0, 1)")
        if latency < 0:
            raise ValueError("latency cannot be negative")
        if staleness < 0:
            raise ValueError("staleness cannot be negative")
        if retry_limit < 0:
            raise ValueError("retry limit cannot be negative")
        self.seed = int(seed)
        self.loss = float(loss)
        self.latency = int(latency)
        self.staleness = int(staleness)
        self.retry_limit = int(retry_limit)
        self.lossy = self.loss > 0.0
        self._table_stamp: Optional[Tuple[int, int]] = None
        self._table: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    def _rng(self, world, key: Tuple) -> random.Random:
        return _derive_rng(self.seed, int(world.period_index), *key)

    # ------------------------------------------------------------------
    # Neighbour state (staleness)
    # ------------------------------------------------------------------
    def _stale_table(self, world) -> Dict[int, List[int]]:
        # Refresh on the period boundary grid and on any population change
        # (a dead sensor must not linger in the served table).
        stamp = (
            int(world.period_index) // self.staleness,
            world.population_version,
        )
        if stamp != self._table_stamp:
            self._table_stamp = stamp
            self._table = {
                sensor_id: list(neighbors)
                for sensor_id, neighbors in world.neighbor_table().items()
            }
        else:
            world.stats.record_net("stale_reads")
        return self._table

    def neighbor_table(self, world) -> Dict[int, List[int]]:
        if self.staleness <= 1:
            return world.neighbor_table()
        return self._stale_table(world)

    def neighbor_rows(
        self, world, sensor_ids: Sequence[int]
    ) -> Dict[int, List[int]]:
        if self.staleness <= 1:
            return world.neighbor_rows(sensor_ids)
        table = self._stale_table(world)
        return {
            sensor_id: table.get(sensor_id, []) for sensor_id in sensor_ids
        }

    # ------------------------------------------------------------------
    # Delivery (loss / retry / timeout)
    # ------------------------------------------------------------------
    def exchange(
        self,
        world,
        key: Tuple,
        critical_transmissions: int = 1,
        retry_charge: Optional[Callable[[], None]] = None,
    ) -> Tuple[bool, int]:
        if not self.lossy:
            return True, 1
        rng = self._rng(world, ("exchange",) + tuple(key))
        success_probability = (1.0 - self.loss) ** max(
            1, int(critical_transmissions)
        )
        budget = self.retry_limit + 1
        backoff = 1
        for attempt in range(1, budget + 1):
            if attempt > 1 and retry_charge is not None:
                retry_charge()
            if rng.random() < success_probability:
                if attempt > 1:
                    world.stats.record_net("retries", attempt - 1)
                return True, attempt
            world.stats.record_net("dropped")
            if attempt < budget:
                # Exponential backoff before the retransmission; recorded
                # in periods of accumulated delay.
                world.stats.record_net("delayed", backoff)
                backoff *= 2
        world.stats.record_net("retries", budget - 1)
        world.stats.record_net("timeouts")
        return False, budget

    def walk_hops(self, world, key: Tuple, ttl: int) -> int:
        ttl = max(0, int(ttl))
        if not self.lossy or ttl == 0:
            return ttl
        rng = self._rng(world, ("walk",) + tuple(key))
        for hop in range(ttl):
            if rng.random() < self.loss:
                world.stats.record_net("dropped")
                return hop
        return ttl


@dataclass(frozen=True)
class NetworkSpec:
    """Serializable description of the network conditions for a run.

    ``model`` selects the backend (``"perfect"`` or ``"unreliable"``); the
    remaining knobs mirror :class:`UnreliableNetwork`.  A *structural*
    spec — the perfect model, or an unreliable model whose knobs are all
    degenerate — builds the shared :data:`PERFECT_NETWORK` and is omitted
    from the run fingerprint, so attaching it never moves cache keys.
    """

    model: str = "perfect"
    loss: float = 0.0
    latency: int = 0
    staleness: int = 0
    retry_limit: int = 3

    def __post_init__(self) -> None:
        if self.model not in _MODELS:
            raise ValueError(
                f"unknown network model {self.model!r}; expected one of "
                f"{_MODELS}"
            )
        if not 0.0 <= self.loss < 1.0:
            raise ValueError("loss probability must be in [0, 1)")
        if self.latency < 0:
            raise ValueError("latency cannot be negative")
        if self.staleness < 0:
            raise ValueError("staleness cannot be negative")
        if self.retry_limit < 0:
            raise ValueError("retry limit cannot be negative")
        if self.model == "perfect" and not self.is_structural():
            raise ValueError(
                "the perfect model takes no degradation parameters"
            )

    def is_structural(self) -> bool:
        """Whether this spec degrades nothing (behaves like the seed)."""
        return self.loss == 0.0 and self.latency == 0 and self.staleness <= 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "model": self.model,
            "loss": self.loss,
            "latency": self.latency,
            "staleness": self.staleness,
            "retry_limit": self.retry_limit,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "NetworkSpec":
        return cls(
            model=str(data.get("model", "perfect")),
            loss=float(data.get("loss", 0.0)),
            latency=int(data.get("latency", 0)),
            staleness=int(data.get("staleness", 0)),
            retry_limit=int(data.get("retry_limit", 3)),
        )

    def build(self, seed: int) -> NetworkModel:
        """Instantiate the model for a run with the given scenario seed."""
        if self.is_structural():
            return PERFECT_NETWORK
        return UnreliableNetwork(
            seed=seed,
            loss=self.loss,
            latency=self.latency,
            staleness=self.staleness,
            retry_limit=self.retry_limit,
        )
