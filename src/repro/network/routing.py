"""Routing cost models: flooding, tree routing and random walks.

Message *content* is handled directly by the scheme implementations (the
simulator is period-synchronous and, under the default perfect network,
latency is assumed negligible compared with the period length, as in the
paper).  What this module provides is the *transmission accounting* — how
many point-to-point sends each communication pattern costs — which feeds
the Table 1 message-overhead reproduction.

Under :class:`~repro.network.conditions.UnreliableNetwork` a pattern may
be retransmitted: the ``attempts`` parameter on the tree-routing and lock
recorders multiplies the charge so retries show up in the overhead totals
exactly as they would on the air.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .messages import MessageType
from .stats import MessageStats
from .tree import BASE_STATION_ID, ConnectivityTree

__all__ = ["RoutingCostModel"]


@dataclass
class RoutingCostModel:
    """Computes and records transmission costs of the protocol patterns."""

    stats: MessageStats

    # ------------------------------------------------------------------
    # Flooding
    # ------------------------------------------------------------------
    def record_flood(self, member_count: int) -> int:
        """Network-wide flood: each connected sensor forwards once."""
        cost = max(0, member_count)
        self.stats.record_transmissions(MessageType.CONNECTIVITY_FLOOD, cost)
        return cost

    # ------------------------------------------------------------------
    # Tree routing
    # ------------------------------------------------------------------
    def record_to_base_station(
        self, tree: ConnectivityTree, node_id: int, message_type: MessageType
    ) -> int:
        """Unicast from a sensor up the tree to the base station."""
        hops = tree.depth_of(node_id)
        self.stats.record_transmissions(message_type, hops)
        return hops

    def record_from_base_station(
        self, tree: ConnectivityTree, node_id: int, message_type: MessageType
    ) -> int:
        """Unicast from the base station down to a sensor."""
        hops = tree.depth_of(node_id)
        self.stats.record_transmissions(message_type, hops)
        return hops

    def record_tree_unicast(
        self,
        tree: ConnectivityTree,
        source: int,
        destination: int,
        message_type: MessageType,
        attempts: int = 1,
        hops: Optional[int] = None,
    ) -> int:
        """Unicast between two sensors routed over the tree.

        The tree route goes up from the source to the lowest common ancestor
        and down to the destination.  ``attempts`` charges the route that
        many times (lossy-network retransmissions).  ``hops`` lets a caller
        that already computed the route length (the batched invitation
        round evaluates a whole round's routes at once) skip the per-call
        chain walk; it must equal ``tree_route_hops`` on the same tree.
        """
        if hops is None:
            hops = self.tree_route_hops(tree, source, destination)
        self.stats.record_transmissions(message_type, hops * max(1, attempts))
        return hops

    @staticmethod
    def tree_route_hops(
        tree: ConnectivityTree, source: int, destination: int
    ) -> int:
        """Number of hops of the unique tree path between two nodes."""
        if source == destination:
            return 0
        up_source = [source] + tree.ancestors_of(source) if source != BASE_STATION_ID else [BASE_STATION_ID]
        up_dest = (
            [destination] + tree.ancestors_of(destination)
            if destination != BASE_STATION_ID
            else [BASE_STATION_ID]
        )
        dest_index: Dict[int, int] = {node: i for i, node in enumerate(up_dest)}
        for i, node in enumerate(up_source):
            if node in dest_index:
                return i + dest_index[node]
        # Disconnected (should not happen for tree members); charge the full
        # two-way path through the root.
        return len(up_source) + len(up_dest)

    # ------------------------------------------------------------------
    # Random walks (FLOOR invitations)
    # ------------------------------------------------------------------
    def record_random_walk(self, ttl: int, message_type: MessageType) -> int:
        """A TTL-bounded random walk costs one transmission per hop."""
        cost = max(0, ttl)
        self.stats.record_transmissions(message_type, cost)
        return cost

    # ------------------------------------------------------------------
    # One-hop control traffic
    # ------------------------------------------------------------------
    def record_one_hop(self, message_type: MessageType, count: int = 1) -> int:
        """``count`` single-hop transmissions (neighbour state exchange etc.)."""
        self.stats.record_transmissions(message_type, count)
        return count

    def record_subtree_lock(
        self,
        tree: ConnectivityTree,
        node_id: int,
        subtree_size: Optional[int] = None,
        attempts: int = 1,
    ) -> int:
        """The LockTree/UnLockTree handshake over a node's subtree.

        ``subtree_size`` lets a caller that already walked the subtree
        (the CPVF parent-change scans do, for candidate exclusion) skip
        the second traversal; the accounting is identical.  ``attempts``
        charges the handshake that many times — each lossy-network retry
        re-runs the whole lock/unlock wave.
        """
        if subtree_size is None:
            cost = tree.lock_subtree_message_count(node_id)
        else:
            cost = 2 * max(0, subtree_size - 1)
        cost *= max(1, attempts)
        half = cost // 2
        self.stats.record_transmissions(MessageType.LOCK_TREE, half)
        self.stats.record_transmissions(MessageType.UNLOCK_TREE, cost - half)
        return cost
