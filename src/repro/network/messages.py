"""Protocol message types and records.

The schemes exchange short control messages: connectivity floods, lazy-
movement ``PathParentInquiry`` probes, CPVF's ``LockTree`` / ``UnLockTree``
tree-locking handshake, FLOOR's ``Invitation`` random walks and the
coverage-status queries answered by floor-header nodes.  Table 1 of the
paper reports the *number* of such messages, so the network layer models
them as counted records rather than payload-carrying packets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..geometry import Vec2

__all__ = ["MessageType", "Message", "NET_COUNTER_KEYS"]

#: Delivery-condition counter keys recorded by :mod:`repro.network.conditions`
#: and carried by :class:`repro.network.stats.MessageStats` alongside the
#: per-type transmission counts.  Surfaced as ``net.<key>`` telemetry.
NET_COUNTER_KEYS = ("dropped", "delayed", "retries", "timeouts", "stale_reads")


class MessageType(Enum):
    """All protocol message categories used by CPVF and FLOOR."""

    #: Connectivity flood originating near the base station.
    CONNECTIVITY_FLOOD = "connectivity_flood"
    #: Lazy movement: probe along the path-parent chain to detect wait loops.
    PATH_PARENT_INQUIRY = "path_parent_inquiry"
    #: Neighbour state exchange (position/direction/period end) before a step.
    NEIGHBOR_STATE = "neighbor_state"
    #: CPVF: request to lock the subtree before changing parent.
    LOCK_TREE = "lock_tree"
    #: CPVF: release a previously locked subtree.
    UNLOCK_TREE = "unlock_tree"
    #: FLOOR: arrival report from a newly connected sensor to the base station.
    ARRIVAL_REPORT = "arrival_report"
    #: FLOOR: base-station response carrying the ancestor list.
    ANCESTOR_RESPONSE = "ancestor_response"
    #: FLOOR: coverage-status query routed to floor header nodes.
    COVERAGE_QUERY = "coverage_query"
    #: FLOOR: floor header's response to a coverage-status query.
    COVERAGE_RESPONSE = "coverage_response"
    #: FLOOR: random-walk invitation advertising an expansion point.
    INVITATION = "invitation"
    #: FLOOR: a movable sensor accepting an invitation.
    ACCEPT_INVITATION = "accept_invitation"
    #: FLOOR: acknowledgement (or implicit rejection) of an acceptance.
    ACKNOWLEDGE = "acknowledge"
    #: FLOOR: location update sent up the tree for a virtual fixed node.
    LOCATION_UPDATE = "location_update"
    #: Lifecycle: orphan-subtree probe / re-attach traffic after a node dies.
    TREE_REPAIR = "tree_repair"


@dataclass
class Message:
    """A single protocol message (used mainly for accounting and tracing)."""

    message_type: MessageType
    source: int
    destination: Optional[int] = None
    hops: int = 1
    payload_location: Optional[Vec2] = None
    ttl: Optional[int] = None

    def cost(self) -> int:
        """Number of point-to-point transmissions this message required."""
        return max(1, self.hops)
