"""Message-overhead accounting.

Table 1 of the paper reports the total (and per-node average) number of
protocol messages transmitted by FLOOR during a 750-second deployment, for
different network sizes and invitation TTLs.  :class:`MessageStats` is the
single sink all protocol layers report their transmissions to.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

from .messages import Message, MessageType

__all__ = ["MessageStats"]


@dataclass
class MessageStats:
    """Counts point-to-point transmissions per message type."""

    counts: Counter = field(default_factory=Counter)

    def record(self, message: Message) -> None:
        """Record one message (its cost is its hop count)."""
        self.counts[message.message_type] += message.cost()

    def record_transmissions(self, message_type: MessageType, count: int) -> None:
        """Record ``count`` point-to-point transmissions of a given type."""
        if count < 0:
            raise ValueError("transmission count cannot be negative")
        self.counts[message_type] += count

    def total(self) -> int:
        """Total number of transmissions across all message types."""
        return sum(self.counts.values())

    def by_type(self) -> Dict[MessageType, int]:
        """Breakdown of transmissions per message type."""
        return dict(self.counts)

    def total_for(self, message_type: MessageType) -> int:
        """Transmissions of one specific type."""
        return self.counts.get(message_type, 0)

    def average_per_node(self, node_count: int) -> float:
        """Average number of transmissions per sensor node."""
        if node_count <= 0:
            return 0.0
        return self.total() / node_count

    def to_counters(self, prefix: str = "messages.") -> Dict[str, int]:
        """The counts as flat telemetry counters (shared dotted schema).

        ``messages.<type>`` keys, lexically sorted, plus a
        ``messages.total`` aggregate — the same schema
        ``ServiceMetrics.to_counters`` and :class:`repro.obs.Telemetry`
        use, so message accounting folds into any telemetry summary.
        """
        counters = {
            f"{prefix}{message_type.name.lower()}": count
            for message_type, count in sorted(
                self.counts.items(), key=lambda item: item[0].name
            )
            if count
        }
        counters[f"{prefix}total"] = self.total()
        return counters

    def snapshot(self) -> "MessageStats":
        """A frozen copy of the current counters.

        Window accounting for burst metrics: take a snapshot at the window
        start and :meth:`diff` against it at the window end, leaving the
        global (whole-run) counters untouched.
        """
        copy = MessageStats()
        copy.counts = Counter(self.counts)
        return copy

    def diff(self, earlier: "MessageStats") -> "MessageStats":
        """Transmissions recorded since ``earlier`` was snapshotted.

        Computed per type as ``self - earlier``; counters are monotone, so
        a negative delta means ``earlier`` is not actually an earlier
        snapshot of this stream.
        """
        delta = MessageStats()
        for message_type, count in self.counts.items():
            change = count - earlier.counts.get(message_type, 0)
            if change < 0:
                raise ValueError(
                    "diff against a snapshot with higher counts "
                    f"({message_type})"
                )
            if change:
                delta.counts[message_type] = change
        return delta

    def merge(self, other: "MessageStats") -> "MessageStats":
        """A new stats object combining both operand counters."""
        merged = MessageStats()
        merged.counts = self.counts + other.counts
        return merged

    def reset(self) -> None:
        """Clear all counters."""
        self.counts.clear()
