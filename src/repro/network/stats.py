"""Message-overhead accounting.

Table 1 of the paper reports the total (and per-node average) number of
protocol messages transmitted by FLOOR during a 750-second deployment, for
different network sizes and invitation TTLs.  :class:`MessageStats` is the
single sink all protocol layers report their transmissions to.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

from .messages import Message, MessageType, NET_COUNTER_KEYS

__all__ = ["MessageStats"]


@dataclass
class MessageStats:
    """Counts point-to-point transmissions per message type.

    Besides the per-type transmission counters the stats carry the
    delivery-condition counters recorded by the network model
    (:data:`~repro.network.messages.NET_COUNTER_KEYS`): drops, delays,
    retries, timeouts and stale neighbour-table reads.  Under the perfect
    network they stay empty, so structural-mode counter output is
    unchanged.
    """

    counts: Counter = field(default_factory=Counter)
    net_counts: Counter = field(default_factory=Counter)

    def record(self, message: Message) -> None:
        """Record one message (its cost is its hop count)."""
        self.counts[message.message_type] += message.cost()

    def record_transmissions(self, message_type: MessageType, count: int) -> None:
        """Record ``count`` point-to-point transmissions of a given type."""
        if count < 0:
            raise ValueError("transmission count cannot be negative")
        self.counts[message_type] += count

    def record_net(self, key: str, count: int = 1) -> None:
        """Record a delivery-condition event (``net.<key>`` telemetry)."""
        if key not in NET_COUNTER_KEYS:
            raise ValueError(
                f"unknown net counter {key!r}; expected one of "
                f"{NET_COUNTER_KEYS}"
            )
        if count < 0:
            raise ValueError("net counter increment cannot be negative")
        if count:
            self.net_counts[key] += count

    def total(self) -> int:
        """Total number of transmissions across all message types."""
        return sum(self.counts.values())

    def by_type(self) -> Dict[MessageType, int]:
        """Breakdown of transmissions per message type."""
        return dict(self.counts)

    def total_for(self, message_type: MessageType) -> int:
        """Transmissions of one specific type."""
        return self.counts.get(message_type, 0)

    def average_per_node(self, node_count: int) -> float:
        """Average number of transmissions per sensor node."""
        if node_count <= 0:
            return 0.0
        return self.total() / node_count

    def to_counters(
        self, prefix: str = "messages.", net_prefix: str = "net."
    ) -> Dict[str, int]:
        """The counts as flat telemetry counters (shared dotted schema).

        ``messages.<type>`` keys, lexically sorted, plus a
        ``messages.total`` aggregate — the same schema
        ``ServiceMetrics.to_counters`` and :class:`repro.obs.Telemetry`
        use, so message accounting folds into any telemetry summary.
        Non-zero delivery-condition counters follow as ``net.<key>``
        entries (key order of :data:`NET_COUNTER_KEYS`); under the
        perfect network none exist and the output is byte-identical to
        the structural schema.
        """
        counters = {
            f"{prefix}{message_type.name.lower()}": count
            for message_type, count in sorted(
                self.counts.items(), key=lambda item: item[0].name
            )
            if count
        }
        counters[f"{prefix}total"] = self.total()
        for key in NET_COUNTER_KEYS:
            count = self.net_counts.get(key, 0)
            if count:
                counters[f"{net_prefix}{key}"] = count
        return counters

    @classmethod
    def from_counters(
        cls,
        counters: Dict[str, int],
        prefix: str = "messages.",
        net_prefix: str = "net.",
    ) -> "MessageStats":
        """Rebuild stats from :meth:`to_counters` output (round-trip).

        The ``<prefix>total`` aggregate is recomputed, not read; unknown
        message-type or net-counter names raise ``ValueError``.
        """
        stats = cls()
        total_key = f"{prefix}total"
        for name, count in counters.items():
            if name == total_key:
                continue
            if name.startswith(prefix):
                type_name = name[len(prefix):]
                try:
                    message_type = MessageType[type_name.upper()]
                except KeyError:
                    raise ValueError(
                        f"unknown message type counter {name!r}"
                    ) from None
                stats.record_transmissions(message_type, count)
            elif name.startswith(net_prefix):
                stats.record_net(name[len(net_prefix):], count)
            else:
                raise ValueError(f"unrecognised counter {name!r}")
        return stats

    def per_period(
        self, periods: int, prefix: str = "messages.", net_prefix: str = "net."
    ) -> Dict[str, float]:
        """Per-period rates of every counter over a ``periods``-long run.

        Useful for comparing overhead across runs of different lengths
        (the degradation experiment reports rates, not raw totals).
        """
        if periods <= 0:
            raise ValueError("periods must be positive")
        return {
            name: count / periods
            for name, count in self.to_counters(prefix, net_prefix).items()
        }

    def snapshot(self) -> "MessageStats":
        """A frozen copy of the current counters.

        Window accounting for burst metrics: take a snapshot at the window
        start and :meth:`diff` against it at the window end, leaving the
        global (whole-run) counters untouched.
        """
        copy = MessageStats()
        copy.counts = Counter(self.counts)
        copy.net_counts = Counter(self.net_counts)
        return copy

    def diff(self, earlier: "MessageStats") -> "MessageStats":
        """Transmissions recorded since ``earlier`` was snapshotted.

        Computed per type as ``self - earlier`` (delivery-condition
        counters included); counters are monotone, so a negative delta
        means ``earlier`` is not actually an earlier snapshot of this
        stream.
        """
        delta = MessageStats()
        for message_type, count in self.counts.items():
            change = count - earlier.counts.get(message_type, 0)
            if change < 0:
                raise ValueError(
                    "diff against a snapshot with higher counts "
                    f"({message_type})"
                )
            if change:
                delta.counts[message_type] = change
        for key, count in self.net_counts.items():
            change = count - earlier.net_counts.get(key, 0)
            if change < 0:
                raise ValueError(
                    f"diff against a snapshot with higher counts (net.{key})"
                )
            if change:
                delta.net_counts[key] = change
        return delta

    def merge(self, other: "MessageStats") -> "MessageStats":
        """A new stats object combining both operand counters."""
        merged = MessageStats()
        merged.counts = self.counts + other.counts
        merged.net_counts = self.net_counts + other.net_counts
        return merged

    def reset(self) -> None:
        """Clear all counters."""
        self.counts.clear()
        self.net_counts.clear()
