"""Canonical field layouts used by the paper's evaluation.

Section 4.3 / 6 of the paper fixes a 1000 x 1000 m field with the base
station at the origin and sensors initially clustered in the lower-left
500 x 500 m quadrant.  Figures 3(c) and 8(c) add two rectangular obstacles
that leave three exits toward the large vacant area.  The exact obstacle
coordinates are not given in the paper, so this module defines a layout that
matches the described topology: two long rectangles separating the initial
cluster area from the rest of the field, with two wide exits at the top and
one narrow exit at the bottom.
"""

from __future__ import annotations

from typing import List

from ..geometry import Vec2
from .field import Field
from .obstacles import Obstacle

__all__ = [
    "FIELD_SIZE",
    "CLUSTER_SIZE",
    "obstacle_free_field",
    "two_obstacle_field",
    "corridor_field",
    "clustered_initial_positions",
    "uniform_initial_positions",
]

#: Side length of the square sensing field used throughout the evaluation.
FIELD_SIZE = 1000.0

#: Side length of the lower-left square in which sensors start clustered.
CLUSTER_SIZE = 500.0


def obstacle_free_field(size: float = FIELD_SIZE) -> Field:
    """The obstacle-free field of Figures 3(a,b) / 8(a,b) and Figs 9-12."""
    return Field(size, size)


def two_obstacle_field(size: float = FIELD_SIZE) -> Field:
    """The two-obstacle field of Figures 3(c) / 8(c) and Table 1.

    Two rectangular obstacles wall off the initial cluster quadrant, leaving
    three exits: two at the top (on either side of the upper obstacle) and a
    narrow one near the bottom-right corner of the cluster area.
    """
    scale = size / FIELD_SIZE
    upper = Obstacle.rectangle(
        100.0 * scale, 560.0 * scale, 520.0 * scale, 620.0 * scale, name="upper"
    )
    right = Obstacle.rectangle(
        560.0 * scale, 80.0 * scale, 620.0 * scale, 520.0 * scale, name="right"
    )
    return Field(size, size, [upper, right])


def corridor_field(size: float = FIELD_SIZE) -> Field:
    """A field with a narrow corridor, used by tests and examples.

    The corridor stresses the boundary-guided expansion of FLOOR and the
    oscillation behaviour of CPVF in "narrow or bumpy passages"
    (Section 4.4).
    """
    scale = size / FIELD_SIZE
    lower_wall = Obstacle.rectangle(
        300.0 * scale, 0.0, 360.0 * scale, 450.0 * scale, name="lower-wall"
    )
    upper_wall = Obstacle.rectangle(
        300.0 * scale, 550.0 * scale, 360.0 * scale, size, name="upper-wall"
    )
    return Field(size, size, [lower_wall, upper_wall])


def clustered_initial_positions(
    count: int,
    rng,
    cluster_size: float = CLUSTER_SIZE,
    field: Field | None = None,
) -> List[Vec2]:
    """Initial positions uniformly random in the lower-left cluster square.

    Positions falling inside an obstacle are re-drawn, matching the paper's
    requirement that sensors start in the free space of the field.
    """
    positions: List[Vec2] = []
    attempts = 0
    while len(positions) < count:
        p = Vec2(rng.uniform(0.0, cluster_size), rng.uniform(0.0, cluster_size))
        attempts += 1
        if field is not None and not field.is_free(p):
            if attempts > 100 * max(1, count):
                raise RuntimeError("could not place sensors outside obstacles")
            continue
        positions.append(p)
    return positions


def uniform_initial_positions(
    count: int, rng, field: Field
) -> List[Vec2]:
    """Initial positions uniformly random over the whole free field."""
    positions: List[Vec2] = []
    attempts = 0
    while len(positions) < count:
        p = Vec2(rng.uniform(0.0, field.width), rng.uniform(0.0, field.height))
        attempts += 1
        if not field.is_free(p):
            if attempts > 100 * max(1, count):
                raise RuntimeError("could not place sensors outside obstacles")
            continue
        positions.append(p)
    return positions
