"""Random obstacle generation for the Fig 13 experiment.

Section 6.4: "We randomly select between 1 and 4 rectangular obstacles of
random size; these obstacles may overlap with one another, however we
maintain the condition that the obstacles do not partition the field."

The generator draws rectangles with sides in a configurable range, rejects
layouts that disconnect the free space or swallow the base station, and
retries until a valid layout is found.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..geometry import Vec2
from .field import Field
from .layouts import FIELD_SIZE
from .obstacles import Obstacle

__all__ = ["RandomObstacleConfig", "generate_random_obstacle_field"]


@dataclass
class RandomObstacleConfig:
    """Parameters of the random obstacle generator.

    The defaults correspond to the Fig 13 setting: 1-4 rectangular obstacles
    of random size inside a 1000 x 1000 m field, never partitioning the
    field and never covering the base station at the origin.
    """

    field_size: float = FIELD_SIZE
    min_obstacles: int = 1
    max_obstacles: int = 4
    min_side: float = 80.0
    max_side: float = 400.0
    keep_clear_radius: float = 60.0
    connectivity_resolution: float = 25.0
    max_attempts: int = 200


def _random_rectangle(rng, config: RandomObstacleConfig) -> Obstacle:
    """Draw one random axis-aligned rectangular obstacle."""
    width = rng.uniform(config.min_side, config.max_side)
    height = rng.uniform(config.min_side, config.max_side)
    xmin = rng.uniform(0.0, config.field_size - width)
    ymin = rng.uniform(0.0, config.field_size - height)
    return Obstacle.rectangle(xmin, ymin, xmin + width, ymin + height)


def _clears_base_station(obstacle: Obstacle, config: RandomObstacleConfig) -> bool:
    """Whether the obstacle keeps away from the base station at the origin."""
    return obstacle.distance_to(Vec2(0.0, 0.0)) >= config.keep_clear_radius


def generate_random_obstacle_field(
    rng,
    config: Optional[RandomObstacleConfig] = None,
    validator: Optional[Callable[[Field], bool]] = None,
) -> Field:
    """Generate a random-obstacle field whose free space remains connected.

    ``validator`` is the acceptance predicate of the rejection loop; the
    default keeps the historical Fig 13 condition (free space forms one
    connected region at ``config.connectivity_resolution``).  The scenario
    subsystem passes :meth:`repro.scenarios.ScenarioValidator.accepts` here
    to additionally require base-station reachability and a minimum free
    area.

    Raises :class:`RuntimeError` if no valid layout is found within
    ``config.max_attempts`` attempts (which practically never happens with
    the default parameters).
    """
    cfg = config or RandomObstacleConfig()
    if validator is None:
        validator = lambda f: f.free_space_connected(cfg.connectivity_resolution)
    for _ in range(cfg.max_attempts):
        count = rng.randint(cfg.min_obstacles, cfg.max_obstacles)
        obstacles: List[Obstacle] = []
        ok = True
        for _ in range(count):
            for _ in range(cfg.max_attempts):
                candidate = _random_rectangle(rng, cfg)
                if _clears_base_station(candidate, cfg):
                    obstacles.append(candidate)
                    break
            else:
                ok = False
                break
        if not ok:
            continue
        candidate_field = Field(cfg.field_size, cfg.field_size, obstacles)
        if validator(candidate_field):
            return candidate_field
    raise RuntimeError("failed to generate a connected random-obstacle field")
