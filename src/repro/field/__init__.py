"""Field model: the bounded sensing field, obstacles and canonical layouts."""

from .obstacles import Obstacle
from .field import Field
from .layouts import (
    CLUSTER_SIZE,
    FIELD_SIZE,
    clustered_initial_positions,
    corridor_field,
    obstacle_free_field,
    two_obstacle_field,
    uniform_initial_positions,
)
from .generator import RandomObstacleConfig, generate_random_obstacle_field

__all__ = [
    "Obstacle",
    "Field",
    "FIELD_SIZE",
    "CLUSTER_SIZE",
    "obstacle_free_field",
    "two_obstacle_field",
    "corridor_field",
    "clustered_initial_positions",
    "uniform_initial_positions",
    "RandomObstacleConfig",
    "generate_random_obstacle_field",
]
