"""The sensing field: a bounded rectangle with polygonal obstacles.

The field is the environment every scheme operates in.  It answers the
queries the paper's sensors are allowed to make:

* a sensor knows the boundary of the *field* (Section 3.1);
* a sensor can recognise the boundary of any obstacle *within its sensing
  range* (Section 3.1) — :meth:`Field.boundary_segments_within`;
* motion is blocked by obstacles and by the field boundary.

The field also provides the coverage-measurement machinery used by the
evaluation (fraction of non-obstacle area covered by at least one sensing
disk) and the free-space connectivity check the random-obstacle generator
relies on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..geometry import Circle, CoverageGrid, Polygon, Segment, Vec2
from .obstacles import Obstacle

__all__ = ["Field", "flood_fill_count"]


def flood_fill_count(free: np.ndarray, start: Tuple[int, int]) -> int:
    """Number of cells 4-connected to ``start`` in a 2-D boolean mask.

    Returns 0 when the start cell itself is not free.  The single
    flood-fill implementation shared by :meth:`Field.free_space_connected`
    and the scenario validator, so the two acceptance paths can never
    diverge on connectivity semantics.
    """
    nx, ny = free.shape
    if not free[start]:
        return 0
    visited = np.zeros_like(free, dtype=bool)
    visited[start] = True
    stack = [start]
    count = 0
    while stack:
        cx, cy = stack.pop()
        count += 1
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            mx, my = cx + dx, cy + dy
            if 0 <= mx < nx and 0 <= my < ny and free[mx, my] and not visited[mx, my]:
                visited[mx, my] = True
                stack.append((mx, my))
    return count


@dataclass
class Field:
    """A rectangular sensing field ``[0, width] x [0, height]`` with obstacles."""

    width: float
    height: float
    obstacles: List[Obstacle] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("field dimensions must be positive")
        self._grid_cache: dict[float, Tuple[CoverageGrid, np.ndarray]] = {}
        #: Bumped on every obstacle mutation; consumers caching rasterised
        #: masks or visibility answers key their epochs on it.
        self.version: int = 0

    # ------------------------------------------------------------------
    # Obstacle mutation (lifecycle events)
    # ------------------------------------------------------------------
    def add_obstacle(self, obstacle: Obstacle) -> int:
        """Append an obstacle mid-run (e.g. a door closing); returns its index."""
        self.obstacles.append(obstacle)
        self._invalidate_obstacle_caches()
        return len(self.obstacles) - 1

    def remove_obstacle(self, index: int) -> Obstacle:
        """Remove the obstacle at ``index`` (e.g. a door re-opening)."""
        removed = self.obstacles.pop(index)
        self._invalidate_obstacle_caches()
        return removed

    def _invalidate_obstacle_caches(self) -> None:
        self._grid_cache.clear()
        self.version += 1

    # ------------------------------------------------------------------
    # Basic geometry
    # ------------------------------------------------------------------
    @property
    def bounds(self) -> Tuple[float, float, float, float]:
        """``(xmin, ymin, xmax, ymax)`` of the field rectangle."""
        return (0.0, 0.0, self.width, self.height)

    def boundary_polygon(self) -> Polygon:
        """The field rectangle as a polygon."""
        return Polygon.rectangle(0.0, 0.0, self.width, self.height)

    def boundary_edges(self) -> List[Segment]:
        """The four edges of the field rectangle."""
        return self.boundary_polygon().edges()

    def area(self) -> float:
        """Total rectangle area (including obstacle area)."""
        return self.width * self.height

    def free_area(self, resolution: float = 10.0) -> float:
        """Approximate area of the field minus obstacles."""
        grid, obstacle_mask = self.grid_and_obstacle_mask(resolution)
        free_fraction = 1.0 - grid.fraction(obstacle_mask)
        return free_fraction * self.area()

    # ------------------------------------------------------------------
    # Point queries
    # ------------------------------------------------------------------
    def in_bounds(self, p: Vec2, margin: float = 0.0) -> bool:
        """Whether ``p`` lies inside the field rectangle (shrunk by ``margin``)."""
        return (
            margin <= p.x <= self.width - margin
            and margin <= p.y <= self.height - margin
        )

    def in_obstacle(self, p: Vec2) -> bool:
        """Whether ``p`` lies strictly inside some obstacle."""
        return any(ob.contains(p) for ob in self.obstacles)

    def is_free(self, p: Vec2) -> bool:
        """Whether ``p`` is a valid sensor position (in bounds, not in an obstacle)."""
        return self.in_bounds(p) and not self.in_obstacle(p)

    def clamp(self, p: Vec2) -> Vec2:
        """Project ``p`` back inside the field rectangle."""
        return Vec2(
            min(self.width, max(0.0, p.x)),
            min(self.height, max(0.0, p.y)),
        )

    def nearest_free(self, p: Vec2, step: float = 1.0, max_radius: float = 200.0) -> Vec2:
        """A free point near ``p`` (spiral search); ``p`` itself when free."""
        candidate = self.clamp(p)
        if self.is_free(candidate):
            return candidate
        radius = step
        while radius <= max_radius:
            for k in range(16):
                angle = 2.0 * math.pi * k / 16
                q = self.clamp(candidate + Vec2.from_polar(radius, angle))
                if self.is_free(q):
                    return q
            radius += step
        return candidate

    # ------------------------------------------------------------------
    # Motion queries
    # ------------------------------------------------------------------
    def segment_blocked(self, seg: Segment) -> bool:
        """Whether moving straight along ``seg`` is blocked.

        A move is blocked when it leaves the field rectangle or crosses the
        interior of any obstacle.
        """
        if not self.in_bounds(seg.a) or not self.in_bounds(seg.b):
            return True
        # Sample a few interior points against the bounds as well: both
        # endpoints being inside a convex rectangle already guarantees the
        # whole segment is inside, so only obstacles remain to be checked.
        return any(ob.blocks_segment(seg) for ob in self.obstacles)

    def first_obstacle_hit(
        self, seg: Segment
    ) -> Optional[Tuple[Obstacle, Vec2]]:
        """First obstacle the directed segment runs into, with the hit point."""
        best: Optional[Tuple[Obstacle, Vec2]] = None
        best_dist = math.inf
        for ob in self.obstacles:
            hit = ob.first_hit(seg)
            if hit is None:
                continue
            dist = seg.a.distance_to(hit)
            if dist < best_dist:
                best = (ob, hit)
                best_dist = dist
        return best

    def max_free_travel(self, start: Vec2, direction: Vec2, distance: float) -> float:
        """Longest prefix of a straight move that stays in free space.

        Returns a travel distance ``d <= distance`` such that
        ``start + direction * d`` is free and the path to it does not cross
        an obstacle.  Used by the virtual-force integrator to avoid stepping
        into obstacles or out of the field.
        """
        if distance <= 0:
            return 0.0
        norm = math.hypot(direction.x, direction.y)
        if norm <= 1e-9:
            return 0.0
        unit_x, unit_y = direction.x / norm, direction.y / norm
        if not self.obstacles:
            # Obstacle-free fast path in plain floats: a straight move is
            # admissible exactly when its endpoint stays in the rectangle
            # (the rectangle is convex and the start is checked too).
            if not self.in_bounds(start):
                return 0.0
            sx, sy = start.x, start.y
            tx, ty = sx + unit_x * distance, sy + unit_y * distance
            if 0.0 <= tx <= self.width and 0.0 <= ty <= self.height:
                return distance
            lo, hi = 0.0, distance
            for _ in range(24):
                mid = (lo + hi) / 2.0
                cx, cy = sx + unit_x * mid, sy + unit_y * mid
                if 0.0 <= cx <= self.width and 0.0 <= cy <= self.height:
                    lo = mid
                else:
                    hi = mid
            return lo
        unit = Vec2(unit_x, unit_y)
        lo, hi = 0.0, distance
        target = start + unit * distance
        if self.is_free(target) and not self.segment_blocked(Segment(start, target)):
            return distance
        # Binary search for the largest admissible travel distance.
        for _ in range(24):
            mid = (lo + hi) / 2.0
            candidate = start + unit * mid
            if self.is_free(candidate) and not self.segment_blocked(
                Segment(start, candidate)
            ):
                lo = mid
            else:
                hi = mid
        return lo

    def max_free_travel_batch(
        self,
        px: np.ndarray,
        py: np.ndarray,
        dir_x: np.ndarray,
        dir_y: np.ndarray,
        distances: np.ndarray,
    ) -> np.ndarray:
        """:meth:`max_free_travel` for a whole batch of rays at once.

        ``px, py`` are ray starts, ``dir_x, dir_y`` direction components
        (not necessarily unit — normalised here exactly like the scalar
        path) and ``distances`` the per-ray travel caps.  Rays whose swept
        bounding box cannot touch any obstacle run through a vectorised
        replica of the scalar arithmetic (same endpoint test, same 24-step
        bisection); rays near an obstacle fall back to the exact scalar
        query, so results match :meth:`max_free_travel` ray for ray.
        """
        px = np.asarray(px, dtype=float)
        py = np.asarray(py, dtype=float)
        dir_x = np.asarray(dir_x, dtype=float)
        dir_y = np.asarray(dir_y, dtype=float)
        distances = np.asarray(distances, dtype=float)
        out = np.zeros(px.shape, dtype=float)
        norm = np.hypot(dir_x, dir_y)
        safe_norm = np.where(norm > 1e-9, norm, 1.0)
        ux = dir_x / safe_norm
        uy = dir_y / safe_norm
        in_start = (px >= 0.0) & (px <= self.width) & (py >= 0.0) & (py <= self.height)
        active = (distances > 0.0) & (norm > 1e-9) & in_start
        if not active.any():
            return out
        tx = px + ux * distances
        ty = py + uy * distances
        vectorizable = active
        if self.obstacles:
            # A ray can only be affected by an obstacle when its swept
            # bounding box overlaps the obstacle's; flagged rays keep the
            # exact scalar treatment (conservative inclusion is safe).
            margin = 1e-6
            bx0, bx1 = np.minimum(px, tx), np.maximum(px, tx)
            by0, by1 = np.minimum(py, ty), np.maximum(py, ty)
            near = np.zeros(px.shape, dtype=bool)
            for ob in self.obstacles:
                xmin, ymin, xmax, ymax = ob.bounding_box()
                near |= (
                    (bx1 >= xmin - margin)
                    & (bx0 <= xmax + margin)
                    & (by1 >= ymin - margin)
                    & (by0 <= ymax + margin)
                )
            near &= active
            for i in np.flatnonzero(near):
                out[i] = self.max_free_travel(
                    Vec2(px[i], py[i]),
                    Vec2(dir_x[i], dir_y[i]),
                    float(distances[i]),
                )
            vectorizable = active & ~near
            if not vectorizable.any():
                return out
        end_in = (tx >= 0.0) & (tx <= self.width) & (ty >= 0.0) & (ty <= self.height)
        full = vectorizable & end_in
        out[full] = distances[full]
        rem = np.flatnonzero(vectorizable & ~end_in)
        if rem.size:
            sx, sy = px[rem], py[rem]
            rux, ruy = ux[rem], uy[rem]
            lo = np.zeros(rem.shape, dtype=float)
            hi = distances[rem].copy()
            for _ in range(24):
                mid = (lo + hi) / 2.0
                cx = sx + rux * mid
                cy = sy + ruy * mid
                inb = (cx >= 0.0) & (cx <= self.width) & (cy >= 0.0) & (cy <= self.height)
                lo = np.where(inb, mid, lo)
                hi = np.where(inb, hi, mid)
            out[rem] = lo
        return out

    # ------------------------------------------------------------------
    # Sensing-range boundary queries (used by FLOOR's BLG expansion)
    # ------------------------------------------------------------------
    def boundary_segments_within(self, circle: Circle) -> List[Segment]:
        """Obstacle/field boundary portions inside a sensing disk.

        The paper assumes a sensor "can recognize the boundary of the
        obstacles within its sensing range" and knows the field boundary;
        this method returns exactly those visible boundary pieces, clipped
        to the sensing disk.
        """
        segments: List[Segment] = []
        candidate_edges: List[Segment] = list(self.boundary_edges())
        for ob in self.obstacles:
            candidate_edges.extend(ob.boundary_edges())
        for edge in candidate_edges:
            clipped = circle.clip_segment(edge)
            if clipped is not None and clipped.length() > 1e-9:
                segments.append(clipped)
        return segments

    # ------------------------------------------------------------------
    # Coverage measurement
    # ------------------------------------------------------------------
    def grid_and_obstacle_mask(
        self, resolution: float = 10.0
    ) -> Tuple[CoverageGrid, np.ndarray]:
        """A coverage grid over the field plus the mask of obstacle points.

        The pair is cached per resolution because the obstacle mask is
        relatively expensive and reused every time coverage is measured.
        """
        cached = self._grid_cache.get(resolution)
        if cached is not None:
            return cached
        grid = CoverageGrid(0.0, 0.0, self.width, self.height, resolution)
        if self.obstacles:
            obstacle_mask = self._rasterize_obstacles(grid)
        else:
            obstacle_mask = np.zeros(grid.num_points, dtype=bool)
        self._grid_cache[resolution] = (grid, obstacle_mask)
        return grid, obstacle_mask

    def _rasterize_obstacles(self, grid: CoverageGrid) -> np.ndarray:
        """Obstacle mask over the grid points.

        Axis-aligned rectangles (every canonical layout and generator) are
        rasterised with four vectorised comparisons: a grid point is
        interior exactly when it clears all four edges by more than the
        polygon's boundary epsilon, the same classification
        ``Obstacle.contains`` makes point by point.  Arbitrary polygons go
        through the vectorised ray-cast (``Obstacle.contains_points``),
        restricted to the points inside the polygon's bounding box; parity
        with the per-point predicate scan is pinned by
        ``tests/field/test_rasterize_parity.py``.
        """
        px, py = grid.point_arrays()
        mask = np.zeros(grid.num_points, dtype=bool)
        eps = 1e-7  # Polygon.on_boundary: the boundary is not interior
        for ob in self.obstacles:
            box = ob.axis_aligned_box()
            if box is not None:
                xmin, ymin, xmax, ymax = box
                mask |= (
                    (px - xmin > eps)
                    & (xmax - px > eps)
                    & (py - ymin > eps)
                    & (ymax - py > eps)
                )
                continue
            xmin, ymin, xmax, ymax = ob.bounding_box()
            near = (
                (px >= xmin - eps)
                & (px <= xmax + eps)
                & (py >= ymin - eps)
                & (py <= ymax + eps)
            )
            if near.any():
                mask[near] |= ob.contains_points(px[near], py[near])
        return mask

    def coverage_fraction(
        self,
        positions: Iterable[Vec2],
        sensing_range: float,
        resolution: float = 10.0,
    ) -> float:
        """Fraction of the non-obstacle field area covered by sensing disks."""
        grid, obstacle_mask = self.grid_and_obstacle_mask(resolution)
        centers = [p.as_tuple() for p in positions]
        covered = grid.coverage_mask(centers, sensing_range)
        free = ~obstacle_mask
        return grid.fraction(covered & free, domain=free)

    # ------------------------------------------------------------------
    # Free-space connectivity (precondition on valid obstacle layouts)
    # ------------------------------------------------------------------
    def free_space_connected(self, resolution: float = 20.0) -> bool:
        """Whether the non-obstacle area is a single connected region.

        Checked on a grid with 4-connectivity, which is adequate for the
        rectangular obstacle layouts used by the experiments.  A field with
        no free cells is reported as disconnected.
        """
        grid, obstacle_mask = self.grid_and_obstacle_mask(resolution)
        nx, ny = grid.shape
        free = (~obstacle_mask).reshape(nx, ny)
        total_free = int(free.sum())
        if total_free == 0:
            return False
        start = tuple(np.argwhere(free)[0])
        return flood_fill_count(free, start) == total_free

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def with_obstacles(self, obstacles: Sequence[Obstacle]) -> "Field":
        """A copy of this field with a different obstacle list."""
        return Field(self.width, self.height, list(obstacles))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Field({self.width:g} x {self.height:g}, "
            f"{len(self.obstacles)} obstacles)"
        )
