"""Obstacle models.

The paper allows "any number of obstacles of arbitrary shape, as long as the
field is connected".  We represent every obstacle as a simple polygon; a
convenience constructor is provided for the axis-aligned rectangles used in
the evaluation (Figures 3(c), 8(c), 13 and Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..geometry import Polygon, Segment, Vec2

__all__ = ["Obstacle"]


@dataclass(frozen=True)
class Obstacle:
    """A solid (impassable, opaque-to-sensing) polygonal region."""

    polygon: Polygon
    name: str = ""

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def rectangle(
        xmin: float, ymin: float, xmax: float, ymax: float, name: str = ""
    ) -> "Obstacle":
        """Axis-aligned rectangular obstacle."""
        return Obstacle(Polygon.rectangle(xmin, ymin, xmax, ymax), name=name)

    @staticmethod
    def from_vertices(vertices: Sequence[Vec2], name: str = "") -> "Obstacle":
        """Obstacle from an explicit vertex list."""
        return Obstacle(Polygon(list(vertices)), name=name)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def contains(self, p: Vec2, include_boundary: bool = False) -> bool:
        """Whether ``p`` lies inside the obstacle.

        By default the boundary is *not* part of the obstacle, so sensors may
        travel along it (the BUG2 planner follows obstacle boundaries).
        """
        return self.polygon.contains(p, include_boundary=include_boundary)

    def contains_points(self, px, py, include_boundary: bool = False):
        """Vectorised :meth:`contains` over coordinate arrays.

        Same classification as the scalar predicate (boundary excluded by
        default), evaluated for a whole batch of points at once; the
        rasteriser uses it for non-axis-aligned polygons.
        """
        return self.polygon.contains_points(
            px, py, include_boundary=include_boundary
        )

    def blocks_segment(self, seg: Segment) -> bool:
        """Whether a straight move along ``seg`` would enter the obstacle."""
        return self.polygon.segment_crosses_interior(seg)

    def boundary_edges(self) -> List[Segment]:
        """The obstacle boundary as a list of edges."""
        return self.polygon.edges()

    def perimeter(self) -> float:
        """Perimeter of the obstacle (used by the BUG2 path-length bound)."""
        return self.polygon.perimeter()

    def area(self) -> float:
        """Area removed from the field by this obstacle."""
        return self.polygon.area()

    def bounding_box(self) -> Tuple[float, float, float, float]:
        """Axis-aligned bounding box of the obstacle."""
        return self.polygon.bounding_box()

    def axis_aligned_box(self) -> Optional[Tuple[float, float, float, float]]:
        """``(xmin, ymin, xmax, ymax)`` when the obstacle *is* an
        axis-aligned rectangle, else ``None``.

        Rectangles are what every generator and canonical layout emits;
        recognising them lets the field rasterise the obstacle mask with
        four vectorised comparisons instead of a per-point polygon test.
        """
        vertices = self.polygon.vertices
        if len(vertices) != 4:
            return None
        xs = sorted({v.x for v in vertices})
        ys = sorted({v.y for v in vertices})
        if len(xs) != 2 or len(ys) != 2:
            return None
        corners = {(v.x, v.y) for v in vertices}
        expected = {(x, y) for x in xs for y in ys}
        if corners != expected:
            return None
        return (xs[0], ys[0], xs[1], ys[1])

    def distance_to(self, p: Vec2) -> float:
        """Distance from ``p`` to the obstacle (zero when inside)."""
        return self.polygon.distance_to_point(p)

    def boundary_distance_to(self, p: Vec2) -> float:
        """Distance from ``p`` to the obstacle boundary."""
        return self.polygon.boundary_distance_to_point(p)

    def closest_boundary_point(self, p: Vec2) -> Vec2:
        """Closest point of the obstacle boundary to ``p``."""
        return self.polygon.closest_boundary_point(p)

    def first_hit(self, seg: Segment) -> Optional[Vec2]:
        """First point where ``seg`` (traversed a->b) meets the boundary.

        Returns ``None`` if the segment never touches the obstacle.
        """
        hits = self.polygon.segment_intersections(seg)
        if not hits:
            return None
        return hits[0]

    def overlaps(self, other: "Obstacle") -> bool:
        """Whether two obstacles overlap (allowed by the Fig 13 generator)."""
        if any(other.polygon.contains(v) for v in self.polygon.vertices):
            return True
        if any(self.polygon.contains(v) for v in other.polygon.vertices):
            return True
        return any(
            e1.intersects(e2)
            for e1 in self.boundary_edges()
            for e2 in other.boundary_edges()
        )
