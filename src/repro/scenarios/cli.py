"""Command-line face of the scenario subsystem.

::

    python -m repro.scenarios --list
    python -m repro.scenarios --check [--scale smoke|bench|full]
    python -m repro.scenarios --render maze-quad [--format ascii|json]

``--list`` prints the registered layouts and placements plus the curated
suite; ``--check`` generates and validates every suite scenario (the CI
smoke step — exit status 1 when any scenario fails validation);
``--render`` draws one scenario as an ASCII field map or dumps it as
JSON (obstacles, initial positions, fingerprint).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from ..api.registry import layout_registry, placement_registry
from .suite import DEFAULT_SUITE
from .validate import ScenarioValidator, scenario_fingerprint

__all__ = ["main"]


def _scales():
    """Name -> ExperimentScale map (imported lazily; see module layering)."""
    from ..experiments.common import BENCH_SCALE, FULL_SCALE, SMOKE_SCALE

    return {"smoke": SMOKE_SCALE, "bench": BENCH_SCALE, "full": FULL_SCALE}


def _list_report() -> str:
    lines: List[str] = ["registered field layouts:"]
    lines.extend(f"  {name}" for name in layout_registry.names())
    lines.append("registered placements:")
    lines.extend(f"  {name}" for name in placement_registry.names())
    lines.append("curated suite:")
    for entry in DEFAULT_SUITE:
        lines.append(
            f"  {entry.name:<22s} {entry.layout} + {entry.placement}: "
            f"{entry.description}"
        )
    return "\n".join(lines)


def _check_report(scale) -> tuple:
    """Validate every suite scenario; returns ``(report_text, all_ok)``."""
    validator = ScenarioValidator()
    lines: List[str] = [
        f"validating {len(DEFAULT_SUITE)} suite scenarios at "
        f"{scale.field_size:g} m / {scale.sensor_count} sensors"
    ]
    all_ok = True
    for entry, spec in DEFAULT_SUITE.specs(scale):
        report = validator.validate_scenario(spec)
        timeline = (
            f" timeline={entry.timeline} ({len(spec.events)} events)"
            if entry.timeline
            else ""
        )
        if report.ok:
            lines.append(
                f"  PASS {entry.name:<22s} free={report.free_area_fraction:5.1%}"
                f"{timeline}"
            )
        else:
            all_ok = False
            lines.append(
                f"  FAIL {entry.name:<22s} {'; '.join(report.issues())}{timeline}"
            )
    lines.append("all scenarios valid" if all_ok else "validation FAILED")
    return "\n".join(lines), all_ok


def _render(name: str, scale, fmt: str, width: int) -> str:
    entry = DEFAULT_SUITE.get(name)
    spec = entry.spec(scale)
    field = spec.build_field()
    positions = spec.initial_positions(field)
    if fmt == "json":
        return json.dumps(
            {
                "name": entry.name,
                "description": entry.description,
                "spec": spec.to_dict(),
                "fingerprint": scenario_fingerprint(spec, field, positions),
                "obstacles": [
                    [[v.x, v.y] for v in ob.polygon.vertices]
                    for ob in field.obstacles
                ],
                "positions": [[p.x, p.y] for p in positions],
            },
            indent=2,
        )
    from ..geometry import Vec2
    from ..viz import render_layout

    header = (
        f"{entry.name}: {entry.description}\n"
        f"layout={entry.layout} placement={entry.placement} "
        f"n={spec.sensor_count} field={spec.field_size:g} m"
    )
    art = render_layout(
        field,
        positions,
        sensing_range=spec.sensing_range,
        width=width,
        base_station=Vec2(0.0, 0.0),
    )
    return f"{header}\n{art}"


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios", description=__doc__
    )
    parser.add_argument(
        "--list", action="store_true", help="list layouts, placements and the suite"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="generate + validate every suite scenario (exit 1 on failure)",
    )
    parser.add_argument(
        "--render", metavar="NAME", default=None, help="render one suite scenario"
    )
    parser.add_argument(
        "--format",
        choices=("ascii", "json"),
        default="ascii",
        help="render format (default: ascii)",
    )
    parser.add_argument(
        "--scale",
        choices=("smoke", "bench", "full"),
        default="smoke",
        help="experiment scale for --check/--render (default: smoke)",
    )
    parser.add_argument(
        "--width", type=int, default=60, help="ASCII render width in characters"
    )
    args = parser.parse_args(argv)

    if not (args.list or args.check or args.render):
        parser.print_help()
        return 2

    if args.list:
        print(_list_report())
    if args.check:
        report, ok = _check_report(_scales()[args.scale])
        print(report)
        if not ok:
            return 1
    if args.render:
        try:
            print(_render(args.render, _scales()[args.scale], args.format, args.width))
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
