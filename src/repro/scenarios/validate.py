"""Scenario validity checking.

Every generated field must satisfy the paper's standing assumptions before
a scheme is allowed to run on it (Section 3.1): the free space must be one
connected region (obstacles "do not partition the field"), the base
station at the origin must sit in — and therefore be reachable from — that
free region, and enough free area must remain for deployment to be
meaningful at all.

:class:`ScenarioValidator` centralises those checks.  It is the predicate
the Fig 13 rejection loop historically applied inline
(:func:`repro.field.generator.generate_random_obstacle_field` now accepts
it as its ``validator``), and every generator in
:mod:`repro.scenarios.generators` runs under it with bounded retry
(:func:`generate_validated`).

The connectivity and reachability checks share one grid flood fill: the
field's cached obstacle mask (:meth:`repro.field.Field.
grid_and_obstacle_mask`) is flooded with 4-connectivity from the cell
containing the base station, so a single BFS answers both "is the free
space connected" and "can the base station reach it".
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..api.scenario import ScenarioSpec
from ..field import Field
from ..field.field import flood_fill_count
from ..geometry import Vec2

__all__ = [
    "ValidationReport",
    "ScenarioValidator",
    "generate_validated",
    "scenario_fingerprint",
]


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of validating one field (and optionally its placement)."""

    #: Whether the non-obstacle area forms a single connected region.
    free_space_connected: bool
    #: Whether the base station's grid cell is free (and hence, when the
    #: free space is connected, every free point is reachable from it).
    base_station_reachable: bool
    #: Fraction of grid cells not inside an obstacle.
    free_area_fraction: float
    #: The minimum free fraction the validator required.
    min_free_fraction: float
    #: Indices of placed sensors that are not in free space (empty unless
    #: positions were validated).
    blocked_sensors: Tuple[int, ...] = ()
    #: Problems found in the scenario's lifecycle event timeline (empty
    #: unless a timeline was validated).
    timeline_issues: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """Whether the scenario passed every check."""
        return not self.issues()

    def issues(self) -> List[str]:
        """Human-readable list of failed checks (empty when valid)."""
        problems: List[str] = []
        if not self.free_space_connected:
            problems.append("free space is not a single connected region")
        if not self.base_station_reachable:
            problems.append("base station is not in reachable free space")
        if self.free_area_fraction < self.min_free_fraction:
            problems.append(
                f"free area fraction {self.free_area_fraction:.2f} below "
                f"minimum {self.min_free_fraction:.2f}"
            )
        if self.blocked_sensors:
            problems.append(
                f"{len(self.blocked_sensors)} sensors start inside an "
                f"obstacle or out of bounds (e.g. #{self.blocked_sensors[0]})"
            )
        problems.extend(self.timeline_issues)
        return problems


@dataclass(frozen=True)
class ScenarioValidator:
    """Shared validity predicate for generated fields and placements."""

    #: Base-station position (the paper fixes it at the origin).
    base_station: Vec2 = Vec2(0.0, 0.0)
    #: Minimum fraction of the field that must remain free.
    min_free_fraction: float = 0.25
    #: Flood-fill grid resolution; ``None`` scales with the field
    #: (``size / 64``, at least 2 m) so narrow passages stay resolved.
    resolution: Optional[float] = None

    def _resolution_for(self, field: Field) -> float:
        if self.resolution is not None:
            return self.resolution
        return max(2.0, min(field.width, field.height) / 64.0)

    # ------------------------------------------------------------------
    # Field-level checks
    # ------------------------------------------------------------------
    def validate_field(self, field: Field) -> ValidationReport:
        """Run the connectivity / reachability / free-area checks."""
        resolution = self._resolution_for(field)
        grid, obstacle_mask = field.grid_and_obstacle_mask(resolution)
        nx, ny = grid.shape
        free = (~obstacle_mask).reshape(nx, ny)
        total_free = int(free.sum())
        free_fraction = total_free / free.size if free.size else 0.0
        if total_free == 0:
            return ValidationReport(False, False, 0.0, self.min_free_fraction)

        base_i = min(nx - 1, max(0, int(self.base_station.x / resolution)))
        base_j = min(ny - 1, max(0, int(self.base_station.y / resolution)))
        base_free = bool(free[base_i, base_j])

        # One BFS answers both questions: flooded from the base cell when it
        # is free (reachable set == base station's component), otherwise
        # from the first free cell (pure connectivity; the base check has
        # already failed).
        start = (base_i, base_j) if base_free else tuple(np.argwhere(free)[0])
        count = flood_fill_count(free, start)

        return ValidationReport(
            free_space_connected=count == total_free,
            base_station_reachable=base_free,
            free_area_fraction=free_fraction,
            min_free_fraction=self.min_free_fraction,
        )

    def accepts(self, field: Field) -> bool:
        """Boolean form of :meth:`validate_field` (rejection-loop predicate)."""
        return self.validate_field(field).ok

    # ------------------------------------------------------------------
    # Scenario-level checks
    # ------------------------------------------------------------------
    def validate_positions(
        self, field: Field, positions: Sequence[Vec2]
    ) -> Tuple[int, ...]:
        """Indices of positions that are not valid sensor start points."""
        return tuple(
            i for i, p in enumerate(positions) if not field.is_free(p)
        )

    def validate_timeline(
        self, spec: ScenarioSpec, field: Optional[Field] = None
    ) -> Tuple[str, ...]:
        """Problems in the scenario's lifecycle event timeline.

        Checks every event against the scenario it will fire in: periods
        must fall inside the horizon, failure fractions in ``[0, 1]``,
        counts non-negative, join staging points and event obstacles
        inside the field rectangle, and every ``clear-obstacle`` must
        reference an obstacle that exists when it fires (layout obstacles
        plus earlier ``obstacle`` events, minus earlier clears) — the
        same running count :class:`repro.sim.lifecycle.FaultInjector`
        maintains at execution time.
        """
        if not spec.events:
            return ()
        if field is None:
            field = spec.build_field()
        horizon = int(spec.duration / spec.period)
        problems: List[str] = []
        # The injector fires events in (period, timeline-index) order; the
        # running obstacle count must be simulated in that same order.
        fire_order = sorted(
            enumerate(spec.events), key=lambda pair: (pair[1].at_period, pair[0])
        )
        obstacle_count = len(field.obstacles)
        for index, event in fire_order:
            tag = f"event #{index} ({event.kind}@{event.at_period})"
            if event.at_period >= horizon:
                problems.append(
                    f"{tag}: fires at period {event.at_period} but the "
                    f"horizon has only {horizon} periods"
                )
            if event.kind == "failure":
                fraction = event.param("fraction")
                if fraction is not None and not 0.0 <= fraction <= 1.0:
                    problems.append(
                        f"{tag}: failure fraction {fraction} outside [0, 1]"
                    )
                count = event.param("count")
                if count is not None and count < 0:
                    problems.append(f"{tag}: negative failure count {count}")
            elif event.kind == "join":
                count = event.param("count", 0)
                if count < 0:
                    problems.append(f"{tag}: negative join count {count}")
                x, y = event.param("x"), event.param("y")
                if x is not None and not (
                    0.0 <= x <= field.width and 0.0 <= y <= field.height
                ):
                    problems.append(
                        f"{tag}: staging point ({x}, {y}) outside the "
                        f"{field.width} x {field.height} field"
                    )
            elif event.kind == "obstacle":
                xmin, ymin = event.param("xmin"), event.param("ymin")
                xmax, ymax = event.param("xmax"), event.param("ymax")
                if not (
                    0.0 <= xmin < xmax <= field.width
                    and 0.0 <= ymin < ymax <= field.height
                ):
                    problems.append(
                        f"{tag}: obstacle rectangle "
                        f"({xmin}, {ymin})-({xmax}, {ymax}) not inside the "
                        f"{field.width} x {field.height} field"
                    )
                obstacle_count += 1
            elif event.kind == "clear-obstacle":
                target = int(event.param("index", -1))
                if not 0 <= target < obstacle_count:
                    problems.append(
                        f"{tag}: clears obstacle {target} but only "
                        f"{obstacle_count} exist when it fires"
                    )
                else:
                    obstacle_count -= 1
        return tuple(problems)

    def validate_scenario(self, spec: ScenarioSpec) -> ValidationReport:
        """Validate a full scenario: its field, placement and timeline."""
        field = spec.build_field()
        report = self.validate_field(field)
        blocked = self.validate_positions(field, spec.initial_positions(field))
        return ValidationReport(
            free_space_connected=report.free_space_connected,
            base_station_reachable=report.base_station_reachable,
            free_area_fraction=report.free_area_fraction,
            min_free_fraction=report.min_free_fraction,
            blocked_sensors=blocked,
            timeline_issues=self.validate_timeline(spec, field),
        )


def generate_validated(
    builder: Callable[[random.Random], Field],
    seed: int,
    validator: Optional[ScenarioValidator] = None,
    max_attempts: int = 25,
) -> Field:
    """Run a seeded generator under the validator with bounded retry.

    ``builder`` receives a :class:`random.Random` and returns a candidate
    field; invalid candidates are rejected and the builder is re-invoked on
    the same (advanced) stream, so the result is a pure function of
    ``seed``.  Raises :class:`RuntimeError` with the last report's issues
    when no candidate passes within ``max_attempts``.
    """
    checker = validator or ScenarioValidator()
    rng = random.Random(seed)
    last_issues: List[str] = []
    for _ in range(max_attempts):
        candidate = builder(rng)
        report = checker.validate_field(candidate)
        if report.ok:
            return candidate
        last_issues = report.issues()
    raise RuntimeError(
        f"no valid field layout within {max_attempts} attempts; "
        f"last rejection: {last_issues}"
    )


def scenario_fingerprint(
    spec: ScenarioSpec,
    field: Optional[Field] = None,
    positions: Optional[Sequence[Vec2]] = None,
) -> str:
    """Deterministic content hash of a scenario's field and placement.

    Two calls with the same spec (same seed) must return the same digest —
    the determinism contract of the generator subsystem, pinned by the
    registry-wide property tests.  The hash covers the field rectangle,
    every obstacle's vertices and the initial sensor positions.  Callers
    that already materialised the scenario can pass ``field`` /
    ``positions`` to skip the rebuild.
    """
    if field is None:
        field = spec.build_field()
    if positions is None:
        positions = spec.initial_positions(field)
    payload = repr(
        (
            round(field.width, 9),
            round(field.height, 9),
            tuple(
                tuple((round(v.x, 9), round(v.y, 9)) for v in ob.polygon.vertices)
                for ob in field.obstacles
            ),
            tuple((round(p.x, 9), round(p.y, 9)) for p in positions),
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
