"""Procedural field-layout generators.

Four families of obstacle layouts beyond the paper's hand-written fields,
each registered with the scenario registry (``@register_layout``) so a
:class:`~repro.api.scenario.ScenarioSpec` can name them directly:

* ``maze`` — a perfect maze carved by a recursive backtracker on a coarse
  cell grid, with the uncarved cell boundaries emitted as rectangular
  wall obstacles;
* ``rooms`` — a multi-room floorplan: a grid of rooms separated by walls,
  every wall pierced by one doorway gap;
* ``spiral`` — concentric square corridors whose openings rotate around
  the sides, forcing a spiral path from the field boundary to the centre;
* ``clutter`` — density-parameterised random rectangular clutter, the
  generalisation of the Fig 13 generator
  (:mod:`repro.field.generator`): rectangles are drawn until a target
  fraction of the field area is obstructed.

Every generator takes a plain seeded :class:`random.Random` (derived from
its ``seed`` parameter — no numpy state involved) plus size/scale
parameters, and every candidate layout is accepted only by the shared
:class:`~repro.scenarios.validate.ScenarioValidator` (connected free
space, reachable base station, minimum free area) under the bounded retry
of :func:`~repro.scenarios.validate.generate_validated`.  The mazes,
floorplans and spirals are valid by construction — their passages connect
every cell/room/corridor — so the validator is a safety net there; the
clutter generator genuinely relies on the rejection loop.
"""

from __future__ import annotations

import random
from typing import List, Set, Tuple

from ..api.registry import register_layout
from ..field import Field, Obstacle
from ..field.generator import (
    RandomObstacleConfig,
    _clears_base_station,
    _random_rectangle,
)
from .validate import ScenarioValidator, generate_validated

__all__ = [
    "maze_field",
    "rooms_field",
    "spiral_field",
    "clutter_field",
]


def _wall(xmin: float, ymin: float, xmax: float, ymax: float, size: float, name: str) -> Obstacle:
    """A wall rectangle clamped into the field (degenerate walls rejected)."""
    xmin, xmax = max(0.0, xmin), min(size, xmax)
    ymin, ymax = max(0.0, ymin), min(size, ymax)
    if xmax - xmin <= 1e-9 or ymax - ymin <= 1e-9:
        raise ValueError("degenerate wall")
    return Obstacle.rectangle(xmin, ymin, xmax, ymax, name=name)


def _append_wall(
    walls: List[Obstacle], xmin: float, ymin: float, xmax: float, ymax: float,
    size: float, name: str,
) -> None:
    try:
        walls.append(_wall(xmin, ymin, xmax, ymax, size, name))
    except ValueError:
        pass


# ----------------------------------------------------------------------
# Maze
# ----------------------------------------------------------------------
def _carve_maze(rng: random.Random, cells: int) -> Set[Tuple[int, int, int, int]]:
    """Recursive-backtracker spanning tree over a ``cells x cells`` grid.

    Returns the set of carved passages as ordered cell pairs
    ``(i1, j1, i2, j2)`` with ``(i1, j1) < (i2, j2)``.
    """
    carved: Set[Tuple[int, int, int, int]] = set()
    visited = {(0, 0)}
    stack = [(0, 0)]
    while stack:
        ci, cj = stack[-1]
        neighbors = [
            (ci + di, cj + dj)
            for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1))
            if 0 <= ci + di < cells and 0 <= cj + dj < cells
            and (ci + di, cj + dj) not in visited
        ]
        if not neighbors:
            stack.pop()
            continue
        ni, nj = rng.choice(neighbors)
        first, second = sorted(((ci, cj), (ni, nj)))
        carved.add(first + second)
        visited.add((ni, nj))
        stack.append((ni, nj))
    return carved


def maze_field(
    size: float,
    seed: int = 1,
    cells: int = 4,
    wall_fraction: float = 0.12,
) -> Field:
    """A perfect maze on a coarse cell grid (walls between uncarved cells).

    ``cells`` is the maze order (``cells x cells`` rooms), ``wall_fraction``
    the wall thickness relative to the cell span.  The recursive
    backtracker starts at the base-station cell, and the field boundary
    serves as the outer wall, so the free space is a single corridor tree
    containing the origin by construction.
    """
    if cells < 2:
        raise ValueError("a maze needs at least 2x2 cells")
    span = size / cells
    thickness = wall_fraction * span

    def build(rng: random.Random) -> Field:
        carved = _carve_maze(rng, cells)
        walls: List[Obstacle] = []
        half = thickness / 2.0
        for i in range(cells - 1):
            for j in range(cells):
                # Vertical wall between (i, j) and (i + 1, j).
                if (i, j, i + 1, j) not in carved:
                    x = (i + 1) * span
                    _append_wall(
                        walls, x - half, j * span - half, x + half,
                        (j + 1) * span + half, size, f"maze-v{i}-{j}",
                    )
        for i in range(cells):
            for j in range(cells - 1):
                # Horizontal wall between (i, j) and (i, j + 1).
                if (i, j, i, j + 1) not in carved:
                    y = (j + 1) * span
                    _append_wall(
                        walls, i * span - half, y - half,
                        (i + 1) * span + half, y + half, size, f"maze-h{i}-{j}",
                    )
        return Field(size, size, walls)

    return generate_validated(build, seed)


# ----------------------------------------------------------------------
# Multi-room floorplan
# ----------------------------------------------------------------------
def rooms_field(
    size: float,
    seed: int = 1,
    rooms_x: int = 3,
    rooms_y: int = 3,
    wall_fraction: float = 0.08,
    door_fraction: float = 0.3,
) -> Field:
    """A multi-room floorplan: a room grid with one doorway per shared wall.

    Every interior wall between two adjacent rooms is pierced by a doorway
    of width ``door_fraction`` of the wall length at a seeded random
    offset, so all rooms are mutually reachable by construction.
    """
    if rooms_x < 1 or rooms_y < 1:
        raise ValueError("room counts must be positive")
    span_x = size / rooms_x
    span_y = size / rooms_y
    thickness = wall_fraction * min(span_x, span_y)
    half = thickness / 2.0

    def pierced(
        walls: List[Obstacle], rng: random.Random, lo: float, hi: float,
        place, name: str,
    ) -> None:
        """Emit a wall from ``lo`` to ``hi`` with one doorway gap."""
        length = hi - lo
        door = door_fraction * length
        start_max = length - door - 2.0 * half
        offset = rng.uniform(0.0, max(0.0, start_max))
        gap_lo = lo + half + offset
        gap_hi = gap_lo + door
        place(walls, lo - half, gap_lo, f"{name}a")
        place(walls, gap_hi, hi + half, f"{name}b")

    def build(rng: random.Random) -> Field:
        walls: List[Obstacle] = []
        for i in range(1, rooms_x):
            x = i * span_x
            for j in range(rooms_y):
                pierced(
                    walls, rng, j * span_y, (j + 1) * span_y,
                    lambda ws, lo, hi, name: _append_wall(
                        ws, x - half, lo, x + half, hi, size, name
                    ),
                    f"room-v{i}-{j}",
                )
        for j in range(1, rooms_y):
            y = j * span_y
            for i in range(rooms_x):
                pierced(
                    walls, rng, i * span_x, (i + 1) * span_x,
                    lambda ws, lo, hi, name: _append_wall(
                        ws, lo, y - half, hi, y + half, size, name
                    ),
                    f"room-h{j}-{i}",
                )
        return Field(size, size, walls)

    return generate_validated(build, seed)


# ----------------------------------------------------------------------
# Spiral corridors
# ----------------------------------------------------------------------
def spiral_field(
    size: float,
    seed: int = 1,
    rings: int = 2,
    wall_fraction: float = 0.2,
) -> Field:
    """Concentric square corridors with openings rotating around the sides.

    Ring ``k`` is a square wall band inset ``k * pitch`` from the field
    boundary (``pitch = size / (2 * (rings + 1))``) with one opening on
    side ``k % 4``; walking from the boundary to the centre therefore
    spirals through every corridor.  The base station's corner lies
    outside the outermost ring and reaches the centre through the
    openings by construction.
    """
    if rings < 1:
        raise ValueError("a spiral needs at least one ring")
    pitch = size / (2.0 * (rings + 1))
    thickness = wall_fraction * pitch

    def build(rng: random.Random) -> Field:
        walls: List[Obstacle] = []
        for k in range(1, rings + 1):
            inset = k * pitch
            lo, hi = inset, size - inset
            opening = max(pitch - thickness, 4.0 * thickness)
            side = (k - 1) % 4
            # A seeded jitter keeps the opening away from the ring corners.
            extent = hi - lo - 2.0 * thickness - opening
            offset = lo + thickness + rng.uniform(0.0, max(0.0, extent))
            # Side bands: 0 = bottom, 1 = right, 2 = top, 3 = left; the
            # opening splits its band in two.
            bands = {
                0: (lo, lo, hi, lo + thickness),
                1: (hi - thickness, lo + thickness, hi, hi - thickness),
                2: (lo, hi - thickness, hi, hi),
                3: (lo, lo + thickness, lo + thickness, hi - thickness),
            }
            for b, (xmin, ymin, xmax, ymax) in bands.items():
                name = f"spiral-{k}-{b}"
                if b != side:
                    _append_wall(walls, xmin, ymin, xmax, ymax, size, name)
                    continue
                if b in (0, 2):  # horizontal band: split along x
                    _append_wall(walls, xmin, ymin, offset, ymax, size, name + "a")
                    _append_wall(
                        walls, offset + opening, ymin, xmax, ymax, size, name + "b"
                    )
                else:  # vertical band: split along y
                    _append_wall(walls, xmin, ymin, xmax, offset, size, name + "a")
                    _append_wall(
                        walls, xmin, offset + opening, xmax, ymax, size, name + "b"
                    )
        return Field(size, size, walls)

    return generate_validated(build, seed)


# ----------------------------------------------------------------------
# Random clutter at a target density
# ----------------------------------------------------------------------
def clutter_field(
    size: float,
    seed: int = 1,
    density: float = 0.12,
    min_side_fraction: float = 0.05,
    max_side_fraction: float = 0.22,
    keep_clear_fraction: float = 0.08,
    max_obstacles: int = 64,
) -> Field:
    """Random rectangular clutter filling ``density`` of the field area.

    The density generalisation of the Fig 13 generator: instead of a fixed
    1-4 obstacle count, rectangles (drawn by the same primitive, possibly
    overlapping, always clear of the base station) accumulate until their
    summed area reaches ``density`` of the field.  Layouts that disconnect
    the free space are rejected and redrawn by the shared validator loop.
    """
    if not 0.0 <= density < 1.0:
        raise ValueError("density must be in [0, 1)")
    config = RandomObstacleConfig(
        field_size=size,
        min_side=min_side_fraction * size,
        max_side=max_side_fraction * size,
        keep_clear_radius=keep_clear_fraction * size,
    )
    target_area = density * size * size

    def build(rng: random.Random) -> Field:
        obstacles: List[Obstacle] = []
        accumulated = 0.0
        attempts = 0
        while accumulated < target_area and len(obstacles) < max_obstacles:
            attempts += 1
            if attempts > 50 * max_obstacles:
                break  # clearance keeps rejecting; validate what we have
            candidate = _random_rectangle(rng, config)
            if not _clears_base_station(candidate, config):
                continue
            obstacles.append(candidate)
            accumulated += candidate.area()
        return Field(size, size, obstacles)

    return generate_validated(build, seed)


# ----------------------------------------------------------------------
# Registration
# ----------------------------------------------------------------------
register_layout("maze")(maze_field)
register_layout("rooms")(rooms_field)
register_layout("spiral")(spiral_field)
register_layout("clutter")(clutter_field)
