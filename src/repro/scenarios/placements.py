"""Initial-placement strategies beyond the paper's two canonical starts.

The paper evaluates a clustered start (lower-left quadrant) and implies a
uniform one; this module adds four registered strategies that stress the
schemes differently:

* ``hotspot`` — Gaussian concentration around a point (a crowd, an event),
  rejected into free space;
* ``perimeter`` — sensors spread along the field boundary (dropped from
  the edges inward);
* ``grid`` — a near-square jittered lattice (a planned pre-deployment);
* ``multi-cluster`` — several Gaussian clusters with seeded random
  centres (multiple drop points).

Every strategy follows the registry contract
``(config, field, rng, **params) -> List[Vec2]``: it consumes only the
provided :class:`random.Random` stream (determinism under a fixed seed is
pinned by the property tests), returns exactly ``config.sensor_count``
positions, and guarantees every position lies in free space — drawing by
rejection first and falling back to :meth:`~repro.field.Field.
nearest_free` when a draw keeps landing inside an obstacle.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..api.registry import register_placement
from ..field import Field
from ..geometry import Vec2

__all__ = [
    "hotspot_positions",
    "perimeter_positions",
    "grid_positions",
    "multi_cluster_positions",
]

#: Rejection draws attempted per sensor before falling back to
#: ``Field.nearest_free`` (heavily obstructed fields remain placeable).
_REJECTION_ATTEMPTS = 64


def _into_free_space(field: Field, p: Vec2) -> Vec2:
    """Project a draw into free space (clamp + spiral search fallback)."""
    candidate = field.nearest_free(p)
    if not field.is_free(candidate):
        raise RuntimeError(
            f"could not find free space near {p} (field fully obstructed?)"
        )
    return candidate


def _rejected_draw(field: Field, draw) -> Vec2:
    """Redraw until free; after the attempt budget, snap the last draw."""
    p = None
    for _ in range(_REJECTION_ATTEMPTS):
        p = draw()
        if field.is_free(p):
            return p
    return _into_free_space(field, p)


@register_placement("hotspot")
def hotspot_positions(
    config,
    field: Field,
    rng,
    center_x: Optional[float] = None,
    center_y: Optional[float] = None,
    spread: float = 0.15,
) -> List[Vec2]:
    """Gaussian hotspot around a point (the field centre by default).

    ``spread`` is the standard deviation as a fraction of the field's
    shorter side.  Draws landing outside the free space are re-drawn.
    """
    cx = field.width / 2.0 if center_x is None else center_x
    cy = field.height / 2.0 if center_y is None else center_y
    sigma = spread * min(field.width, field.height)

    def draw() -> Vec2:
        return field.clamp(Vec2(rng.gauss(cx, sigma), rng.gauss(cy, sigma)))

    return [
        _rejected_draw(field, draw) for _ in range(config.sensor_count)
    ]


@register_placement("perimeter")
def perimeter_positions(
    config,
    field: Field,
    rng,
    margin: float = 0.04,
    jitter: float = 0.02,
) -> List[Vec2]:
    """Sensors evenly spaced along the field boundary, jittered inward.

    The sensors sit on the rectangle inset by ``margin`` of the shorter
    side, in perimeter order starting from the base-station corner, each
    perturbed by a uniform jitter of ``jitter`` of the shorter side.
    """
    short = min(field.width, field.height)
    inset = margin * short
    w = field.width - 2.0 * inset
    h = field.height - 2.0 * inset
    total = 2.0 * (w + h)
    amplitude = jitter * short

    def on_perimeter(arc: float) -> Vec2:
        if arc < w:
            return Vec2(inset + arc, inset)
        arc -= w
        if arc < h:
            return Vec2(inset + w, inset + arc)
        arc -= h
        if arc < w:
            return Vec2(inset + w - arc, inset + h)
        return Vec2(inset, inset + h - (arc - w))

    positions: List[Vec2] = []
    count = config.sensor_count
    for k in range(count):
        base = on_perimeter(total * k / count)

        def draw(base=base) -> Vec2:
            return field.clamp(
                base
                + Vec2(
                    rng.uniform(-amplitude, amplitude),
                    rng.uniform(-amplitude, amplitude),
                )
            )

        positions.append(_rejected_draw(field, draw))
    return positions


@register_placement("grid")
def grid_positions(
    config,
    field: Field,
    rng,
    jitter: float = 0.05,
) -> List[Vec2]:
    """A near-square lattice over the field, row-major from the origin.

    ``jitter`` perturbs each lattice point by that fraction of the cell
    spacing (a perfectly regular start is both unrealistic and degenerate
    for Voronoi baselines).  Lattice points inside obstacles are projected
    to the nearest free point.
    """
    count = config.sensor_count
    cols = max(1, int(math.ceil(math.sqrt(count * field.width / field.height))))
    rows = max(1, int(math.ceil(count / cols)))
    dx = field.width / cols
    dy = field.height / rows
    positions: List[Vec2] = []
    for k in range(count):
        i, j = k % cols, k // cols
        base = Vec2((i + 0.5) * dx, (j + 0.5) * dy)

        def draw(base=base) -> Vec2:
            return field.clamp(
                base
                + Vec2(
                    rng.uniform(-jitter * dx, jitter * dx),
                    rng.uniform(-jitter * dy, jitter * dy),
                )
            )

        positions.append(_rejected_draw(field, draw))
    return positions


@register_placement("multi-cluster")
def multi_cluster_positions(
    config,
    field: Field,
    rng,
    clusters: int = 3,
    spread: float = 0.08,
) -> List[Vec2]:
    """Several Gaussian clusters with seeded uniform-random free centres.

    Sensors are assigned to clusters round-robin, so cluster sizes differ
    by at most one.  ``spread`` is each cluster's standard deviation as a
    fraction of the field's shorter side.
    """
    if clusters < 1:
        raise ValueError("clusters must be positive")
    sigma = spread * min(field.width, field.height)

    def draw_center() -> Vec2:
        return Vec2(
            rng.uniform(0.0, field.width), rng.uniform(0.0, field.height)
        )

    centers = [
        _rejected_draw(field, draw_center) for _ in range(clusters)
    ]
    positions: List[Vec2] = []
    for k in range(config.sensor_count):
        center = centers[k % clusters]

        def draw(center=center) -> Vec2:
            return field.clamp(
                Vec2(rng.gauss(center.x, sigma), rng.gauss(center.y, sigma))
            )

        positions.append(_rejected_draw(field, draw))
    return positions
