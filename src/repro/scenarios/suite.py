"""The curated scenario suite.

A :class:`ScenarioSuite` is an ordered, named collection of scenario
recipes.  Each :class:`SuiteEntry` pins a registered layout + placement
combination (with parameters and a fixed seed) and materialises into a
:class:`~repro.api.scenario.ScenarioSpec` at any experiment scale, so the
same suite drives the smoke-test ``--check``, the ASCII gallery renderer
and the full ``gallery`` sweep experiment.

:data:`DEFAULT_SUITE` covers the paper's canonical fields plus every
generator family of :mod:`repro.scenarios.generators` crossed with
characteristic placements: mazes entered from a clustered start and from
a central hotspot, floorplans seeded on a lattice and along the
perimeter, a spiral with multiple drop clusters, and random clutter under
uniform and hotspot starts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..api.scenario import Params, ScenarioSpec, freeze_params

__all__ = ["SuiteEntry", "ScenarioSuite", "DEFAULT_SUITE"]


@dataclass(frozen=True)
class SuiteEntry:
    """One named scenario recipe: layout x placement (+ seed and ranges).

    An entry may also carry a *timeline*: the name of a curated lifecycle
    event script (:data:`repro.experiments.lifecycle.LIFECYCLE_SCRIPTS`).
    The script is materialised at spec time, scaled to the requested
    experiment scale, so the same entry injects its faults at the same
    *fraction* of the horizon whether it runs at smoke or paper scale.
    """

    name: str
    description: str
    layout: str
    placement: str
    layout_params: Params = ()
    placement_params: Params = ()
    #: Seed of the scenario's random stream (field generation uses the
    #: layout's own ``seed`` parameter inside ``layout_params``).
    seed: int = 1
    communication_range: float = 60.0
    sensing_range: float = 40.0
    #: Named lifecycle event script (``None`` = a static scenario).
    timeline: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "layout_params", freeze_params(self.layout_params))
        object.__setattr__(
            self, "placement_params", freeze_params(self.placement_params)
        )

    def events(self, scale):
        """The entry's lifecycle event timeline at an experiment scale."""
        if self.timeline is None:
            return ()
        # Imported lazily: the experiments package sits above scenarios in
        # the layering (it imports this module for the gallery sweep).
        from ..experiments.lifecycle import lifecycle_events

        return lifecycle_events(self.timeline, scale)

    def spec(self, scale) -> ScenarioSpec:
        """The entry as a :class:`ScenarioSpec` at an experiment scale.

        ``scale`` is any object with ``field_size``, ``sensor_count``,
        ``duration`` and ``coverage_resolution`` attributes —
        :class:`repro.experiments.common.ExperimentScale` in practice.
        """
        return ScenarioSpec(
            field_size=scale.field_size,
            layout=self.layout,
            layout_params=self.layout_params,
            placement=self.placement,
            placement_params=self.placement_params,
            sensor_count=scale.sensor_count,
            communication_range=self.communication_range,
            sensing_range=self.sensing_range,
            duration=scale.duration,
            coverage_resolution=scale.coverage_resolution,
            seed=self.seed,
            events=self.events(scale),
        )


class ScenarioSuite:
    """An ordered name -> :class:`SuiteEntry` collection."""

    def __init__(self, entries: Sequence[SuiteEntry]):
        self._entries: Dict[str, SuiteEntry] = {}
        for entry in entries:
            if entry.name in self._entries:
                raise ValueError(f"duplicate suite entry {entry.name!r}")
            self._entries[entry.name] = entry

    def names(self) -> List[str]:
        """Entry names in suite (presentation) order."""
        return list(self._entries)

    def get(self, name: str) -> SuiteEntry:
        """The entry called ``name`` (raises listing the alternatives)."""
        entry = self._entries.get(name)
        if entry is None:
            raise KeyError(
                f"unknown suite scenario {name!r}; available: {self.names()}"
            )
        return entry

    def specs(self, scale, names: Optional[Sequence[str]] = None) -> List[Tuple[SuiteEntry, ScenarioSpec]]:
        """Materialised ``(entry, spec)`` pairs, optionally a named subset."""
        selected = list(names) if names is not None else self.names()
        return [(self.get(name), self.get(name).spec(scale)) for name in selected]

    def __iter__(self) -> Iterator[SuiteEntry]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScenarioSuite({self.names()})"


#: The curated suite: canonical paper fields plus every generator family
#: crossed with a characteristic placement.
DEFAULT_SUITE = ScenarioSuite(
    [
        SuiteEntry(
            "open-clustered",
            "the paper's canonical start: obstacle-free field, lower-left cluster",
            layout="obstacle-free",
            placement="clustered",
        ),
        SuiteEntry(
            "open-uniform",
            "obstacle-free field, sensors scattered uniformly",
            layout="obstacle-free",
            placement="uniform",
            seed=2,
        ),
        SuiteEntry(
            "two-obstacle-classic",
            "the Fig 3(c)/8(c) two-obstacle field with the clustered start",
            layout="two-obstacle",
            placement="clustered",
            seed=3,
        ),
        SuiteEntry(
            "corridor-squeeze",
            "narrow corridor splitting the field, clustered start",
            layout="corridor",
            placement="clustered",
            seed=4,
        ),
        SuiteEntry(
            "maze-quad",
            "4x4 recursive-backtracker maze entered from the clustered corner",
            layout="maze",
            layout_params={"seed": 7, "cells": 4},
            placement="clustered",
            seed=5,
        ),
        SuiteEntry(
            "maze-hotspot",
            "maze with sensors concentrated in a central hotspot",
            layout="maze",
            layout_params={"seed": 11, "cells": 4},
            placement="hotspot",
            placement_params={"spread": 0.12},
            seed=6,
        ),
        SuiteEntry(
            "rooms-grid",
            "3x3 multi-room floorplan seeded on a jittered lattice",
            layout="rooms",
            layout_params={"seed": 5},
            placement="grid",
            seed=7,
        ),
        SuiteEntry(
            "rooms-perimeter",
            "multi-room floorplan with sensors dropped along the boundary",
            layout="rooms",
            layout_params={"seed": 9, "rooms_x": 2, "rooms_y": 3},
            placement="perimeter",
            seed=8,
        ),
        SuiteEntry(
            "spiral-clusters",
            "two-ring spiral corridor with three drop clusters",
            layout="spiral",
            layout_params={"seed": 3, "rings": 2},
            placement="multi-cluster",
            placement_params={"clusters": 3},
            seed=9,
        ),
        SuiteEntry(
            "clutter-uniform",
            "random rectangular clutter (12% density), uniform start",
            layout="clutter",
            layout_params={"seed": 13},
            placement="uniform",
            seed=10,
        ),
        SuiteEntry(
            "clutter-hotspot",
            "denser clutter (15%) with an off-centre hotspot start",
            layout="clutter",
            layout_params={"seed": 21, "density": 0.15},
            placement="hotspot",
            placement_params={"spread": 0.1},
            seed=11,
        ),
        # Lifecycle (event-timeline) scenarios: the curated fault scripts
        # of the lifecycle experiment, pinned on characteristic fields so
        # `--check` validates the timelines and the gallery exercises the
        # churn paths alongside the static suite.
        SuiteEntry(
            "open-mass-failure",
            "open field where a fifth of the population dies mid-run",
            layout="obstacle-free",
            placement="clustered",
            seed=12,
            timeline="mass-failure",
        ),
        SuiteEntry(
            "open-door-slam",
            "open field crossed mid-run by a wall band that later clears",
            layout="obstacle-free",
            placement="clustered",
            seed=13,
            timeline="door-slam",
        ),
        SuiteEntry(
            "clutter-reinforcements",
            "random clutter with a kill wave then staged reinforcements",
            layout="clutter",
            layout_params={"seed": 27},
            placement="uniform",
            seed=14,
            timeline="reinforcements",
        ),
    ]
)
