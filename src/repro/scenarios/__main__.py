"""``python -m repro.scenarios`` entry point."""

import sys

from .cli import main

sys.exit(main())
