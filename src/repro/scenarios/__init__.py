"""Procedural scenario generation: layouts, placements, validation, suite.

This package turns the declarative registry of :mod:`repro.api` into an
actual scenario library:

* :mod:`repro.scenarios.generators` — seeded field-layout generators
  (``maze``, ``rooms``, ``spiral``, ``clutter``), all registered via
  ``@register_layout``;
* :mod:`repro.scenarios.placements` — initial-placement strategies
  (``hotspot``, ``perimeter``, ``grid``, ``multi-cluster``), registered
  via ``@register_placement``;
* :mod:`repro.scenarios.validate` — the shared
  :class:`ScenarioValidator` (free-space connectivity, base-station
  reachability, minimum free area) with bounded-retry generation and the
  determinism fingerprint;
* :mod:`repro.scenarios.suite` — the curated :data:`DEFAULT_SUITE` of
  named scenarios driving the ``gallery`` experiment and the
  ``python -m repro.scenarios`` CLI (``--list`` / ``--check`` /
  ``--render``).

Importing this package registers every generator and placement;
:mod:`repro.api.registry` does so automatically, so scenario names are
resolvable wherever the registries are — including sweep worker
processes.

Layering note: modules here import :mod:`repro.api` *submodules*
directly (``..api.registry``, ``..api.scenario``) rather than the
package, because they are (re)loaded while ``repro.api`` itself is still
initialising.
"""

from .validate import (
    ScenarioValidator,
    ValidationReport,
    generate_validated,
    scenario_fingerprint,
)
from .generators import clutter_field, maze_field, rooms_field, spiral_field
from .placements import (
    grid_positions,
    hotspot_positions,
    multi_cluster_positions,
    perimeter_positions,
)
from .suite import DEFAULT_SUITE, ScenarioSuite, SuiteEntry

__all__ = [
    "ScenarioValidator",
    "ValidationReport",
    "generate_validated",
    "scenario_fingerprint",
    "maze_field",
    "rooms_field",
    "spiral_field",
    "clutter_field",
    "hotspot_positions",
    "perimeter_positions",
    "grid_positions",
    "multi_cluster_positions",
    "SuiteEntry",
    "ScenarioSuite",
    "DEFAULT_SUITE",
]
