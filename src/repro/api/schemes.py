"""Scheme adapters: one execution interface over every deployment scheme.

The paper evaluates three very different kinds of scheme:

* the **period-based** CPVF and FLOOR protocols, which run on the
  period-synchronous :class:`~repro.sim.engine.SimulationEngine`;
* the **round-based** VD baselines VOR and Minimax, which operate on raw
  position lists and (from a clustered start) need the explosion dispersal
  first;
* the **analytic** OPT strip pattern and the Hungarian moving-distance
  lower bound, which need no simulation at all.

Historically every experiment special-cased these three shapes.  The
:class:`SchemeAdapter` interface hides the difference: every adapter turns a
:class:`~repro.api.specs.RunSpec` into a :class:`~repro.api.specs.RunRecord`,
and experiments just declare grids of run specs.  Adapters register
themselves by name (``@register_scheme("CPVF")``), so new schemes plug in
without touching the experiment layer.
"""

from __future__ import annotations

import abc
import dataclasses
import random
import time
from typing import Dict

from ..assignment import minimum_distance_matching
from ..baselines import MinimaxScheme, OptStripPattern, VorScheme, explode
from ..core import CPVFScheme, FloorScheme
from ..metrics import positions_are_connected
from ..metrics.recovery import RecoveryTracker
from ..obs import NULL_TELEMETRY, PhaseStat, Telemetry, TelemetrySummary
from ..sim import DeploymentScheme, SimulationEngine
from ..sim.lifecycle import (
    build_event_obstacle,
    draw_join_positions,
    event_rng,
    select_failure_victims,
)
from ..voronoi import diagram_is_correct
from .registry import register_scheme, scheme_registry
from .scenario import thaw_params
from .specs import RunRecord, RunSpec, TracePoint

__all__ = [
    "SchemeAdapter",
    "PeriodSchemeAdapter",
    "VDSchemeAdapter",
    "execute_run",
    "hungarian_bound",
]


def _reject_unknown_params(scheme_name: str, params: Dict) -> None:
    if params:
        raise TypeError(
            f"unknown {scheme_name} scheme parameters: {sorted(params)}"
        )


def hungarian_bound(scenario, targets, field=None):
    """Hungarian moving-distance lower bound to reach a target layout.

    Matches the scenario's deterministic initial placement to ``targets``
    at minimum total distance and returns ``(average_distance, coverage)``
    — the recipe shared by the OPT-Hungarian scheme and the Fig 11
    FLOOR-Hungarian row.
    """
    if field is None:
        field = scenario.build_field()
    initial = scenario.initial_positions(field)
    _, total = minimum_distance_matching(
        [p.as_tuple() for p in initial], [p.as_tuple() for p in targets]
    )
    coverage = field.coverage_fraction(
        targets, scenario.sensing_range, scenario.coverage_resolution
    )
    return total / max(1, scenario.sensor_count), coverage


def execute_run(spec: RunSpec) -> RunRecord:
    """Execute one run spec through the registered scheme adapter.

    This is the single entry point the sweep executor (and its worker
    processes) use; it is a module-level function so it pickles cleanly.

    With ``spec.profile`` set, the record carries a
    :class:`~repro.obs.TelemetrySummary`.  Period-based schemes collect
    real phase spans inside the engine; schemes without an engine (the VD
    baselines and the analytic patterns) get a minimal one-phase
    ``run.execute`` summary so profiled sweeps render uniformly.
    """
    adapter: SchemeAdapter = scheme_registry.get(spec.scheme)
    if not spec.profile:
        return adapter.execute(spec)
    started = time.perf_counter()
    record = adapter.execute(spec)
    if record.telemetry is None:
        summary = TelemetrySummary(
            phases={
                "run.execute": PhaseStat(
                    seconds=time.perf_counter() - started, calls=1
                )
            }
        )
        record = dataclasses.replace(record, telemetry=summary)
    return record


class SchemeAdapter(abc.ABC):
    """Executes one :class:`RunSpec`, whatever kind of scheme it names."""

    #: Canonical scheme name reported in records.
    name: str = "scheme"

    @abc.abstractmethod
    def execute(self, spec: RunSpec) -> RunRecord:
        """Run the scheme on the spec's scenario and return the record."""


# ----------------------------------------------------------------------
# Period-based schemes (CPVF, FLOOR) on the simulation engine
# ----------------------------------------------------------------------
class PeriodSchemeAdapter(SchemeAdapter):
    """Adapter base for schemes driven by the period-synchronous engine."""

    def build_scheme(self, settings, params: Dict) -> DeploymentScheme:
        """Instantiate the underlying scheme.

        ``settings`` is any object exposing the scheme-relevant scenario
        attributes (``oscillation_delta``, ``invitation_ttl``, ...): both
        :class:`~repro.api.scenario.ScenarioSpec` and
        :class:`~repro.sim.config.SimulationConfig` qualify.
        """
        raise NotImplementedError

    def execute(self, spec: RunSpec) -> RunRecord:
        scenario = spec.scenario
        field = scenario.build_field()
        world = scenario.build_world(field)
        if spec.network is not None:
            # Structural specs build the shared perfect instance, so the
            # assignment is behaviour-preserving in that case.
            world.network = spec.network.build(scenario.seed)
        scheme = self.build_scheme(scenario, thaw_params(spec.scheme_params))
        engine = SimulationEngine(
            world,
            scheme,
            # Explicit cadence: None means no trace was requested, so the
            # engine skips the per-period coverage measurements entirely
            # instead of silently tracing every 50 periods.
            trace_every=spec.trace_every,
            keep_world=True,
            events=scenario.events,
            telemetry=Telemetry() if spec.profile else NULL_TELEMETRY,
        )
        result = engine.run()
        return RunRecord(
            spec=spec,
            scheme=self.name,
            coverage=result.final_coverage,
            average_moving_distance=result.average_moving_distance,
            total_moving_distance=result.total_moving_distance,
            total_messages=result.total_messages,
            connected=result.connected,
            periods_executed=result.periods_executed,
            converged_at=result.converged_at,
            extras={"obstacle_count": len(field.obstacles)},
            trace=(
                tuple(
                    TracePoint(
                        time=t.time,
                        coverage=t.coverage,
                        average_moving_distance=t.average_moving_distance,
                        total_messages=t.total_messages,
                        connected_sensors=t.connected_sensors,
                    )
                    for t in result.trace
                )
            ),
            events=tuple(result.events),
            final_positions=(
                tuple((s.position.x, s.position.y) for s in world.sensors)
                if spec.keep_positions
                else None
            ),
            telemetry=result.telemetry,
        )


@register_scheme("CPVF")
class CPVFAdapter(PeriodSchemeAdapter):
    """Connectivity-Preserved Virtual Force deployment (Section 4)."""

    name = "CPVF"

    def build_scheme(self, settings, params: Dict) -> DeploymentScheme:
        return CPVFScheme(
            oscillation_delta=settings.oscillation_delta,
            oscillation_mode=settings.oscillation_mode,
            **params,
        )


@register_scheme("FLOOR")
class FloorAdapter(PeriodSchemeAdapter):
    """Floor-based deployment (Section 5)."""

    name = "FLOOR"

    def build_scheme(self, settings, params: Dict) -> DeploymentScheme:
        return FloorScheme(invitation_ttl=settings.invitation_ttl, **params)


# ----------------------------------------------------------------------
# Round-based VD baselines (VOR, Minimax) with explosion dispersal
# ----------------------------------------------------------------------
def _run_vd_with_events(scenario, scheme, field, exploded, rounds):
    """Round-segmented VD execution with the scenario's event timeline.

    The VD baselines have no world, tree or messages, so events operate on
    the raw position list: failures drop entries (their distance is
    retired, not forgotten), joins append fresh entries, obstacle events
    mutate the shared field.  Event periods are mapped proportionally onto
    the round axis, so recovery metrics for VD runs are measured in
    *rounds* (message burst is always 0 — the baselines are silent).

    Returns ``(positions, total_distance, sensors_ever, rounds_executed,
    outcomes)``.
    """
    max_periods = max(1, scenario.build_config().max_periods)
    by_round = {}
    for index, event in enumerate(scenario.events):
        fire_round = min(
            rounds - 1,
            max(0, (event.at_period * rounds) // max_periods),
        )
        by_round.setdefault(fire_round, []).append((index, event))

    positions = list(exploded.positions)
    carried = list(exploded.per_sensor_distance)
    retired = 0.0
    sensors_ever = len(positions)
    trackers = []
    outcomes = []
    resolution = scenario.coverage_resolution
    rounds_executed = 0
    max_pending = max(by_round, default=-1)

    for round_index in range(rounds):
        for index, event in by_round.get(round_index, ()):
            pre_coverage = scheme.coverage(positions, resolution)
            pre_distance = retired + sum(carried)
            if event.kind == "failure":
                rng = event_rng(scenario.seed, index, "failure")
                victims = select_failure_victims(
                    rng, event, list(range(len(positions)))
                )
                for i in reversed(victims):
                    retired += carried.pop(i)
                    positions.pop(i)
            elif event.kind == "join":
                rng = event_rng(scenario.seed, index, "join")
                arrivals = draw_join_positions(field, event, rng)
                positions.extend(arrivals)
                carried.extend(0.0 for _ in arrivals)
                sensors_ever += len(arrivals)
            elif event.kind == "obstacle":
                field.add_obstacle(build_event_obstacle(event))
                for i, pos in enumerate(positions):
                    if not field.is_free(pos):
                        escaped = field.nearest_free(pos)
                        carried[i] += pos.distance_to(escaped)
                        positions[i] = escaped
            else:  # clear-obstacle
                obstacle_index = int(event.param("index", -1))
                if not 0 <= obstacle_index < len(field.obstacles):
                    raise ValueError(
                        f"clear-obstacle index {obstacle_index} out of range"
                    )
                field.remove_obstacle(obstacle_index)
            trackers.append(
                RecoveryTracker(
                    at_period=round_index,
                    kind=event.kind,
                    pre_coverage=pre_coverage,
                    post_coverage=scheme.coverage(positions, resolution),
                    pre_distance=pre_distance,
                    pre_messages=0,
                    baseline_window_messages=0,
                    burst_window=rounds,
                )
            )

        step = scheme.run(positions, rounds=1)
        moved = max(step.per_sensor_distance, default=0.0)
        positions = list(step.final_positions)
        for i, distance in enumerate(step.per_sensor_distance):
            carried[i] += distance
        rounds_executed = round_index + 1

        if trackers:
            coverage = scheme.coverage(positions, resolution)
            total_distance = retired + sum(carried)
            still_active = []
            for tracker in trackers:
                tracker.observe(round_index, coverage, total_distance, 0)
                if tracker.settled:
                    outcomes.append(tracker.outcome())
                else:
                    still_active.append(tracker)
            trackers = still_active
        if moved <= 1e-3 and round_index >= max_pending:
            break

    outcomes.extend(tracker.outcome() for tracker in trackers)
    outcomes.sort(key=lambda o: o.at_period)
    return (
        positions,
        retired + sum(carried),
        sensors_ever,
        rounds_executed,
        outcomes,
    )

class VDSchemeAdapter(SchemeAdapter):
    """Adapter base for the round-based, connectivity-ignorant VD schemes.

    From the scenario's (typically clustered) start the adapter first runs
    the minimum-cost explosion dispersal, then the scheme's Voronoi rounds;
    the recorded moving distance charges both stages, as in Fig 11.

    Scheme parameters: ``rounds`` (default 10) and ``check_voronoi``
    (default ``False``; when set, the record's ``all_voronoi_cells_correct``
    extra reports whether every locally-constructed cell was correct).
    """

    scheme_class = None  # type: ignore[assignment]

    def execute(self, spec: RunSpec) -> RunRecord:
        scenario = spec.scenario
        params = thaw_params(spec.scheme_params)
        rounds = int(params.pop("rounds", 10))
        check_voronoi = bool(params.pop("check_voronoi", False))
        _reject_unknown_params(self.name, params)

        field = scenario.build_field()
        config = scenario.build_config()
        rng = random.Random(scenario.seed)
        initial = scenario.placement_strategy()(config, field, rng)
        exploded = explode(initial, field, rng)

        scheme = self.scheme_class(
            field, scenario.communication_range, scenario.sensing_range
        )
        if scenario.events:
            return self._execute_with_events(
                spec, scenario, scheme, field, exploded, rounds, check_voronoi
            )
        vd_result = scheme.run(exploded.positions, rounds=rounds)
        per_sensor = [
            explosion + rounds_distance
            for explosion, rounds_distance in zip(
                exploded.per_sensor_distance, vd_result.per_sensor_distance
            )
        ]
        total_distance = sum(per_sensor)
        extras = {}
        if check_voronoi:
            vd_check = diagram_is_correct(
                vd_result.final_positions, scenario.communication_range, field
            )
            extras["all_voronoi_cells_correct"] = vd_check.all_correct
        return RunRecord(
            spec=spec,
            scheme=self.name,
            coverage=scheme.coverage(
                vd_result.final_positions, scenario.coverage_resolution
            ),
            average_moving_distance=(
                total_distance / len(per_sensor) if per_sensor else 0.0
            ),
            total_moving_distance=total_distance,
            total_messages=0,
            connected=positions_are_connected(
                vd_result.final_positions, scenario.communication_range
            ),
            periods_executed=vd_result.rounds_executed,
            extras=extras,
            final_positions=(
                tuple(p.as_tuple() for p in vd_result.final_positions)
                if spec.keep_positions
                else None
            ),
        )

    def _execute_with_events(
        self, spec, scenario, scheme, field, exploded, rounds, check_voronoi
    ) -> RunRecord:
        (
            positions,
            total_distance,
            sensors_ever,
            rounds_executed,
            outcomes,
        ) = _run_vd_with_events(scenario, scheme, field, exploded, rounds)
        extras = {}
        if check_voronoi:
            vd_check = diagram_is_correct(
                positions, scenario.communication_range, field
            )
            extras["all_voronoi_cells_correct"] = vd_check.all_correct
        return RunRecord(
            spec=spec,
            scheme=self.name,
            coverage=scheme.coverage(positions, scenario.coverage_resolution),
            average_moving_distance=(
                total_distance / sensors_ever if sensors_ever else 0.0
            ),
            total_moving_distance=total_distance,
            total_messages=0,
            connected=positions_are_connected(
                positions, scenario.communication_range
            ),
            periods_executed=rounds_executed,
            extras=extras,
            events=tuple(outcomes),
            final_positions=(
                tuple(p.as_tuple() for p in positions)
                if spec.keep_positions
                else None
            ),
        )


@register_scheme("VOR")
class VorAdapter(VDSchemeAdapter):
    """The VOR baseline: move toward the farthest Voronoi vertex."""

    name = "VOR"
    scheme_class = VorScheme


@register_scheme("Minimax")
class MinimaxAdapter(VDSchemeAdapter):
    """The Minimax baseline: move to the cell's minimax point."""

    name = "Minimax"
    scheme_class = MinimaxScheme


# ----------------------------------------------------------------------
# Analytic baselines (no simulation)
# ----------------------------------------------------------------------
@register_scheme("OPT")
class OptAdapter(SchemeAdapter):
    """The centralised OPT strip pattern (coverage upper baseline, Fig 9)."""

    name = "OPT"

    def execute(self, spec: RunSpec) -> RunRecord:
        _reject_unknown_params(self.name, thaw_params(spec.scheme_params))
        scenario = spec.scenario
        field = scenario.build_field()
        pattern = OptStripPattern(
            field, scenario.communication_range, scenario.sensing_range
        )
        positions = pattern.positions_for_count(scenario.sensor_count)
        return RunRecord(
            spec=spec,
            scheme=self.name,
            coverage=field.coverage_fraction(
                positions, scenario.sensing_range, scenario.coverage_resolution
            ),
            average_moving_distance=0.0,
            total_moving_distance=0.0,
            total_messages=0,
            connected=True,
            final_positions=(
                tuple(p.as_tuple() for p in positions)
                if spec.keep_positions
                else None
            ),
        )


@register_scheme("OPT-Hungarian")
class OptHungarianAdapter(SchemeAdapter):
    """Hungarian lower bound on the distance to reach the OPT pattern."""

    name = "OPT-Hungarian"

    def execute(self, spec: RunSpec) -> RunRecord:
        _reject_unknown_params(self.name, thaw_params(spec.scheme_params))
        scenario = spec.scenario
        field = scenario.build_field()
        pattern = OptStripPattern(
            field, scenario.communication_range, scenario.sensing_range
        )
        targets = pattern.positions_for_count(scenario.sensor_count)
        average, coverage = hungarian_bound(scenario, targets, field)
        return RunRecord(
            spec=spec,
            scheme=self.name,
            coverage=coverage,
            average_moving_distance=average,
            total_moving_distance=average * scenario.sensor_count,
            total_messages=0,
            connected=True,
            final_positions=(
                tuple(p.as_tuple() for p in targets)
                if spec.keep_positions
                else None
            ),
        )
