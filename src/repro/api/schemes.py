"""Scheme adapters: one execution interface over every deployment scheme.

The paper evaluates three very different kinds of scheme:

* the **period-based** CPVF and FLOOR protocols, which run on the
  period-synchronous :class:`~repro.sim.engine.SimulationEngine`;
* the **round-based** VD baselines VOR and Minimax, which operate on raw
  position lists and (from a clustered start) need the explosion dispersal
  first;
* the **analytic** OPT strip pattern and the Hungarian moving-distance
  lower bound, which need no simulation at all.

Historically every experiment special-cased these three shapes.  The
:class:`SchemeAdapter` interface hides the difference: every adapter turns a
:class:`~repro.api.specs.RunSpec` into a :class:`~repro.api.specs.RunRecord`,
and experiments just declare grids of run specs.  Adapters register
themselves by name (``@register_scheme("CPVF")``), so new schemes plug in
without touching the experiment layer.
"""

from __future__ import annotations

import abc
import random
from typing import Dict

from ..assignment import minimum_distance_matching
from ..baselines import MinimaxScheme, OptStripPattern, VorScheme, explode
from ..core import CPVFScheme, FloorScheme
from ..metrics import positions_are_connected
from ..sim import DeploymentScheme, SimulationEngine
from ..voronoi import diagram_is_correct
from .registry import register_scheme, scheme_registry
from .scenario import thaw_params
from .specs import RunRecord, RunSpec, TracePoint

__all__ = [
    "SchemeAdapter",
    "PeriodSchemeAdapter",
    "VDSchemeAdapter",
    "execute_run",
    "hungarian_bound",
]


def _reject_unknown_params(scheme_name: str, params: Dict) -> None:
    if params:
        raise TypeError(
            f"unknown {scheme_name} scheme parameters: {sorted(params)}"
        )


def hungarian_bound(scenario, targets, field=None):
    """Hungarian moving-distance lower bound to reach a target layout.

    Matches the scenario's deterministic initial placement to ``targets``
    at minimum total distance and returns ``(average_distance, coverage)``
    — the recipe shared by the OPT-Hungarian scheme and the Fig 11
    FLOOR-Hungarian row.
    """
    if field is None:
        field = scenario.build_field()
    initial = scenario.initial_positions(field)
    _, total = minimum_distance_matching(
        [p.as_tuple() for p in initial], [p.as_tuple() for p in targets]
    )
    coverage = field.coverage_fraction(
        targets, scenario.sensing_range, scenario.coverage_resolution
    )
    return total / max(1, scenario.sensor_count), coverage


def execute_run(spec: RunSpec) -> RunRecord:
    """Execute one run spec through the registered scheme adapter.

    This is the single entry point the sweep executor (and its worker
    processes) use; it is a module-level function so it pickles cleanly.
    """
    adapter: SchemeAdapter = scheme_registry.get(spec.scheme)
    return adapter.execute(spec)


class SchemeAdapter(abc.ABC):
    """Executes one :class:`RunSpec`, whatever kind of scheme it names."""

    #: Canonical scheme name reported in records.
    name: str = "scheme"

    @abc.abstractmethod
    def execute(self, spec: RunSpec) -> RunRecord:
        """Run the scheme on the spec's scenario and return the record."""


# ----------------------------------------------------------------------
# Period-based schemes (CPVF, FLOOR) on the simulation engine
# ----------------------------------------------------------------------
class PeriodSchemeAdapter(SchemeAdapter):
    """Adapter base for schemes driven by the period-synchronous engine."""

    def build_scheme(self, settings, params: Dict) -> DeploymentScheme:
        """Instantiate the underlying scheme.

        ``settings`` is any object exposing the scheme-relevant scenario
        attributes (``oscillation_delta``, ``invitation_ttl``, ...): both
        :class:`~repro.api.scenario.ScenarioSpec` and
        :class:`~repro.sim.config.SimulationConfig` qualify.
        """
        raise NotImplementedError

    def execute(self, spec: RunSpec) -> RunRecord:
        scenario = spec.scenario
        field = scenario.build_field()
        world = scenario.build_world(field)
        scheme = self.build_scheme(scenario, thaw_params(spec.scheme_params))
        engine = SimulationEngine(
            world,
            scheme,
            trace_every=spec.trace_every if spec.trace_every else 50,
            keep_world=True,
        )
        result = engine.run()
        return RunRecord(
            spec=spec,
            scheme=self.name,
            coverage=result.final_coverage,
            average_moving_distance=result.average_moving_distance,
            total_moving_distance=result.total_moving_distance,
            total_messages=result.total_messages,
            connected=result.connected,
            periods_executed=result.periods_executed,
            converged_at=result.converged_at,
            extras={"obstacle_count": len(field.obstacles)},
            trace=(
                tuple(
                    TracePoint(
                        time=t.time,
                        coverage=t.coverage,
                        average_moving_distance=t.average_moving_distance,
                        total_messages=t.total_messages,
                        connected_sensors=t.connected_sensors,
                    )
                    for t in result.trace
                )
                if spec.trace_every
                else ()
            ),
            final_positions=(
                tuple((s.position.x, s.position.y) for s in world.sensors)
                if spec.keep_positions
                else None
            ),
        )


@register_scheme("CPVF")
class CPVFAdapter(PeriodSchemeAdapter):
    """Connectivity-Preserved Virtual Force deployment (Section 4)."""

    name = "CPVF"

    def build_scheme(self, settings, params: Dict) -> DeploymentScheme:
        return CPVFScheme(
            oscillation_delta=settings.oscillation_delta,
            oscillation_mode=settings.oscillation_mode,
            **params,
        )


@register_scheme("FLOOR")
class FloorAdapter(PeriodSchemeAdapter):
    """Floor-based deployment (Section 5)."""

    name = "FLOOR"

    def build_scheme(self, settings, params: Dict) -> DeploymentScheme:
        return FloorScheme(invitation_ttl=settings.invitation_ttl, **params)


# ----------------------------------------------------------------------
# Round-based VD baselines (VOR, Minimax) with explosion dispersal
# ----------------------------------------------------------------------
class VDSchemeAdapter(SchemeAdapter):
    """Adapter base for the round-based, connectivity-ignorant VD schemes.

    From the scenario's (typically clustered) start the adapter first runs
    the minimum-cost explosion dispersal, then the scheme's Voronoi rounds;
    the recorded moving distance charges both stages, as in Fig 11.

    Scheme parameters: ``rounds`` (default 10) and ``check_voronoi``
    (default ``False``; when set, the record's ``all_voronoi_cells_correct``
    extra reports whether every locally-constructed cell was correct).
    """

    scheme_class = None  # type: ignore[assignment]

    def execute(self, spec: RunSpec) -> RunRecord:
        scenario = spec.scenario
        params = thaw_params(spec.scheme_params)
        rounds = int(params.pop("rounds", 10))
        check_voronoi = bool(params.pop("check_voronoi", False))
        _reject_unknown_params(self.name, params)

        field = scenario.build_field()
        config = scenario.build_config()
        rng = random.Random(scenario.seed)
        initial = scenario.placement_strategy()(config, field, rng)
        exploded = explode(initial, field, rng)

        scheme = self.scheme_class(
            field, scenario.communication_range, scenario.sensing_range
        )
        vd_result = scheme.run(exploded.positions, rounds=rounds)
        per_sensor = [
            explosion + rounds_distance
            for explosion, rounds_distance in zip(
                exploded.per_sensor_distance, vd_result.per_sensor_distance
            )
        ]
        total_distance = sum(per_sensor)
        extras = {}
        if check_voronoi:
            vd_check = diagram_is_correct(
                vd_result.final_positions, scenario.communication_range, field
            )
            extras["all_voronoi_cells_correct"] = vd_check.all_correct
        return RunRecord(
            spec=spec,
            scheme=self.name,
            coverage=scheme.coverage(
                vd_result.final_positions, scenario.coverage_resolution
            ),
            average_moving_distance=(
                total_distance / len(per_sensor) if per_sensor else 0.0
            ),
            total_moving_distance=total_distance,
            total_messages=0,
            connected=positions_are_connected(
                vd_result.final_positions, scenario.communication_range
            ),
            periods_executed=vd_result.rounds_executed,
            extras=extras,
            final_positions=(
                tuple(p.as_tuple() for p in vd_result.final_positions)
                if spec.keep_positions
                else None
            ),
        )


@register_scheme("VOR")
class VorAdapter(VDSchemeAdapter):
    """The VOR baseline: move toward the farthest Voronoi vertex."""

    name = "VOR"
    scheme_class = VorScheme


@register_scheme("Minimax")
class MinimaxAdapter(VDSchemeAdapter):
    """The Minimax baseline: move to the cell's minimax point."""

    name = "Minimax"
    scheme_class = MinimaxScheme


# ----------------------------------------------------------------------
# Analytic baselines (no simulation)
# ----------------------------------------------------------------------
@register_scheme("OPT")
class OptAdapter(SchemeAdapter):
    """The centralised OPT strip pattern (coverage upper baseline, Fig 9)."""

    name = "OPT"

    def execute(self, spec: RunSpec) -> RunRecord:
        _reject_unknown_params(self.name, thaw_params(spec.scheme_params))
        scenario = spec.scenario
        field = scenario.build_field()
        pattern = OptStripPattern(
            field, scenario.communication_range, scenario.sensing_range
        )
        positions = pattern.positions_for_count(scenario.sensor_count)
        return RunRecord(
            spec=spec,
            scheme=self.name,
            coverage=field.coverage_fraction(
                positions, scenario.sensing_range, scenario.coverage_resolution
            ),
            average_moving_distance=0.0,
            total_moving_distance=0.0,
            total_messages=0,
            connected=True,
            final_positions=(
                tuple(p.as_tuple() for p in positions)
                if spec.keep_positions
                else None
            ),
        )


@register_scheme("OPT-Hungarian")
class OptHungarianAdapter(SchemeAdapter):
    """Hungarian lower bound on the distance to reach the OPT pattern."""

    name = "OPT-Hungarian"

    def execute(self, spec: RunSpec) -> RunRecord:
        _reject_unknown_params(self.name, thaw_params(spec.scheme_params))
        scenario = spec.scenario
        field = scenario.build_field()
        pattern = OptStripPattern(
            field, scenario.communication_range, scenario.sensing_range
        )
        targets = pattern.positions_for_count(scenario.sensor_count)
        average, coverage = hungarian_bound(scenario, targets, field)
        return RunRecord(
            spec=spec,
            scheme=self.name,
            coverage=coverage,
            average_moving_distance=average,
            total_moving_distance=average * scenario.sensor_count,
            total_messages=0,
            connected=True,
            final_positions=(
                tuple(p.as_tuple() for p in targets)
                if spec.keep_positions
                else None
            ),
        )
