"""The declarative experiment API: specs, registries and the sweep executor.

This package is the experiment-facing surface of the reproduction (it is
re-exported from :mod:`repro.experiments`).  The pieces compose bottom-up:

* :mod:`repro.api.registry` — name registries for schemes, field layouts
  and initial placements, with decorator registration and error messages
  that list the available names;
* :mod:`repro.api.scenario` — the frozen :class:`ScenarioSpec` that builds
  a :class:`~repro.sim.world.World` in one pass;
* :mod:`repro.api.specs` — :class:`RunSpec` / :class:`SweepSpec` grids and
  the typed, JSON-serializable :class:`RunRecord`;
* :mod:`repro.api.schemes` — adapters unifying the period-based protocols
  (CPVF, FLOOR), the round-based VD baselines (VOR, Minimax) and the
  analytic baselines (OPT, OPT-Hungarian) behind ``execute_run``;
* :mod:`repro.api.sweep` — the process-sharded :class:`SweepRunner`.

Quick start::

    from repro.api import ScenarioSpec, RunSpec, SweepSpec, SweepRunner

    scenario = ScenarioSpec(field_size=300.0, sensor_count=24, duration=80.0)
    sweep = SweepSpec.grid(
        "demo", scenario, schemes=("CPVF", "FLOOR"),
        axes={"communication_range": [30.0, 60.0]},
    )
    for record in SweepRunner(jobs=2).run(sweep):
        print(record.scheme, record.scenario.communication_range,
              f"{record.coverage:.1%}")
"""

from ..network import NetworkSpec
from ..obs import TelemetrySummary
from .registry import (
    Registry,
    layout_registry,
    placement_registry,
    register_layout,
    register_placement,
    register_scheme,
    scheme_registry,
)
from .scenario import ScenarioSpec, freeze_params, thaw_params
from .schemes import (
    PeriodSchemeAdapter,
    SchemeAdapter,
    VDSchemeAdapter,
    execute_run,
    hungarian_bound,
)
from .seeds import derive_seed, spawn_seeds
from .specs import (
    SPEC_SCHEMA_VERSION,
    RunRecord,
    RunSpec,
    SweepSpec,
    TracePoint,
    canonical_json,
    run_fingerprint,
)
from .sweep import SweepRunner, default_job_count

__all__ = [
    "Registry",
    "scheme_registry",
    "layout_registry",
    "placement_registry",
    "register_scheme",
    "register_layout",
    "register_placement",
    "ScenarioSpec",
    "freeze_params",
    "thaw_params",
    "SchemeAdapter",
    "PeriodSchemeAdapter",
    "VDSchemeAdapter",
    "execute_run",
    "hungarian_bound",
    "derive_seed",
    "spawn_seeds",
    "SPEC_SCHEMA_VERSION",
    "canonical_json",
    "run_fingerprint",
    "TracePoint",
    "TelemetrySummary",
    "NetworkSpec",
    "RunSpec",
    "RunRecord",
    "SweepSpec",
    "SweepRunner",
    "default_job_count",
]
