"""Name-based registries for schemes, field layouts and placements.

The experiment layer refers to every pluggable piece — deployment scheme,
field layout, initial-placement strategy — by a registered name, so that
specs (:mod:`repro.api.scenario`, :mod:`repro.api.specs`) stay plain,
JSON-serializable data.  Registration is decorator-based::

    from repro.api import register_scheme, SchemeAdapter

    @register_scheme("MyScheme")
    class MySchemeAdapter(SchemeAdapter):
        name = "MyScheme"
        def execute(self, spec):
            ...

Lookups are case-insensitive and an unknown name raises a :class:`KeyError`
that lists the available names, so typos fail loudly and helpfully.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, TypeVar

__all__ = [
    "Registry",
    "scheme_registry",
    "layout_registry",
    "placement_registry",
    "register_scheme",
    "register_layout",
    "register_placement",
]

T = TypeVar("T")


class Registry:
    """A case-insensitive name -> object registry with helpful errors."""

    def __init__(self, kind: str):
        self.kind = kind
        #: canonical name -> registered object.
        self._entries: Dict[str, object] = {}
        #: casefolded name -> canonical name.
        self._index: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, name: str, obj: object = None):
        """Register ``obj`` under ``name``; usable as a decorator.

        When used as a decorator (``obj`` omitted) the decorated object is
        registered and returned unchanged; classes are instantiated with no
        arguments first, so ``@register_scheme("X")`` on an adapter class
        registers a ready-to-use adapter instance.
        """
        if obj is None:

            def decorator(decorated):
                instance = decorated() if isinstance(decorated, type) else decorated
                self.register(name, instance)
                return decorated

            return decorator
        key = name.casefold()
        canonical = self._index.get(key)
        if canonical is not None:
            if canonical == name and self._entries[canonical] is obj:
                return obj  # idempotent re-registration
            raise ValueError(
                f"{self.kind} {name!r} is already registered (as "
                f"{canonical!r}); unregister it first to replace it"
            )
        self._entries[name] = obj
        self._index[key] = name
        return obj

    def unregister(self, name: str) -> None:
        """Remove a registered entry (primarily for tests)."""
        canonical = self._index.pop(name.casefold(), None)
        if canonical is None:
            raise KeyError(self._unknown_message(name))
        del self._entries[canonical]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, name: str):
        """The object registered under ``name`` (case-insensitive).

        Raises :class:`KeyError` naming the available entries otherwise.
        """
        canonical = self._index.get(str(name).casefold())
        if canonical is None:
            raise KeyError(self._unknown_message(name))
        return self._entries[canonical]

    def canonical_name(self, name: str) -> str:
        """The canonical (registration-time) spelling of ``name``."""
        canonical = self._index.get(str(name).casefold())
        if canonical is None:
            raise KeyError(self._unknown_message(name))
        return canonical

    def names(self) -> List[str]:
        """All registered canonical names, sorted."""
        return sorted(self._entries)

    def _unknown_message(self, name: str) -> str:
        return (
            f"unknown {self.kind} {name!r}; available: {self.names()}"
        )

    def __contains__(self, name: str) -> bool:
        return str(name).casefold() in self._index

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Registry({self.kind}: {self.names()})"


#: Deployment schemes (period-based, round-based and analytic alike),
#: keyed by the name used in :class:`repro.api.specs.RunSpec`.
scheme_registry = Registry("scheme")

#: Field layouts, keyed by the name used in
#: :class:`repro.api.scenario.ScenarioSpec`; entries are callables
#: ``(size, **params) -> Field``.
layout_registry = Registry("field layout")

#: Initial-placement strategies; entries are callables
#: ``(config, field, rng, **params) -> List[Vec2]``.
placement_registry = Registry("placement")


def register_scheme(name: str):
    """Decorator registering a :class:`SchemeAdapter` (class or instance)."""
    return scheme_registry.register(name)


def register_layout(name: str):
    """Decorator registering a field-layout builder ``(size, **params) -> Field``."""
    return layout_registry.register(name)


def register_placement(name: str):
    """Decorator registering a placement ``(config, field, rng, **params) -> positions``."""
    return placement_registry.register(name)


# ----------------------------------------------------------------------
# Built-in field layouts
# ----------------------------------------------------------------------
def _register_builtin_layouts() -> None:
    from ..field import (
        RandomObstacleConfig,
        corridor_field,
        generate_random_obstacle_field,
        obstacle_free_field,
        two_obstacle_field,
    )

    @register_layout("obstacle-free")
    def obstacle_free(size: float):
        """The obstacle-free field of Figures 3(a,b) / 8(a,b) and Figs 9-12."""
        return obstacle_free_field(size)

    @register_layout("two-obstacle")
    def two_obstacle(size: float):
        """The two-obstacle field of Figures 3(c) / 8(c) and Table 1."""
        return two_obstacle_field(size)

    @register_layout("corridor")
    def corridor(size: float):
        """The narrow-corridor field used by tests and examples."""
        return corridor_field(size)

    @register_layout("random-obstacles")
    def random_obstacles(
        size: float,
        seed: int = 1,
        min_side: float = None,
        max_side: float = None,
        keep_clear_radius: float = None,
        min_obstacles: int = 1,
        max_obstacles: int = 4,
        connectivity_resolution: float = None,
    ):
        """A Fig 13 random-obstacle field, fully determined by ``seed``."""
        import random as _random

        from ..scenarios.validate import ScenarioValidator

        config = RandomObstacleConfig(
            field_size=size,
            min_obstacles=min_obstacles,
            max_obstacles=max_obstacles,
            min_side=min_side if min_side is not None else 0.08 * size,
            max_side=max_side if max_side is not None else 0.4 * size,
            keep_clear_radius=(
                keep_clear_radius if keep_clear_radius is not None else 0.06 * size
            ),
            connectivity_resolution=(
                connectivity_resolution
                if connectivity_resolution is not None
                else max(10.0, size / 40.0)
            ),
        )
        # The shared scenario validator subsumes the historical inline
        # check (free-space connectivity at the configured resolution) and
        # additionally requires base-station reachability.
        validator = ScenarioValidator(
            min_free_fraction=0.0, resolution=config.connectivity_resolution
        )
        return generate_random_obstacle_field(
            _random.Random(seed), config, validator=validator.accepts
        )


# ----------------------------------------------------------------------
# Built-in placement strategies
# ----------------------------------------------------------------------
def _register_builtin_placements() -> None:
    from ..field import clustered_initial_positions, uniform_initial_positions

    @register_placement("clustered")
    def clustered(config, field, rng, cluster_fraction: float = 0.5):
        """The paper's clustered start: uniform in the lower-left square.

        The cluster square scales with the field (half the side by default)
        so reduced-scale runs keep the paper's geometry.
        """
        return clustered_initial_positions(
            config.sensor_count,
            rng,
            cluster_size=field.width * cluster_fraction,
            field=field,
        )

    @register_placement("uniform")
    def uniform(config, field, rng):
        """Uniformly random over the whole free field."""
        return uniform_initial_positions(config.sensor_count, rng, field)


def _register_scenario_library() -> None:
    """Load the procedural scenario subsystem so its entries self-register.

    Importing :mod:`repro.scenarios` runs the ``@register_layout`` /
    ``@register_placement`` decorators of its generator and placement
    modules.  Doing it here — rather than relying on callers importing the
    package — guarantees the names resolve wherever this registry module
    is loaded, including sweep worker processes that only ever import
    :func:`repro.api.schemes.execute_run`.
    """
    from .. import scenarios  # noqa: F401


_register_builtin_layouts()
_register_builtin_placements()
_register_scenario_library()
