"""Run and sweep specifications and the typed run record.

The paper's whole evaluation is a grid of independent runs — scheme
crossed with ranges, population sizes, seeds and fields.  This module
gives that grid a declarative shape:

* :class:`RunSpec` — one run: a :class:`~repro.api.scenario.ScenarioSpec`
  plus a registered scheme name, scheme parameters, tracing options and
  free-form tags for experiment bookkeeping;
* :class:`RunRecord` — the typed, JSON-serializable outcome of one run;
* :class:`SweepSpec` — a named tuple of runs, with a :meth:`SweepSpec.grid`
  helper that expands cartesian axes and spawns per-repetition seeds.

Everything is frozen and picklable, so sweeps shard cleanly across worker
processes (:class:`repro.api.sweep.SweepRunner`) and records persist as
JSON artifacts (``runner --out``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..metrics.recovery import EventOutcome
from ..network import NETWORK_SCHEMA_VERSION, NetworkSpec
from ..obs import TelemetrySummary
from .scenario import Params, ScenarioSpec, freeze_params, thaw_params
from .seeds import derive_seed

__all__ = [
    "SPEC_SCHEMA_VERSION",
    "canonical_json",
    "run_fingerprint",
    "TracePoint",
    "RunSpec",
    "RunRecord",
    "SweepSpec",
]

#: Version of the spec/record semantics covered by :func:`run_fingerprint`.
#: Bump it whenever a change makes previously computed records stale for
#: the *same* spec content — a scheme implementation change that alters
#: results, a new record field, a serialization change.  The version is
#: hashed into every fingerprint, so bumping it invalidates every
#: content-addressed store entry at once (old entries simply never match
#: again and are reclaimed by ``repro.service``'s GC).
SPEC_SCHEMA_VERSION = 1


def canonical_json(data: Any) -> str:
    """The canonical JSON serialization used for content addressing.

    Key order, whitespace and non-finite floats are all pinned down, so
    two structurally equal payloads always serialize to the same bytes —
    the property :func:`run_fingerprint` relies on.
    """
    return json.dumps(
        data, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def run_fingerprint(spec: "RunSpec") -> str:
    """Canonical blake2b fingerprint of a run spec's semantic content.

    The digest covers every field that determines the run's outcome — the
    full scenario (layout, placement, population, ranges, seed, event
    timeline), the scheme and its parameters, and the record-shaping
    options (``trace_every``, ``keep_positions``) — plus
    :data:`SPEC_SCHEMA_VERSION`.  It deliberately excludes ``tags``:
    bookkeeping does not change the computation, so sweeps that differ
    only in labelling share cache cells (the store re-attaches the
    requesting spec's tags on a hit).

    Specs are JSON-round-trippable and all run randomness is derived from
    the spec's own seed, so the fingerprint fully determines the record.
    """
    payload = canonical_json(
        {"schema": SPEC_SCHEMA_VERSION, "spec": spec.canonical_dict()}
    )
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=20).hexdigest()


@dataclass(frozen=True)
class TracePoint:
    """Coverage/metrics snapshot at the end of one traced period."""

    time: float
    coverage: float
    average_moving_distance: float
    total_messages: int
    connected_sensors: int

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "TracePoint":
        return TracePoint(**data)


@dataclass(frozen=True)
class RunSpec:
    """One independent run: scenario x scheme (+ options and tags)."""

    scenario: ScenarioSpec
    #: Registered scheme name (see :data:`repro.api.scheme_registry`).
    scheme: str = "CPVF"
    #: Scheme-specific options (e.g. ``rounds`` for the VD baselines).
    scheme_params: Params = ()
    #: Record a metrics trace every this many periods (``None`` = no trace).
    trace_every: Optional[int] = None
    #: Keep the final sensor positions in the record (needed by the
    #: Hungarian lower bounds and layout plots; off by default to keep
    #: sweep records light).
    keep_positions: bool = False
    #: Collect telemetry (phase spans + counters) and attach the
    #: :class:`~repro.obs.TelemetrySummary` to the record.  Excluded from
    #: the fingerprint like ``tags``: profiling observes the run, it does
    #: not change the computation, so profiled and unprofiled sweeps
    #: share cache cells.
    profile: bool = False
    #: Network delivery conditions (loss / latency / staleness).  ``None``
    #: — and any *structural* spec (perfect model or all-degenerate
    #: knobs) — means the pinned perfect network: such specs are omitted
    #: from the fingerprint payload entirely, so pre-existing fingerprints
    #: and store entries never move.  Non-structural specs are hashed in
    #: (with :data:`~repro.network.NETWORK_SCHEMA_VERSION`), giving
    #: degraded runs their own cache cells.
    network: Optional[NetworkSpec] = None
    #: Free-form experiment bookkeeping (scenario label, sweep axis values,
    #: repetition index, ...); carried through to the record untouched.
    tags: Params = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "scheme_params", freeze_params(self.scheme_params))
        object.__setattr__(self, "tags", freeze_params(self.tags))

    def tag(self, key: str, default: Any = None) -> Any:
        """The value of one bookkeeping tag."""
        return thaw_params(self.tags).get(key, default)

    def replace(self, **overrides) -> "RunSpec":
        """A copy with some fields replaced."""
        return dataclasses.replace(self, **overrides)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario.to_dict(),
            "scheme": self.scheme,
            "scheme_params": thaw_params(self.scheme_params),
            "trace_every": self.trace_every,
            "keep_positions": self.keep_positions,
            "profile": self.profile,
            "network": (
                self.network.to_dict() if self.network is not None else None
            ),
            "tags": thaw_params(self.tags),
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "RunSpec":
        data = dict(data)
        data["scenario"] = ScenarioSpec.from_dict(data["scenario"])
        # Back-compat: pre-conditions payloads have no "network" key.
        network = data.get("network")
        data["network"] = NetworkSpec.from_dict(network) if network else None
        return RunSpec(**data)

    # ------------------------------------------------------------------
    # Content addressing
    # ------------------------------------------------------------------
    def canonical_dict(self) -> Dict[str, Any]:
        """The result-determining content of this spec, normalized.

        Like :meth:`to_dict` but without ``tags`` (pure bookkeeping) or
        ``profile`` (pure observation) — the payload
        :func:`run_fingerprint` hashes.  Params are already
        order-normalized at freeze time, and :func:`canonical_json`
        sorts every remaining key.
        """
        data = self.to_dict()
        del data["tags"]
        del data["profile"]
        if self.network is None or self.network.is_structural():
            # A structural network is the seed behaviour; omitting it keeps
            # pre-conditions fingerprints (and cached records) valid.
            del data["network"]
        else:
            data["network"] = {
                "version": NETWORK_SCHEMA_VERSION,
                **self.network.to_dict(),
            }
        return data

    def fingerprint(self) -> str:
        """Canonical content fingerprint (see :func:`run_fingerprint`)."""
        return run_fingerprint(self)


@dataclass(frozen=True)
class RunRecord:
    """Typed outcome of one run, identical whether run serially or sharded."""

    spec: RunSpec
    #: Canonical scheme name (registration-time spelling).
    scheme: str
    #: Final coverage fraction in ``[0, 1]``.
    coverage: float
    #: Average per-sensor odometer reading in metres.
    average_moving_distance: float
    #: Summed odometer readings in metres.
    total_moving_distance: float
    #: Total protocol transmissions.
    total_messages: int
    #: Whether every sensor has a multi-hop route to the base station.
    connected: bool
    #: Periods (or rounds, for the VD baselines) actually executed.
    periods_executed: int = 0
    #: Period at which the scheme reported convergence, if it did.
    converged_at: Optional[int] = None
    #: Scheme-specific extra metrics (e.g. Voronoi-cell correctness).
    extras: Params = ()
    #: Per-period metrics trace (populated when ``spec.trace_every`` is set).
    trace: Tuple[TracePoint, ...] = ()
    #: Recovery metrics, one per lifecycle event the scenario fired.
    events: Tuple[EventOutcome, ...] = ()
    #: Final ``(x, y)`` positions (populated when ``spec.keep_positions``).
    final_positions: Optional[Tuple[Tuple[float, float], ...]] = None
    #: Phase-time breakdown + counter totals (populated when
    #: ``spec.profile``).  Counter values are deterministic; phase seconds
    #: are wall-clock.  Absent (``None``) in unprofiled and pre-telemetry
    #: records.
    telemetry: Optional[TelemetrySummary] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "extras", freeze_params(self.extras))
        object.__setattr__(self, "trace", tuple(self.trace))
        object.__setattr__(self, "events", tuple(self.events))
        if self.final_positions is not None:
            object.__setattr__(
                self,
                "final_positions",
                tuple(tuple(point) for point in self.final_positions),
            )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    @property
    def scenario(self) -> ScenarioSpec:
        """The scenario this record was produced under."""
        return self.spec.scenario

    def tag(self, key: str, default: Any = None) -> Any:
        """A bookkeeping tag carried over from the spec."""
        return self.spec.tag(key, default)

    def extra(self, key: str, default: Any = None) -> Any:
        """A scheme-specific extra metric."""
        return thaw_params(self.extras).get(key, default)

    def rebind(self, spec: RunSpec) -> "RunRecord":
        """This record re-attached to ``spec`` (which must fingerprint-match).

        Cache hits serve records computed for a *semantically* identical
        spec; the requesting sweep's bookkeeping tags may differ, and the
        determinism contract promises records identical to a fresh run.
        Rebinding swaps the spec (tags included) without touching any
        computed field.
        """
        if spec.fingerprint() != self.spec.fingerprint():
            raise ValueError(
                "cannot rebind a record to a spec with a different fingerprint"
            )
        return dataclasses.replace(self, spec=spec)

    def messages_per_node(self) -> float:
        """Average protocol transmissions per sensor."""
        count = self.spec.scenario.sensor_count
        return self.total_messages / count if count else 0.0

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict (round-trips through :meth:`from_dict`)."""
        return {
            "spec": self.spec.to_dict(),
            "scheme": self.scheme,
            "coverage": self.coverage,
            "average_moving_distance": self.average_moving_distance,
            "total_moving_distance": self.total_moving_distance,
            "total_messages": self.total_messages,
            "connected": self.connected,
            "periods_executed": self.periods_executed,
            "converged_at": self.converged_at,
            "extras": thaw_params(self.extras),
            "trace": [point.to_dict() for point in self.trace],
            "events": [outcome.to_dict() for outcome in self.events],
            "final_positions": (
                [list(point) for point in self.final_positions]
                if self.final_positions is not None
                else None
            ),
            "telemetry": (
                self.telemetry.to_dict() if self.telemetry is not None else None
            ),
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "RunRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        data = dict(data)
        data["spec"] = RunSpec.from_dict(data["spec"])
        data["trace"] = tuple(
            TracePoint.from_dict(point) for point in data.get("trace", ())
        )
        data["events"] = tuple(
            EventOutcome.from_dict(outcome) for outcome in data.get("events", ())
        )
        # Back-compat: pre-telemetry payloads have no "telemetry" key.
        telemetry = data.get("telemetry")
        data["telemetry"] = (
            TelemetrySummary.from_dict(telemetry) if telemetry else None
        )
        return RunRecord(**data)


@dataclass(frozen=True)
class SweepSpec:
    """A named collection of independent runs (one figure/table sweep)."""

    name: str
    runs: Tuple[RunSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "runs", tuple(self.runs))

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self):
        return iter(self.runs)

    # ------------------------------------------------------------------
    # Grid expansion
    # ------------------------------------------------------------------
    @staticmethod
    def grid(
        name: str,
        scenario: ScenarioSpec,
        schemes: Sequence[str] = ("CPVF",),
        axes: Optional[Mapping[str, Sequence[Any]]] = None,
        repetitions: int = 1,
        scheme_params: Union[Mapping[str, Any], Params, None] = None,
        trace_every: Optional[int] = None,
        keep_positions: bool = False,
        profile: bool = False,
        network: Optional[NetworkSpec] = None,
        tags: Union[Mapping[str, Any], Params, None] = None,
    ) -> "SweepSpec":
        """Expand a cartesian grid of scenario overrides into runs.

        ``axes`` maps :class:`ScenarioSpec` field names to value lists; the
        cartesian product of all axes (in insertion order), crossed with
        ``schemes``, yields one :class:`RunSpec` per point, each tagged with
        its axis values.  ``repetitions > 1`` repeats every point with a
        deterministic per-repetition seed spawned from the scenario seed
        (tagged ``rep``), so sharded and serial executions agree.
        """
        axis_items = list((axes or {}).items())

        def expand(index: int, overrides: Dict[str, Any]):
            if index == len(axis_items):
                yield dict(overrides)
                return
            field_name, values = axis_items[index]
            for value in values:
                overrides[field_name] = value
                yield from expand(index + 1, overrides)
                del overrides[field_name]

        base_tags = thaw_params(freeze_params(tags))
        runs: List[RunSpec] = []
        for overrides in expand(0, {}):
            for rep in range(max(1, repetitions)):
                point = scenario.replace(**overrides)
                run_tags = dict(base_tags)
                run_tags.update(overrides)
                if repetitions > 1:
                    # Spawn from the point's own seed (axes may override it),
                    # so a seed axis still yields distinct repetitions.
                    point = point.replace(seed=derive_seed(point.seed, rep))
                    run_tags["rep"] = rep
                for scheme in schemes:
                    runs.append(
                        RunSpec(
                            scenario=point,
                            scheme=scheme,
                            scheme_params=freeze_params(scheme_params),
                            trace_every=trace_every,
                            keep_positions=keep_positions,
                            profile=profile,
                            network=network,
                            tags=run_tags,
                        )
                    )
        return SweepSpec(name=name, runs=tuple(runs))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "runs": [run.to_dict() for run in self.runs]}

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "SweepSpec":
        return SweepSpec(
            name=data["name"],
            runs=tuple(RunSpec.from_dict(run) for run in data["runs"]),
        )
