"""The declarative scenario specification.

A :class:`ScenarioSpec` is a frozen, JSON-serializable description of one
simulation setting: the field (by registered layout name plus parameters),
the initial-placement strategy (by registered name), the population, radio
and kinematic parameters, and the seed.  It builds a ready-to-run
:class:`~repro.sim.world.World` in **one pass** — the initial positions are
drawn exactly once, from the world's own RNG stream, by the registered
placement strategy (this replaces the historical ``make_world`` pattern of
placing sensors in ``World.create`` and then overwriting them with a second
draw).

Example::

    from repro.api import ScenarioSpec

    spec = ScenarioSpec(
        field_size=500.0,
        layout="two-obstacle",
        sensor_count=80,
        communication_range=60.0,
        sensing_range=40.0,
        duration=250.0,
        seed=7,
    )
    world = spec.build_world()
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..field import Field
from ..geometry import Vec2
from ..sim import LifecycleEvent, SimulationConfig, World, normalize_events
from .registry import layout_registry, placement_registry

__all__ = ["Params", "ScenarioSpec", "freeze_params", "thaw_params"]

#: Frozen parameter mapping: a sorted tuple of ``(key, value)`` pairs with
#: JSON-primitive values, hashable and order-independent.
Params = Tuple[Tuple[str, Any], ...]


def freeze_params(params: Union[Mapping[str, Any], Sequence, None]) -> Params:
    """Normalise a mapping (or pair sequence) into a sorted frozen tuple."""
    if params is None:
        return ()
    if isinstance(params, Mapping):
        items = params.items()
    else:
        items = tuple(tuple(pair) for pair in params)
    return tuple(sorted((str(k), v) for k, v in items))


def thaw_params(params: Params) -> Dict[str, Any]:
    """The frozen parameter tuple as a plain dict."""
    return dict(params)


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, immutable description of one simulation setting."""

    #: Side length of the square field in metres.
    field_size: float = 1000.0
    #: Registered field-layout name (see :data:`repro.api.layout_registry`).
    layout: str = "obstacle-free"
    #: Extra parameters for the layout builder (e.g. the random-obstacle seed).
    layout_params: Params = ()
    #: Registered initial-placement strategy name.
    placement: str = "clustered"
    #: Extra parameters for the placement strategy.
    placement_params: Params = ()
    #: Number of mobile sensors.
    sensor_count: int = 240
    #: Communication range ``rc`` in metres.
    communication_range: float = 60.0
    #: Sensing range ``rs`` in metres.
    sensing_range: float = 40.0
    #: Maximum moving speed ``V`` in metres per second.
    max_speed: float = 2.0
    #: Period length ``T`` in seconds.
    period: float = 1.0
    #: Simulation horizon in seconds.
    duration: float = 750.0
    #: Coverage-grid resolution in metres.
    coverage_resolution: float = 10.0
    #: Seed of the run's random stream (placement, invitation walks, ...).
    seed: int = 1
    #: FLOOR invitation random-walk TTL (``None`` = the paper's ``0.2 N``).
    invitation_ttl: Optional[int] = None
    #: CPVF oscillation-avoidance factor (``None`` disables avoidance).
    oscillation_delta: Optional[float] = None
    #: CPVF oscillation-avoidance rule: "one-step" or "two-step".
    oscillation_mode: str = "one-step"
    #: Lifecycle event timeline (fault injection); empty = a static run
    #: that takes exactly the pre-lifecycle code paths.
    events: Tuple[LifecycleEvent, ...] = ()

    def __post_init__(self) -> None:
        # Accept plain dicts at construction time; store frozen tuples.
        object.__setattr__(self, "layout_params", freeze_params(self.layout_params))
        object.__setattr__(
            self, "placement_params", freeze_params(self.placement_params)
        )
        object.__setattr__(self, "events", normalize_events(self.events))

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def build_config(self) -> SimulationConfig:
        """The scalar simulation configuration for this scenario."""
        return SimulationConfig(
            sensor_count=self.sensor_count,
            communication_range=self.communication_range,
            sensing_range=self.sensing_range,
            max_speed=self.max_speed,
            period=self.period,
            duration=self.duration,
            coverage_resolution=self.coverage_resolution,
            seed=self.seed,
            clustered_start=self.placement == "clustered",
            invitation_ttl=self.invitation_ttl,
            oscillation_delta=self.oscillation_delta,
            oscillation_mode=self.oscillation_mode,
        )

    def build_field(self) -> Field:
        """The field built by the registered layout (raises on unknown names)."""
        builder = layout_registry.get(self.layout)
        return builder(self.field_size, **thaw_params(self.layout_params))

    def placement_strategy(self):
        """The placement as a ``(config, field, rng) -> positions`` callable."""
        strategy = placement_registry.get(self.placement)
        params = thaw_params(self.placement_params)
        return partial(strategy, **params) if params else strategy

    def initial_positions(self, field: Optional[Field] = None) -> List[Vec2]:
        """The initial positions this scenario's world starts from.

        Deterministic: the same draw ``build_world`` performs (the first
        consumption of the ``seed`` stream), so baselines that need the raw
        starting layout (explosion, Hungarian bounds) see exactly the
        positions a simulated world would.
        """
        import random

        if field is None:
            field = self.build_field()
        rng = random.Random(self.seed)
        return self.placement_strategy()(self.build_config(), field, rng)

    def build_world(self, field: Optional[Field] = None) -> World:
        """A ready-to-run world; sensor positions are drawn exactly once."""
        if field is None:
            field = self.build_field()
        return World.create(
            self.build_config(), field, placement=self.placement_strategy()
        )

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def replace(self, **overrides) -> "ScenarioSpec":
        """A copy with some fields replaced."""
        return dataclasses.replace(self, **overrides)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict (round-trips through :meth:`from_dict`)."""
        data = dataclasses.asdict(self)
        data["layout_params"] = thaw_params(self.layout_params)
        data["placement_params"] = thaw_params(self.placement_params)
        data["events"] = [event.to_dict() for event in self.events]
        return data

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return ScenarioSpec(**data)
