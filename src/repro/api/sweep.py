"""The process-sharded sweep executor.

Every run in a sweep is independent — the paper's figures are grids of
runs differing only in scheme, ranges, population or seed — so sweeps
parallelise trivially across processes.  :class:`SweepRunner` executes a
:class:`~repro.api.specs.SweepSpec` either serially (``jobs=1``) or on a
``multiprocessing`` pool, and merges results deterministically: records
come back in spec order regardless of worker scheduling, and every per-run
random stream is fixed by the spec itself (seeds are part of the frozen
specs, derived at expansion time).  ``jobs=1`` and ``jobs=8`` therefore
produce identical record lists.

Example::

    from repro.api import ScenarioSpec, SweepSpec, SweepRunner

    sweep = SweepSpec.grid(
        "coverage-vs-n",
        ScenarioSpec(field_size=300.0, duration=80.0, sensor_count=24),
        schemes=("CPVF", "FLOOR"),
        axes={"sensor_count": [16, 24, 32]},
    )
    records = SweepRunner(jobs=4).run(sweep)
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Iterable, List, Sequence, Union

from .schemes import execute_run
from .specs import RunRecord, RunSpec, SweepSpec

__all__ = ["SweepRunner", "default_job_count"]


def default_job_count() -> int:
    """A sensible ``jobs`` value for this machine (one per CPU)."""
    return max(1, os.cpu_count() or 1)


class SweepRunner:
    """Executes sweep runs, optionally sharded across worker processes."""

    def __init__(self, jobs: int = 1, chunksize: int = 1):
        """``jobs=1`` runs in-process; ``jobs=N`` shards over ``N`` workers.

        ``chunksize`` tunes how many runs a worker claims at a time; the
        default of 1 keeps long runs from serialising behind each other.
        """
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = int(jobs)
        self.chunksize = max(1, int(chunksize))

    def run(
        self, sweep: Union[SweepSpec, Sequence[RunSpec], Iterable[RunSpec]]
    ) -> List[RunRecord]:
        """Execute every run and return records in spec order."""
        runs = list(sweep.runs) if isinstance(sweep, SweepSpec) else list(sweep)
        if not runs:
            return []
        jobs = min(self.jobs, len(runs))
        if jobs == 1:
            return [execute_run(spec) for spec in runs]
        # ``Pool.map`` preserves input order, which is the deterministic
        # merge: record i always belongs to spec i.
        with multiprocessing.Pool(processes=jobs) as pool:
            return pool.map(execute_run, runs, chunksize=self.chunksize)

    def run_sweep(self, sweep: SweepSpec) -> List[RunRecord]:
        """Alias of :meth:`run` for call sites that want the explicit name."""
        return self.run(sweep)
