"""The process-sharded sweep executor.

Every run in a sweep is independent — the paper's figures are grids of
runs differing only in scheme, ranges, population or seed — so sweeps
parallelise trivially across processes.  :class:`SweepRunner` executes a
:class:`~repro.api.specs.SweepSpec` either serially (``jobs=1``) or on a
``multiprocessing`` pool, and merges results deterministically: records
come back in spec order regardless of worker scheduling, and every per-run
random stream is fixed by the spec itself (seeds are part of the frozen
specs, derived at expansion time).  ``jobs=1`` and ``jobs=8`` therefore
produce identical record lists.

A runner may also be bound to a content-addressed
:class:`~repro.service.store.RunStore`.  Completed cells are then written
through to the store *as they finish* (by the worker processes themselves
under ``jobs=N``), which makes a killed sweep resumable; with
``reuse=True`` cells already in the store are served without recompute,
so only the missing cells of a resumed — or merely overlapping — sweep
are paid for.  Cache hits are rebound to the requesting spec, so the
record list is identical to a cold ``jobs=1`` run either way.

Example::

    from repro.api import ScenarioSpec, SweepSpec, SweepRunner

    sweep = SweepSpec.grid(
        "coverage-vs-n",
        ScenarioSpec(field_size=300.0, duration=80.0, sensor_count=24),
        schemes=("CPVF", "FLOOR"),
        axes={"sensor_count": [16, 24, 32]},
    )
    records = SweepRunner(jobs=4, store="runs/", reuse=True).run(sweep)
"""

from __future__ import annotations

import multiprocessing
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .schemes import execute_run
from .specs import RunRecord, RunSpec, SweepSpec

__all__ = ["SweepRunner", "default_job_count"]


def default_job_count() -> int:
    """A sensible ``jobs`` value for this machine (one per CPU)."""
    return max(1, os.cpu_count() or 1)


def _execute_and_store(args: Tuple[RunSpec, str, int]) -> RunRecord:
    """Worker task: execute one spec and write it through to the store.

    Module-level (pickles cleanly) and write-as-you-finish: even when the
    parent dies before the pool's map returns, every completed cell is
    already persisted — the resume guarantee.
    """
    spec, store_root, schema_version = args
    from ..service.store import RunStore

    record = execute_run(spec)
    RunStore(store_root, schema_version=schema_version).put(record)
    return record


class SweepRunner:
    """Executes sweep runs, optionally sharded across worker processes."""

    def __init__(
        self,
        jobs: int = 1,
        chunksize: int = 1,
        store=None,
        reuse: bool = True,
    ):
        """``jobs=1`` runs in-process; ``jobs=N`` shards over ``N`` workers.

        ``chunksize`` tunes how many runs a worker claims at a time; the
        default of 1 keeps long runs from serialising behind each other.

        ``store`` binds the runner to a content-addressed run store (a
        :class:`~repro.service.store.RunStore` or a filesystem path);
        completed cells are written through as they finish.  ``reuse``
        controls the read side: ``True`` serves stored cells without
        recompute (resume/cache semantics), ``False`` keeps the store
        write-through only (refresh semantics).
        """
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = int(jobs)
        self.chunksize = max(1, int(chunksize))
        if isinstance(store, (str, Path)):
            from ..service.store import RunStore

            store = RunStore(store)
        self.store = store
        self.reuse = bool(reuse)
        #: ``{"cells", "hits", "computed"}`` of the most recent :meth:`run`.
        self.last_cache: Optional[Dict[str, int]] = None

    def run(
        self, sweep: Union[SweepSpec, Sequence[RunSpec], Iterable[RunSpec]]
    ) -> List[RunRecord]:
        """Execute every run and return records in spec order."""
        runs = list(sweep.runs) if isinstance(sweep, SweepSpec) else list(sweep)
        if not runs:
            self.last_cache = {"cells": 0, "hits": 0, "computed": 0}
            return []
        if self.store is None:
            self.last_cache = {
                "cells": len(runs), "hits": 0, "computed": len(runs),
            }
            jobs = min(self.jobs, len(runs))
            if jobs == 1:
                return [execute_run(spec) for spec in runs]
            # ``Pool.map`` preserves input order, which is the deterministic
            # merge: record i always belongs to spec i.
            with multiprocessing.Pool(processes=jobs) as pool:
                return pool.map(execute_run, runs, chunksize=self.chunksize)
        return self._run_with_store(runs)

    def _run_with_store(self, runs: List[RunSpec]) -> List[RunRecord]:
        """The store-aware path: serve hits, compute misses, write through."""
        records: List[Optional[RunRecord]] = [None] * len(runs)
        misses: List[int] = []
        if self.reuse:
            for index, spec in enumerate(runs):
                cached = self.store.get(spec)
                if cached is not None:
                    records[index] = cached
                else:
                    misses.append(index)
        else:
            misses = list(range(len(runs)))
        self.last_cache = {
            "cells": len(runs),
            "hits": len(runs) - len(misses),
            "computed": len(misses),
        }
        if not misses:
            return records
        jobs = min(self.jobs, len(misses))
        if jobs == 1:
            # Write through after every cell, not at the end: a kill at
            # any point loses at most the cell in progress.
            for index in misses:
                record = execute_run(runs[index])
                self.store.put(record)
                records[index] = record
        else:
            tasks = [
                (runs[index], str(self.store.root), self.store.schema_version)
                for index in misses
            ]
            with multiprocessing.Pool(processes=jobs) as pool:
                computed = pool.map(
                    _execute_and_store, tasks, chunksize=self.chunksize
                )
            for index, record in zip(misses, computed):
                records[index] = record
        return records

    def run_sweep(self, sweep: SweepSpec) -> List[RunRecord]:
        """Alias of :meth:`run` for call sites that want the explicit name."""
        return self.run(sweep)
