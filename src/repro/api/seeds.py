"""Deterministic seed derivation for sweep expansion.

Sweeps that repeat a scenario (Fig 13's 300 random-obstacle deployments,
for instance) need one independent random stream per repetition, and the
streams must not depend on *how* the sweep is executed: a run sharded over
eight worker processes has to produce records identical to the serial run.
The derivation below is therefore a pure function of the base seed and the
repetition's identity — a hash-based seed-sequence spawn, stable across
processes, platforms and ``PYTHONHASHSEED`` settings.
"""

from __future__ import annotations

import hashlib
from typing import List

__all__ = ["derive_seed", "spawn_seeds"]


def derive_seed(base_seed: int, *keys) -> int:
    """A 31-bit seed derived deterministically from ``base_seed`` and ``keys``.

    ``keys`` may be any mix of ints and strings identifying the child stream
    (a repetition index, an axis label, ...).  Distinct key tuples yield
    independent-looking seeds; the same tuple always yields the same seed.
    """
    digest = hashlib.blake2b(
        repr((int(base_seed),) + tuple(keys)).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") >> 33


def spawn_seeds(base_seed: int, count: int) -> List[int]:
    """``count`` child seeds spawned from ``base_seed`` (one per repetition)."""
    return [derive_seed(base_seed, index) for index in range(count)]
