"""Step-based motion model.

The paper's sensors "move in steps of variable size; in each step, a sensor
moves in a straight line at a uniform speed for a fixed amount of time
(a *period*, T), and at the end of that step it decides the direction and
size of the next step".  The maximum speed is ``V``, so the maximum step
size is ``V * T``.

:class:`MotionModel` keeps a sensor's kinematic state: its position, the
path (if any) it is currently following, and its odometer (total distance
travelled), which is the moving-distance metric of the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..geometry import Vec2
from .bug2 import Bug2Path

__all__ = ["MotionModel"]


@dataclass
class MotionModel:
    """Kinematics of a single mobile sensor.

    Parameters
    ----------
    position:
        Current location.
    max_speed:
        Maximum moving speed ``V`` in metres per second.
    period:
        Length ``T`` of one decision period in seconds.
    """

    position: Vec2
    max_speed: float
    period: float
    odometer: float = 0.0
    _path: Optional[Bug2Path] = field(default=None, repr=False)
    _path_progress: float = field(default=0.0, repr=False)

    def __setattr__(self, name: str, value) -> None:
        # Every position assignment bumps the version counter; the spatial
        # subsystem's NeighborCache uses the tuple of versions as its epoch,
        # so caches invalidate exactly when a sensor actually moves.
        if name == "position":
            object.__setattr__(
                self, "_position_version", self.__dict__.get("_position_version", 0) + 1
            )
        object.__setattr__(self, name, value)

    @property
    def position_version(self) -> int:
        """Monotone counter incremented on every position assignment."""
        return self.__dict__.get("_position_version", 0)

    # ------------------------------------------------------------------
    # Direct moves
    # ------------------------------------------------------------------
    @property
    def max_step(self) -> float:
        """Maximum distance coverable in one period (``V * T``)."""
        return self.max_speed * self.period

    def move_to(self, target: Vec2) -> float:
        """Teleport-style move used after a validated step-size decision.

        The caller is responsible for having limited ``target`` to at most
        one step away and for collision checks; the odometer is charged the
        straight-line distance.  Returns the distance moved.
        """
        dist = self.position.distance_to(target)
        self.position = target
        self.odometer += dist
        return dist

    def commit_move(self, x: float, y: float, distance: float) -> None:
        """Commit a move whose straight-line distance is already known.

        The batched CPVF path computes all commit distances in one numpy
        ``hypot``; this skips the per-sensor recomputation of
        :meth:`move_to` while charging the odometer and bumping the
        position version exactly once, like any other position
        assignment.
        """
        self.position = Vec2(float(x), float(y))
        self.odometer += distance

    def step_towards(self, target: Vec2, distance: Optional[float] = None) -> float:
        """Move straight toward ``target`` by at most one step.

        ``distance`` optionally caps the step below ``V * T`` (e.g. the
        maximum *valid* step size under the connectivity-preserving
        conditions).  Returns the distance actually moved.
        """
        limit = self.max_step if distance is None else min(distance, self.max_step)
        gap = self.position.distance_to(target)
        if gap <= 1e-12 or limit <= 0:
            return 0.0
        travel = min(limit, gap)
        direction = self.position.towards(target)
        self.position = self.position + direction * travel
        self.odometer += travel
        return travel

    # ------------------------------------------------------------------
    # Path following
    # ------------------------------------------------------------------
    def follow(self, path: Bug2Path) -> None:
        """Start following a planned polyline path from its beginning."""
        self._path = path
        self._path_progress = 0.0
        if path.waypoints and not path.waypoints[0].almost_equals(self.position):
            # The path was planned from (a projection of) the current
            # position; snap to it so arc-length progress stays consistent.
            self.position = path.waypoints[0]

    @property
    def has_path(self) -> bool:
        """Whether the sensor is currently following a path."""
        return self._path is not None

    @property
    def path(self) -> Optional[Bug2Path]:
        """The path being followed, if any."""
        return self._path

    def remaining_path_length(self) -> float:
        """Arc length left on the current path (zero when idle)."""
        if self._path is None:
            return 0.0
        return max(0.0, self._path.length() - self._path_progress)

    def advance_along_path(self, distance: Optional[float] = None) -> float:
        """Advance along the current path by at most one step.

        Returns the distance moved.  The path is cleared automatically when
        its end is reached.
        """
        if self._path is None:
            return 0.0
        limit = self.max_step if distance is None else min(distance, self.max_step)
        if limit <= 0:
            return 0.0
        remaining = self.remaining_path_length()
        travel = min(limit, remaining)
        self._path_progress += travel
        new_position = self._path.point_at_distance(self._path_progress)
        self.odometer += travel
        self.position = new_position
        if self.remaining_path_length() <= 1e-9:
            self._path = None
            self._path_progress = 0.0
        return travel

    def stop(self) -> None:
        """Abandon the current path (the sensor stays where it is)."""
        self._path = None
        self._path_progress = 0.0
