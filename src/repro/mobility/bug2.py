"""The BUG2 path-planning algorithm (Lumelsky & Stepanov, 1987).

Both CPVF's connectivity phase and FLOOR's three-leg trajectory (Algorithm 1
in the paper) move sensors with BUG2: walk the straight *reference line*
from start to target; on hitting an obstacle, follow its boundary (right- or
left-hand rule) until returning to the reference line at a point closer to
the target from which progress can be made; then resume the straight walk.

The planner operates on polygonal obstacles and produces a polyline path.
Sensors then traverse that polyline step by step under the motion model
(:mod:`repro.mobility.motion`), which is where periods, speed limits and the
lazy-movement strategy come in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple

from ..field import Field, Obstacle
from ..geometry import EPS, Segment, Vec2

__all__ = ["Handedness", "Bug2Path", "Bug2Planner"]

#: How far outside an obstacle boundary the planned path is kept, in metres.
#: A small clearance keeps waypoints in free space despite floating point
#: error; it is negligible relative to the 30-60 m sensing ranges.
_CLEARANCE = 0.5

#: Maximum number of obstacle encounters resolved along one reference line.
#: The evaluation uses at most four obstacles, so this is a safety valve
#: against pathological layouts rather than a practical limit.
_MAX_ENCOUNTERS = 64


class Handedness(Enum):
    """Which hand stays in contact with the obstacle while circumnavigating.

    The paper uses the right-hand rule while establishing connectivity and
    the left-hand rule while dispersing (footnote 1 in Section 5.5.1),
    because the latter "helps sensors disperse into unexplored areas more
    quickly".
    """

    RIGHT = "right"
    LEFT = "left"


@dataclass
class Bug2Path:
    """A planned path: a polyline of waypoints from start to target."""

    waypoints: List[Vec2]
    reached_target: bool
    encounters: int = 0

    def length(self) -> float:
        """Total polyline length."""
        return sum(
            self.waypoints[i].distance_to(self.waypoints[i + 1])
            for i in range(len(self.waypoints) - 1)
        )

    def start(self) -> Vec2:
        """First waypoint."""
        return self.waypoints[0]

    def end(self) -> Vec2:
        """Last waypoint."""
        return self.waypoints[-1]

    def point_at_distance(self, distance: float) -> Vec2:
        """Point at arc-length ``distance`` from the start (clamped to the end)."""
        if distance <= 0 or len(self.waypoints) == 1:
            return self.waypoints[0]
        remaining = distance
        for i in range(len(self.waypoints) - 1):
            a, b = self.waypoints[i], self.waypoints[i + 1]
            seg_len = a.distance_to(b)
            if remaining <= seg_len:
                if seg_len <= EPS:
                    return b
                return a.lerp(b, remaining / seg_len)
            remaining -= seg_len
        return self.waypoints[-1]


class Bug2Planner:
    """Plans BUG2 paths within a :class:`~repro.field.Field`."""

    def __init__(self, field: Field, handedness: Handedness = Handedness.RIGHT):
        self._field = field
        self._handedness = handedness

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def plan(self, start: Vec2, target: Vec2) -> Bug2Path:
        """Plan a path from ``start`` to ``target``.

        Both endpoints are first projected into free space.  The returned
        path always begins at (the free projection of) ``start``; it ends at
        the target when one was reachable, otherwise at the closest point
        the planner managed to reach (``reached_target`` is then ``False``).
        """
        start = self._field.nearest_free(start)
        target = self._field.nearest_free(target)
        waypoints: List[Vec2] = [start]
        current = start
        encounters = 0

        while current.distance_to(target) > EPS and encounters < _MAX_ENCOUNTERS:
            leg = Segment(current, target)
            blocking = self._first_blocking_obstacle(leg)
            if blocking is None:
                waypoints.append(target)
                return Bug2Path(waypoints, True, encounters)

            obstacle, hit = blocking
            encounters += 1
            hit = self._push_out(hit, obstacle)
            if hit.distance_to(current) > EPS:
                waypoints.append(hit)

            leave = self._leave_point(obstacle, hit, start, target)
            if leave is None:
                # The reference line never re-emerges closer to the target:
                # the target is unreachable around this obstacle (should not
                # happen in a connected field).  Stop at the hit point.
                return Bug2Path(waypoints, False, encounters)

            boundary = self._boundary_walk(obstacle, hit, leave)
            for p in boundary:
                if p.distance_to(waypoints[-1]) > EPS:
                    waypoints.append(p)
            current = waypoints[-1]

        reached = current.distance_to(target) <= 1e-6
        if reached and not waypoints[-1].almost_equals(target):
            waypoints.append(target)
        return Bug2Path(waypoints, reached, encounters)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _first_blocking_obstacle(
        self, leg: Segment
    ) -> Optional[Tuple[Obstacle, Vec2]]:
        """First obstacle whose interior the leg would cross, with hit point."""
        best: Optional[Tuple[Obstacle, Vec2]] = None
        best_dist = math.inf
        for ob in self._field.obstacles:
            if not ob.blocks_segment(leg):
                continue
            hit = ob.first_hit(leg)
            if hit is None:
                # The segment starts inside the obstacle (after projection
                # this should not happen); use the closest boundary point.
                hit = ob.closest_boundary_point(leg.a)
            dist = leg.a.distance_to(hit)
            if dist < best_dist:
                best = (ob, hit)
                best_dist = dist
        return best

    def _push_out(self, p: Vec2, obstacle: Obstacle) -> Vec2:
        """Move a boundary point slightly away from the obstacle interior."""
        centroid = obstacle.polygon.centroid()
        direction = (p - centroid).normalized()
        if direction.norm() == 0.0:
            direction = Vec2(1.0, 0.0)
        candidate = p + direction * _CLEARANCE
        return self._field.clamp(candidate)

    def _leave_point(
        self, obstacle: Obstacle, hit: Vec2, start: Vec2, target: Vec2
    ) -> Optional[Vec2]:
        """Where BUG2 leaves the obstacle and resumes the reference line.

        BUG2 leaves at a reference-line point that is closer to the target
        than the hit point and from which progress can be made.  For the
        polygons used here that is the reference-line/boundary intersection
        closest to the target; the target itself is used when it sits on the
        boundary region beyond all intersections.
        """
        reference = Segment(start, target)
        crossings = obstacle.polygon.segment_intersections(reference)
        hit_dist = hit.distance_to(target)
        candidates = [
            p for p in crossings if p.distance_to(target) < hit_dist - 1e-9
        ]
        if not candidates:
            return None
        leave = min(candidates, key=lambda p: p.distance_to(target))
        return self._push_out(leave, obstacle)

    def _boundary_walk(
        self, obstacle: Obstacle, start_point: Vec2, leave_point: Vec2
    ) -> List[Vec2]:
        """Waypoints following the obstacle boundary from start to leave.

        The walk direction follows the planner's handedness: with counter-
        clockwise vertex order, traversing vertices in order keeps the
        obstacle on the walker's left (left-hand rule); traversing them in
        reverse keeps it on the right (right-hand rule).
        """
        polygon = obstacle.polygon.counter_clockwise()
        vertices = list(polygon.vertices)
        n = len(vertices)
        edges = polygon.edges()

        def edge_index_of(p: Vec2) -> int:
            return min(
                range(n), key=lambda i: edges[i].distance_to_point(p)
            )

        start_edge = edge_index_of(start_point)
        leave_edge = edge_index_of(leave_point)

        waypoints: List[Vec2] = []
        if self._handedness is Handedness.LEFT:
            # Walk the boundary in CCW vertex order.
            idx = (start_edge + 1) % n
            guard = 0
            while guard <= n:
                if edge_index_of(leave_point) == (idx - 1) % n and guard > 0:
                    break
                waypoints.append(self._push_out(vertices[idx % n], obstacle))
                if (idx - 1) % n == leave_edge:
                    break
                idx = (idx + 1) % n
                guard += 1
        else:
            # Walk the boundary in CW order (reverse vertex order).
            idx = start_edge
            guard = 0
            while guard <= n:
                waypoints.append(self._push_out(vertices[idx % n], obstacle))
                if idx % n == leave_edge:
                    break
                idx = (idx - 1) % n
                guard += 1

        waypoints.append(leave_point)
        return self._prune(waypoints, start_point, leave_point)

    def _prune(
        self, waypoints: List[Vec2], start_point: Vec2, leave_point: Vec2
    ) -> List[Vec2]:
        """Drop boundary waypoints that are not needed to reach the leave point.

        A waypoint is unnecessary when the direct segment from the previous
        retained point to the leave point is already unblocked; this keeps
        the walked distance close to the theoretical BUG2 path for convex
        obstacles.
        """
        pruned: List[Vec2] = []
        previous = start_point
        for i, p in enumerate(waypoints):
            if p.almost_equals(leave_point):
                pruned.append(p)
                break
            direct = Segment(previous, leave_point)
            if not self._field.segment_blocked(direct):
                pruned.append(leave_point)
                break
            pruned.append(p)
            previous = p
        else:
            if not pruned or not pruned[-1].almost_equals(leave_point):
                pruned.append(leave_point)
        return pruned

    def path_length_upper_bound(self, start: Vec2, target: Vec2) -> float:
        """The theoretical BUG2 bound ``D + sum_i n_i * l_i / 2``.

        ``D`` is the start-target distance, ``n_i`` the number of times the
        reference line crosses obstacle ``i`` and ``l_i`` its perimeter.
        Useful for property tests on convex obstacle courses.
        """
        reference = Segment(start, target)
        bound = start.distance_to(target)
        for ob in self._field.obstacles:
            crossings = len(ob.polygon.segment_intersections(reference))
            bound += crossings * ob.perimeter() / 2.0
        return bound
