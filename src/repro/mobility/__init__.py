"""Path planning (BUG2) and the step-based motion model."""

from .bug2 import Bug2Path, Bug2Planner, Handedness
from .motion import MotionModel

__all__ = ["Bug2Path", "Bug2Planner", "Handedness", "MotionModel"]
