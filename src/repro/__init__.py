"""repro — reproduction of "Connectivity-Guaranteed and Obstacle-Adaptive
Deployment Schemes for Mobile Sensor Networks" (Tan, Jarvis, Kermarrec).

The package is organised bottom-up:

* :mod:`repro.geometry`, :mod:`repro.field`, :mod:`repro.voronoi`,
  :mod:`repro.mobility`, :mod:`repro.network`, :mod:`repro.sensors`,
  :mod:`repro.sim` — the substrates (geometry, field/obstacle model,
  Voronoi diagrams, BUG2 path planning, unit-disk radio and connectivity
  tree, period-synchronous simulation engine);
* :mod:`repro.core` — the paper's contribution: the CPVF and FLOOR
  deployment schemes and their building blocks;
* :mod:`repro.spatial` — the shared fast paths (cell-hash spatial index,
  epoch-based neighbor cache, incremental coverage tracking) the hot
  queries above are built on;
* :mod:`repro.baselines`, :mod:`repro.assignment` — the evaluation
  baselines (OPT strip pattern, VOR, Minimax, Hungarian bounds);
* :mod:`repro.metrics`, :mod:`repro.experiments`, :mod:`repro.viz` — the
  evaluation machinery reproducing every table and figure of the paper.

Quick start::

    from repro import SimulationConfig, SimulationEngine, World
    from repro import FloorScheme, obstacle_free_field

    config = SimulationConfig(sensor_count=60, duration=200.0)
    world = World.create(config, obstacle_free_field(500.0))
    result = SimulationEngine(world, FloorScheme()).run()
    print(f"coverage: {result.final_coverage:.1%}")
"""

from .geometry import Circle, Polygon, Segment, Vec2
from .field import (
    Field,
    Obstacle,
    corridor_field,
    generate_random_obstacle_field,
    obstacle_free_field,
    two_obstacle_field,
)
from .mobility import Bug2Planner, Bug2Path, Handedness, MotionModel
from .network import ConnectivityTree, MessageStats, MessageType, Radio
from .sensors import Sensor, SensorState
from .sim import (
    DeploymentScheme,
    SimulationConfig,
    SimulationEngine,
    SimulationResult,
    World,
)
from .core import (
    CPVFScheme,
    FloorGeometry,
    FloorScheme,
    OscillationAvoidance,
    VirtualForceModel,
)
from .baselines import MinimaxScheme, OptStripPattern, VorScheme, explode
from .assignment import hungarian, minimum_distance_matching
from .metrics import (
    EmpiricalCDF,
    coverage_fraction,
    coverage_report,
    positions_are_connected,
    summarize_sensor_distances,
)
from .spatial import IncrementalCoverage, NeighborCache, SpatialIndex
from .voronoi import VoronoiDiagram, diagram_is_correct
from .api import (
    RunRecord,
    RunSpec,
    ScenarioSpec,
    SweepRunner,
    SweepSpec,
    execute_run,
    register_layout,
    register_placement,
    register_scheme,
)
from .scenarios import (
    DEFAULT_SUITE,
    ScenarioSuite,
    ScenarioValidator,
    scenario_fingerprint,
)

__version__ = "1.0.0"

__all__ = [
    "Circle",
    "Polygon",
    "Segment",
    "Vec2",
    "Field",
    "Obstacle",
    "corridor_field",
    "generate_random_obstacle_field",
    "obstacle_free_field",
    "two_obstacle_field",
    "Bug2Planner",
    "Bug2Path",
    "Handedness",
    "MotionModel",
    "ConnectivityTree",
    "MessageStats",
    "MessageType",
    "Radio",
    "Sensor",
    "SensorState",
    "DeploymentScheme",
    "SimulationConfig",
    "SimulationEngine",
    "SimulationResult",
    "World",
    "CPVFScheme",
    "FloorGeometry",
    "FloorScheme",
    "OscillationAvoidance",
    "VirtualForceModel",
    "MinimaxScheme",
    "OptStripPattern",
    "VorScheme",
    "explode",
    "hungarian",
    "minimum_distance_matching",
    "EmpiricalCDF",
    "coverage_fraction",
    "coverage_report",
    "positions_are_connected",
    "summarize_sensor_distances",
    "IncrementalCoverage",
    "NeighborCache",
    "SpatialIndex",
    "VoronoiDiagram",
    "diagram_is_correct",
    "ScenarioSpec",
    "RunSpec",
    "RunRecord",
    "SweepSpec",
    "SweepRunner",
    "execute_run",
    "register_scheme",
    "register_layout",
    "register_placement",
    "DEFAULT_SUITE",
    "ScenarioSuite",
    "ScenarioValidator",
    "scenario_fingerprint",
    "__version__",
]
