"""Communication-limited ("local") Voronoi cells.

Figure 1 of the paper shows that a sensor whose communication range does not
reach all of its true Voronoi neighbours constructs an *incorrect* cell.
Figure 10 annotates the VOR/Minimax bars with "Incorrect VD" whenever at
least one sensor's locally computed cell differs from the true one.  This
module builds the local cells (clipping only against neighbours within
``rc``) and detects such discrepancies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..field import Field
from ..geometry import Vec2
from .diagram import VoronoiCell, compute_cell

__all__ = ["LocalVoronoiResult", "local_cell", "local_cells", "diagram_is_correct"]


@dataclass
class LocalVoronoiResult:
    """Outcome of constructing all local cells for a network snapshot."""

    cells: List[VoronoiCell]
    incorrect_count: int

    @property
    def all_correct(self) -> bool:
        """Whether every sensor constructed its true Voronoi cell."""
        return self.incorrect_count == 0


def local_cell(
    index: int,
    positions: Sequence[Vec2],
    communication_range: float,
    field: Field,
) -> VoronoiCell:
    """Voronoi cell computed only against neighbours within ``rc``."""
    site = positions[index]
    neighbours = [
        p
        for i, p in enumerate(positions)
        if i != index and site.distance_to(p) <= communication_range
    ]
    return compute_cell(site, neighbours, field.boundary_polygon())


def local_cells(
    positions: Sequence[Vec2],
    communication_range: float,
    field: Field,
) -> List[VoronoiCell]:
    """Local cells of every sensor."""
    return [
        local_cell(i, positions, communication_range, field)
        for i in range(len(positions))
    ]


def _cells_match(local: VoronoiCell, true: VoronoiCell, area_tolerance: float) -> bool:
    """Whether a local cell matches the true cell (by area difference).

    Comparing vertex lists directly is brittle; the area criterion captures
    what matters for the deployment schemes — whether the sensor over- or
    under-estimates its responsibility region.
    """
    if (local.polygon is None) != (true.polygon is None):
        return False
    if local.polygon is None and true.polygon is None:
        return True
    assert local.polygon is not None and true.polygon is not None
    return abs(local.polygon.area() - true.polygon.area()) <= area_tolerance


def diagram_is_correct(
    positions: Sequence[Vec2],
    communication_range: float,
    field: Field,
    area_tolerance: float = 1e-3,
) -> LocalVoronoiResult:
    """Compare every sensor's local cell against its true Voronoi cell.

    Returns the list of local cells and the count of sensors whose local
    cell differs from the true one ("Incorrect VD" in Fig 10).
    """
    bounding = field.boundary_polygon()
    incorrect = 0
    cells: List[VoronoiCell] = []
    for i, site in enumerate(positions):
        others = [p for j, p in enumerate(positions) if j != i]
        true_cell = compute_cell(site, others, bounding)
        loc_cell = local_cell(i, positions, communication_range, field)
        cells.append(loc_cell)
        if not _cells_match(loc_cell, true_cell, area_tolerance):
            incorrect += 1
    return LocalVoronoiResult(cells=cells, incorrect_count=incorrect)
