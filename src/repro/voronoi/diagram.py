"""Bounded Voronoi diagrams built from scratch via half-plane clipping.

The VOR and Minimax baselines (Wang et al., INFOCOM'04) move every sensor
according to its Voronoi cell.  A sensor in a real network can only see the
neighbours within its communication range, so the cell it computes may be
incorrect (Fig 1 of the paper); :mod:`repro.voronoi.local` quantifies that.
Here we compute cells by intersecting perpendicular-bisector half-planes
with the field rectangle, which is exact for bounded diagrams and requires
no external computational-geometry dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..geometry import Polygon, Vec2, bisector_halfplane, clip_polygon
from ..field import Field

__all__ = ["VoronoiCell", "VoronoiDiagram", "compute_cell"]


@dataclass(frozen=True)
class VoronoiCell:
    """The bounded Voronoi cell of a single site."""

    site: Vec2
    polygon: Optional[Polygon]

    def is_empty(self) -> bool:
        """Whether clipping eliminated the cell entirely (degenerate input)."""
        return self.polygon is None

    def vertices(self) -> List[Vec2]:
        """Cell vertices (empty list for an empty cell)."""
        if self.polygon is None:
            return []
        return list(self.polygon.vertices)

    def farthest_vertex(self) -> Optional[Vec2]:
        """The cell vertex farthest from the site (VOR's move target)."""
        verts = self.vertices()
        if not verts:
            return None
        return max(verts, key=self.site.distance_to)

    def max_vertex_distance(self) -> float:
        """Distance from the site to its farthest cell vertex."""
        far = self.farthest_vertex()
        if far is None:
            return 0.0
        return self.site.distance_to(far)

    def minimax_point(self, samples: int = 48) -> Optional[Vec2]:
        """The point of the cell minimising the maximum vertex distance.

        This is Minimax's move target.  For a convex cell the optimum is the
        centre of the minimum enclosing circle of the vertices, which we
        compute exactly with Welzl's algorithm restricted to the vertex set;
        if that centre falls outside the cell we fall back to the closest
        boundary point.
        """
        verts = self.vertices()
        if not verts:
            return None
        center, _ = minimum_enclosing_circle(verts)
        if self.polygon is not None and not self.polygon.contains(center):
            center = self.polygon.closest_boundary_point(center)
        return center

    def contains(self, p: Vec2) -> bool:
        """Whether ``p`` lies in the cell."""
        return self.polygon is not None and self.polygon.contains(p)


def minimum_enclosing_circle(points: Sequence[Vec2]) -> tuple[Vec2, float]:
    """Smallest circle containing all ``points`` (Welzl's algorithm).

    Returns ``(center, radius)``.  Deterministic (no shuffling) because the
    vertex counts involved are tiny.
    """
    pts = list(points)
    if not pts:
        return Vec2.zero(), 0.0

    def circle_from_two(a: Vec2, b: Vec2) -> tuple[Vec2, float]:
        center = a.lerp(b, 0.5)
        return center, center.distance_to(a)

    def circle_from_three(a: Vec2, b: Vec2, c: Vec2) -> Optional[tuple[Vec2, float]]:
        d = 2.0 * (a.x * (b.y - c.y) + b.x * (c.y - a.y) + c.x * (a.y - b.y))
        if abs(d) < 1e-12:
            return None
        ux = (
            a.norm_sq() * (b.y - c.y)
            + b.norm_sq() * (c.y - a.y)
            + c.norm_sq() * (a.y - b.y)
        ) / d
        uy = (
            a.norm_sq() * (c.x - b.x)
            + b.norm_sq() * (a.x - c.x)
            + c.norm_sq() * (b.x - a.x)
        ) / d
        center = Vec2(ux, uy)
        return center, center.distance_to(a)

    def in_circle(p: Vec2, circle: tuple[Vec2, float]) -> bool:
        center, radius = circle
        return p.distance_to(center) <= radius + 1e-7

    # Incremental construction (Welzl without randomisation).
    circle = (pts[0], 0.0)
    for i, p in enumerate(pts):
        if in_circle(p, circle):
            continue
        circle = (p, 0.0)
        for j in range(i):
            q = pts[j]
            if in_circle(q, circle):
                continue
            circle = circle_from_two(p, q)
            for k in range(j):
                r = pts[k]
                if in_circle(r, circle):
                    continue
                candidate = circle_from_three(p, q, r)
                if candidate is not None:
                    circle = candidate
    return circle


def compute_cell(
    site: Vec2, others: Sequence[Vec2], bounding: Polygon
) -> VoronoiCell:
    """Voronoi cell of ``site`` against ``others``, clipped to ``bounding``."""
    vertices: List[Vec2] = list(bounding.counter_clockwise().vertices)
    for other in others:
        if other.almost_equals(site):
            continue
        vertices = clip_polygon(vertices, bisector_halfplane(site, other))
        if len(vertices) < 3:
            return VoronoiCell(site, None)
    if len(vertices) < 3:
        return VoronoiCell(site, None)
    return VoronoiCell(site, Polygon(vertices))


class VoronoiDiagram:
    """The bounded Voronoi diagram of a set of sites within a field."""

    def __init__(self, sites: Sequence[Vec2], field: Field):
        self._sites = list(sites)
        self._field = field
        self._bounding = field.boundary_polygon()
        self._cells: Dict[int, VoronoiCell] = {}

    @property
    def sites(self) -> List[Vec2]:
        """The site positions, in input order."""
        return list(self._sites)

    def cell(self, index: int) -> VoronoiCell:
        """The (cached) cell of the ``index``-th site against *all* others."""
        if index not in self._cells:
            site = self._sites[index]
            others = [p for i, p in enumerate(self._sites) if i != index]
            self._cells[index] = compute_cell(site, others, self._bounding)
        return self._cells[index]

    def cells(self) -> List[VoronoiCell]:
        """All cells, computed lazily."""
        return [self.cell(i) for i in range(len(self._sites))]

    def total_cell_area(self) -> float:
        """Sum of cell areas; equals the field area up to clipping error."""
        return sum(c.polygon.area() for c in self.cells() if c.polygon is not None)
