"""Voronoi-diagram substrate: full and communication-limited cells."""

from .diagram import VoronoiCell, VoronoiDiagram, compute_cell, minimum_enclosing_circle
from .local import LocalVoronoiResult, diagram_is_correct, local_cell, local_cells

__all__ = [
    "VoronoiCell",
    "VoronoiDiagram",
    "compute_cell",
    "minimum_enclosing_circle",
    "LocalVoronoiResult",
    "diagram_is_correct",
    "local_cell",
    "local_cells",
]
