"""Incremental coverage tracking over the shared coverage grid.

Maintains the per-cell *multiplicity* (number of sensing disks containing
each grid sample point) and a running count of covered free cells.  Moving
one sensor only touches the grid cells inside the bounding boxes of its
old and new sensing disks, so re-measuring coverage after a period in
which ``k`` sensors moved costs ``O(k * disk_area / resolution^2)``
instead of a full-grid scan per sensor.

The per-cell predicate is the same float64 ``dx*dx + dy*dy <= r*r`` the
brute-force :meth:`repro.geometry.grid.CoverageGrid.coverage_mask` uses on
identical coordinate arrays, so the covered-cell count — and the returned
fraction — is bit-identical to the brute-force path.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..field import Field

__all__ = ["IncrementalCoverage"]


class IncrementalCoverage:
    """Tracks the coverage fraction of one (field, radius, resolution)."""

    def __init__(self, field: Field, sensing_range: float, resolution: float):
        self._radius = float(sensing_range)
        grid, obstacle_mask = field.grid_and_obstacle_mask(resolution)
        self._grid = grid
        nx, ny = grid.shape
        self._free = (~obstacle_mask).reshape(nx, ny)
        self._free_total = int(self._free.sum())
        self._multiplicity = np.zeros((nx, ny), dtype=np.int32)
        self._covered_free = 0
        self._positions: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update(self, positions) -> None:
        """Bring the tracker in sync with the given ``(n, 2)`` positions.

        Diffs against the previously applied positions and re-rasterises
        only the disks of sensors that actually moved.  A change in sensor
        count triggers a full rebuild.
        """
        pts = np.asarray(positions, dtype=float)
        if pts.size == 0:
            pts = pts.reshape(0, 2)
        old = self._positions
        if old is None or len(old) != len(pts):
            self._multiplicity[:] = 0
            self._covered_free = 0
            for k in range(len(pts)):
                self._apply_disk(pts[k, 0], pts[k, 1], +1)
        else:
            moved = np.flatnonzero((old[:, 0] != pts[:, 0]) | (old[:, 1] != pts[:, 1]))
            for k in moved:
                self._apply_disk(old[k, 0], old[k, 1], -1)
                self._apply_disk(pts[k, 0], pts[k, 1], +1)
        self._positions = pts.copy()

    def _apply_disk(self, x: float, y: float, delta: int) -> None:
        """Add (+1) or remove (-1) one sensing disk from the multiplicity."""
        if self._radius <= 0:
            return
        disk = self._grid.disk_block(x, y, self._radius)
        if disk is None:
            return
        si, sj, hit = disk
        block = self._multiplicity[si, sj]
        free = self._free[si, sj]
        if delta > 0:
            newly = hit & (block == 0)
            block += hit
            self._covered_free += int(np.count_nonzero(newly & free))
        else:
            block -= hit
            cleared = hit & (block == 0)
            self._covered_free -= int(np.count_nonzero(cleared & free))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def covered_fraction(self) -> float:
        """Fraction of free grid cells covered by at least one disk."""
        if self._free_total == 0:
            return 0.0
        return self._covered_free / self._free_total

    def multiplicity_grid(self) -> np.ndarray:
        """A copy of the per-cell multiplicity grid (``shape == grid.shape``)."""
        return self._multiplicity.copy()
