"""Epoch-based neighbor cache shared by a World's per-period queries.

One simulation period issues the same neighborhood computation several
times: the scheme asks for the neighbor table, the bootstrap flood asks
for the base station's component, the engine asks whether the network is
connected.  The cache builds one :class:`~repro.spatial.SpatialIndex` per
*epoch* — the tuple of per-sensor ``MotionModel.position_version``
counters — and derives all three answers from it; the epoch changes
exactly when some sensor's position is assigned, so an unchanged layout
never recomputes anything.

Cached structures are handed out as copies: the pre-cache ``World`` API
returned freshly built dicts/lists/sets that callers were free to mutate,
and several schemes do mutate neighbor lists in place.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set

from .index import SpatialIndex, pack_positions

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..sim.world import World

__all__ = ["NeighborCache"]

#: Base-station candidate queries inflate the radius before the exact
#: ``link_exists`` re-check so borderline float rounding between the
#: squared and sqrt formulations can never drop a candidate.
_QUERY_SLACK = 1e-9


class NeighborCache:
    """Per-world cache of neighbor structures, invalidated by movement."""

    def __init__(self, world: "World"):
        self._world = world
        self._epoch: Optional[tuple] = None
        self._reset()

    def _reset(self) -> None:
        self._index: Optional[SpatialIndex] = None
        self._table: Optional[Dict[int, List[int]]] = None
        self._base_neighbors: Optional[List[int]] = None
        self._component: Optional[Set[int]] = None

    # ------------------------------------------------------------------
    # Epoch handling
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        world = self._world
        # Position versions carry the per-period invalidation; the radio
        # parameters (per-sensor ranges, line-of-sight flag) are included so
        # a mid-run mutation cannot serve a stale table.
        epoch = (
            world.radio.line_of_sight,
            world.config.communication_range,
            tuple(
                (s.motion.position_version, s.communication_range)
                for s in world.sensors
            ),
        )
        if epoch != self._epoch:
            self._epoch = epoch
            self._reset()

    def invalidate(self) -> None:
        """Drop all cached structures (next query recomputes)."""
        self._epoch = None
        self._reset()

    # ------------------------------------------------------------------
    # Shared index
    # ------------------------------------------------------------------
    def _spatial_index(self) -> Optional[SpatialIndex]:
        """The shared index for the current epoch (``None`` when unusable)."""
        world = self._world
        if not world.radio.use_spatial_index or len(world.sensors) < 2:
            return None
        if self._index is None:
            max_range = max(s.communication_range for s in world.sensors)
            max_range = max(max_range, world.config.communication_range, 1e-9)
            self._index = SpatialIndex(max_range * 1.001).build(
                pack_positions(world.sensors)
            )
        return self._index

    # ------------------------------------------------------------------
    # Cached queries
    # ------------------------------------------------------------------
    def neighbor_table(self) -> Dict[int, List[int]]:
        """Copy of the cached neighbor table (ids -> ids in range)."""
        self._validate()
        table = self._raw_table()
        return {sid: list(neighbors) for sid, neighbors in table.items()}

    def _raw_table(self) -> Dict[int, List[int]]:
        if self._table is None:
            world = self._world
            index = self._spatial_index()
            if index is not None:
                self._table = world.radio.neighbor_table_indexed(
                    world.sensors, index
                )
            else:
                self._table = world.radio.neighbor_table(world.sensors)
        return self._table

    def base_station_neighbors(self) -> List[int]:
        """Copy of the cached one-hop neighborhood of the base station."""
        self._validate()
        return list(self._raw_base_neighbors())

    def _raw_base_neighbors(self) -> List[int]:
        if self._base_neighbors is None:
            world = self._world
            base = world.base_station
            rc = world.config.communication_range
            index = self._spatial_index()
            if index is None:
                self._base_neighbors = world.radio.neighbors_of_point(
                    base, world.sensors, rc
                )
            else:
                candidates = index.query_radius(base, rc + 2.0 * _QUERY_SLACK)
                self._base_neighbors = [
                    world.sensors[i].sensor_id
                    for i in candidates.tolist()
                    if world.radio.link_exists(base, world.sensors[i].position, rc)
                ]
        return self._base_neighbors

    def connected_component(self) -> Set[int]:
        """Copy of the cached set of ids reachable from the base station."""
        self._validate()
        if self._component is None:
            world = self._world
            self._component = world.radio.connected_component_of(
                world.sensors,
                world.base_station,
                world.config.communication_range,
                table=self._raw_table(),
                base_neighbors=self._raw_base_neighbors(),
            )
        return set(self._component)
