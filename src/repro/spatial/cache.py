"""Epoch-based neighbor cache shared by a World's per-period queries.

One simulation period issues the same neighborhood computation several
times: the scheme asks for the neighbor table, the bootstrap flood asks
for the base station's component, the engine asks whether the network is
connected.  The cache builds one :class:`~repro.spatial.SpatialIndex` per
*epoch* — the tuple of per-sensor ``MotionModel.position_version``
counters — and derives all three answers from it; the epoch changes
exactly when some sensor's position is assigned, so an unchanged layout
never recomputes anything.

Cached structures are handed out as copies: the pre-cache ``World`` API
returned freshly built dicts/lists/sets that callers were free to mutate,
and several schemes do mutate neighbor lists in place.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .index import SpatialIndex, pack_positions
from .pairstore import PairStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..sim.world import World

__all__ = ["NeighborCache"]

#: Base-station candidate queries inflate the radius before the exact
#: ``link_exists`` re-check so borderline float rounding between the
#: squared and sqrt formulations can never drop a candidate.
_QUERY_SLACK = 1e-9

#: Link tolerance mirrored from :mod:`repro.network.radio` (not imported —
#: radio itself imports this package); the pair queries below must accept
#: exactly the pairs the neighbour table accepts.
_LINK_EPS = 1e-9

#: The incremental pair store is generated at ``limit * (1 + fraction)``:
#: the inflation is the drift slack — sensors may drift up to half of
#: ``fraction * limit`` from their anchored positions before the store
#: needs repairing, so at a 60-80 m range a store survives many periods
#: of ``max_step``-bounded CPVF movement between repairs.
_STORE_SLACK_FRACTION = 0.2

#: When more than ``max(32, n // _STORE_REBUILD_DIVISOR)`` sensors exceed
#: their drift budget at once (mass teleport, scenario reset), a fresh
#: bulk build is cheaper than per-mover probing.
_STORE_REBUILD_DIVISOR = 8

#: Bound on memoised per-``extra_radius`` pair sets per epoch; call sites
#: use a handful of radii, so this only guards against an unbounded
#: sweep of distinct float radii accumulating stale entries.
_PAIRS_MEMO_LIMIT = 8


def pairs_from_table(sensors, table) -> tuple:
    """Pack a neighbour-table dict into ``(rows, cols, d2)`` arrays.

    The shared fallback conversion for consumers that need the flat pair
    view when the indexed path is unavailable (line-of-sight radio,
    cache disabled): positional indices in table order, plus the exact
    squared distances.
    """
    pos_of = {s.sensor_id: k for k, s in enumerate(sensors)}
    rows_list: List[int] = []
    cols_list: List[int] = []
    for s in sensors:
        r = pos_of[s.sensor_id]
        for nb in table.get(s.sensor_id, ()):
            rows_list.append(r)
            cols_list.append(pos_of[nb])
    rows = np.asarray(rows_list, dtype=np.intp)
    cols = np.asarray(cols_list, dtype=np.intp)
    xs = np.fromiter((s.position.x for s in sensors), float, len(sensors))
    ys = np.fromiter((s.position.y for s in sensors), float, len(sensors))
    dx = xs[rows] - xs[cols]
    dy = ys[rows] - ys[cols]
    return rows, cols, dx * dx + dy * dy


class NeighborCache:
    """Per-world cache of neighbor structures, invalidated by movement."""

    def __init__(self, world: "World"):
        self._world = world
        self._epoch: Optional[tuple] = None
        # The incremental pair store survives epoch changes (position
        # drift is exactly what it absorbs); only population churn or an
        # explicit invalidate() drops it.
        self._pair_store: Optional[PairStore] = None
        #: Cumulative pair-maintenance events plus the kind of the most
        #: recent ``neighbor_pairs`` answer ("memo" / "derived" /
        #: "serve" / "repair" / "rebuild" / "bypass").
        self.pair_events: Dict[str, object] = {
            "serves": 0,
            "repairs": 0,
            "rebuilds": 0,
            "bypasses": 0,
            "last": None,
        }
        self._reset()

    def _reset(self) -> None:
        self._index: Optional[SpatialIndex] = None
        self._table: Optional[Dict[int, List[int]]] = None
        self._base_neighbors: Optional[List[int]] = None
        self._component: Optional[Set[int]] = None
        self._pairs: Dict[float, tuple] = {}
        self._pair_index: Optional[SpatialIndex] = None
        self._pair_index_radius: Optional[float] = None
        self._alive: Optional[list] = None

    def _alive_sensors(self) -> list:
        """Live sensors for the current epoch (``world.sensors`` itself
        while the population is intact, so static runs are untouched)."""
        if self._alive is None:
            self._alive = self._world.alive_sensors()
        return self._alive

    # ------------------------------------------------------------------
    # Epoch handling
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        world = self._world
        # Position versions carry the per-period invalidation; the radio
        # parameters (per-sensor ranges, line-of-sight flag) are included so
        # a mid-run mutation cannot serve a stale table.
        # population_version covers churn (a failure flips aliveness
        # without touching any position_version; an injection changes the
        # tuple length too, but only the version captures removal).
        epoch = (
            world.radio.line_of_sight,
            world.config.communication_range,
            world.population_version,
            world.field.version,
            tuple(
                (s.motion.position_version, s.communication_range)
                for s in world.sensors
            ),
        )
        if epoch != self._epoch:
            self._epoch = epoch
            self._reset()

    def invalidate(self) -> None:
        """Drop all cached structures (next query recomputes).

        Also drops the incremental pair store: ``invalidate`` is the
        churn path (``World.add_sensor``/``remove_sensor`` call it), and
        a population change invalidates the store's anchors wholesale —
        the next pair request rebuilds from scratch over the survivors.
        """
        self._epoch = None
        self._pair_store = None
        self._reset()

    # ------------------------------------------------------------------
    # Shared index
    # ------------------------------------------------------------------
    def _spatial_index(self) -> Optional[SpatialIndex]:
        """The shared index for the current epoch (``None`` when unusable)."""
        world = self._world
        sensors = self._alive_sensors()
        if not world.radio.use_spatial_index or len(sensors) < 2:
            return None
        if self._index is None:
            max_range = max(s.communication_range for s in sensors)
            max_range = max(max_range, world.config.communication_range, 1e-9)
            self._index = SpatialIndex(max_range * 1.001).build(
                pack_positions(sensors)
            )
        return self._index

    def _pairs_index(self, radius: float) -> Optional[SpatialIndex]:
        """A dedicated index for whole-population pair queries.

        Pair generation visits every point's neighbourhood, so (unlike
        the point queries the shared index serves) it is worth building a
        second index with half-radius cells: the candidate ring hugs the
        query disk tighter and the distance filter discards far fewer
        pairs.  The packed position store is reused from the shared
        index.  Cell size is a bucketing choice only — the accepted pair
        set is identical whatever the cells.
        """
        shared = self._spatial_index()
        if shared is None:
            return None
        if self._pair_index is None or self._pair_index_radius != radius:
            self._pair_index = SpatialIndex(max(radius, 1e-9) * 1.001 / 2.0).build(
                shared.points
            )
            self._pair_index_radius = radius
        return self._pair_index

    # ------------------------------------------------------------------
    # Cached queries
    # ------------------------------------------------------------------
    def neighbor_table(self) -> Dict[int, List[int]]:
        """Copy of the cached neighbor table (ids -> ids in range)."""
        self._validate()
        table = self._raw_table()
        return {sid: list(neighbors) for sid, neighbors in table.items()}

    def _raw_table(self) -> Dict[int, List[int]]:
        if self._table is None:
            world = self._world
            sensors = self._alive_sensors()
            index = self._spatial_index()
            if index is not None:
                self._table = world.radio.neighbor_table_indexed(
                    sensors, index
                )
            else:
                self._table = world.radio.neighbor_table(sensors)
        return self._table

    def neighbor_pairs(
        self, extra_radius: float = 0.0, with_d2: bool = False
    ):
        """Directed neighbour pairs as packed index arrays.

        Returns ``(rows, cols)`` (or ``(rows, cols, d2)`` with
        ``with_d2``): ``cols[k]`` is within communication range — plus
        ``extra_radius`` — of ``rows[k]``; both are *positions* into
        ``world.sensors`` (identical to sensor ids for worlds built by
        :meth:`World.create`), sorted lexicographically by ``(row, col)``.
        With ``extra_radius=0`` the accepted pair set is exactly the one
        :meth:`neighbor_table` lists — same index, radius and tolerance —
        packed flat for array consumers (the batched CPVF kernel) instead
        of materialising per-sensor Python lists.  A positive
        ``extra_radius`` inflates the acceptance per sensor to
        ``rc_i + extra``; the batched repair pass uses it to enumerate
        parent-change candidates that may have drifted into range since
        the period started.  An exact-radius request is served by masking
        an already-cached inflated set (``d2`` is the per-pair squared
        distance, so the subsets nest exactly).
        """
        self._validate()
        cached = self._pairs.get(extra_radius)
        if cached is not None:
            self._record_pair_event("memo")
        else:
            # A smaller-radius request nests exactly inside a cached
            # inflated set (homogeneous-range index path only, where the
            # acceptance limit is one scalar).
            larger = [
                e
                for e, entry in self._pairs.items()
                if e > extra_radius and entry[3] is not None
            ]
            if larger:
                rows, cols, d2, limit = self._pairs[min(larger)]
                new_limit = limit - min(larger) + extra_radius
                keep = d2 <= new_limit * new_limit
                cached = (rows[keep], cols[keep], d2[keep], new_limit)
                self._record_pair_event("derived")
            else:
                cached = self._store_pairs(extra_radius)
                if cached is None:
                    cached = self._build_pairs(extra_radius)
                    self._record_pair_event("bypass")
            self._pairs[extra_radius] = cached
            while len(self._pairs) > _PAIRS_MEMO_LIMIT:
                # FIFO eviction (dicts preserve insertion order); an
                # evicted radius is simply recomputed on its next use.
                self._pairs.pop(next(iter(self._pairs)))
        rows, cols, d2, _ = cached
        if with_d2:
            return rows, cols, d2
        return rows, cols

    def _record_pair_event(self, kind: str) -> None:
        counter = {
            "serve": "serves",
            "repair": "repairs",
            "rebuild": "rebuilds",
            "bypass": "bypasses",
        }.get(kind)
        if counter is not None:
            self.pair_events[counter] += 1
        self.pair_events["last"] = kind

    def _homogeneous_limit(self, extra_radius: float) -> Optional[float]:
        """The scalar acceptance limit, or ``None`` when ineligible.

        The incremental store (like the nesting reuse) only applies when
        acceptance is one scalar radius over the full population: indexed
        radio, no line-of-sight blocking, no dead sensors (positional
        indices must equal sensor ids for the store's anchors to stay
        meaningful across epochs), homogeneous communication ranges.
        """
        world = self._world
        sensors = self._alive_sensors()
        if (
            not world.radio.use_spatial_index
            or world.radio.line_of_sight
            or len(sensors) < 2
            or len(sensors) != len(world.sensors)
        ):
            return None
        rc_list = [s.communication_range for s in sensors]
        if min(rc_list) != max(rc_list):
            return None
        return max(rc_list) + _LINK_EPS + extra_radius

    @staticmethod
    def _mover_cap(n: int) -> int:
        return max(32, n // _STORE_REBUILD_DIVISOR)

    def _store_pairs(self, extra_radius: float) -> Optional[tuple]:
        """Serve a pair request from the incremental store.

        Returns the usual ``(rows, cols, d2, limit)`` memo entry, or
        ``None`` when the request is ineligible (the caller falls back
        to :meth:`_build_pairs`).  Maintains the store: builds it on
        first use or after churn, repairs it when a few sensors have
        out-drifted their slack budget, rebuilds it on mass movement.
        The answer is exact either way — bit-identical to a fresh
        ``neighbor_pairs_directed`` build (pinned by
        ``tests/spatial/test_pair_store.py``).
        """
        limit = self._homogeneous_limit(extra_radius)
        if limit is None:
            return None
        index = self._spatial_index()
        x, y = index.xs, index.ys
        store = self._pair_store
        movers = None if store is None else store.movers(x, y, limit)
        if movers is None or len(movers) > self._mover_cap(len(x)):
            store = PairStore.build(
                x, y, limit * (1.0 + _STORE_SLACK_FRACTION)
            )
            self._pair_store = store
            self._record_pair_event("rebuild")
        elif len(movers):
            store.repair(x, y, movers)
            self._record_pair_event("repair")
        else:
            self._record_pair_event("serve")
        rows, cols, d2 = store.serve(x, y, limit)
        return rows, cols, d2, limit

    def pairs_maintenance_hint(self, extra_radius: float = 0.0) -> str:
        """Predict how the next ``neighbor_pairs`` call will be served.

        ``"incremental"`` when the answer will come from cached state
        (memo hit, nesting derivation, store serve or store repair);
        ``"rebuild"`` when a from-scratch pair generation is coming
        (no store yet, churn, mass movement, or an ineligible world).
        Side-effect free — the kernel calls it to pick the telemetry
        span name before issuing the real request.
        """
        self._validate()
        if extra_radius in self._pairs:
            return "incremental"
        if any(
            e > extra_radius and entry[3] is not None
            for e, entry in self._pairs.items()
        ):
            return "incremental"
        limit = self._homogeneous_limit(extra_radius)
        if limit is None or self._pair_store is None:
            return "rebuild"
        index = self._spatial_index()
        movers = self._pair_store.movers(index.xs, index.ys, limit)
        if movers is None or len(movers) > self._mover_cap(index.size):
            return "rebuild"
        return "incremental"

    def _build_pairs(self, extra_radius: float) -> tuple:
        """Generate one pair set at ``rc + extra_radius`` acceptance."""
        world = self._world
        sensors = self._alive_sensors()
        index = self._spatial_index()
        if index is not None and not world.radio.line_of_sight:
            rc_list = [s.communication_range for s in sensors]
            max_range = max(rc_list) + _LINK_EPS + extra_radius
            pair_index = self._pairs_index(max_range)
            rows, cols, d2 = pair_index.neighbor_pairs_directed(max_range)
            if rc_list and min(rc_list) != max(rc_list):
                rcs = (
                    np.fromiter(rc_list, dtype=float, count=len(rc_list))
                    + _LINK_EPS
                    + extra_radius
                )
                keep = d2 <= rcs[rows] * rcs[rows]
                rows, cols, d2 = rows[keep], cols[keep], d2[keep]
                # Heterogeneous acceptance: subsets do not nest through
                # one scalar limit.
                return (*self._remap_pairs(sensors, rows, cols), d2, None)
            rows, cols = self._remap_pairs(sensors, rows, cols)
            return rows, cols, d2, max_range
        # Line-of-sight (or index disabled): derive the pairs from the
        # authoritative table so blocking semantics carry over.  The
        # inflation is ignored here — candidates beyond the table's reach
        # are a perf superset, never a correctness requirement.
        rows, cols, d2 = pairs_from_table(sensors, self._raw_table())
        rows, cols = self._remap_pairs(sensors, rows, cols)
        return rows, cols, d2, None

    def _remap_pairs(self, sensors, rows, cols) -> tuple:
        """Map alive-subset positions back to full-list indices (= ids).

        Identity while the population is intact — ``sensors`` is then the
        whole list, so positional indices already equal sensor ids.
        """
        if len(sensors) == len(self._world.sensors):
            return rows, cols
        ids = np.fromiter(
            (s.sensor_id for s in sensors), dtype=np.intp, count=len(sensors)
        )
        return ids[rows], ids[cols]

    def neighbor_rows(
        self, sensor_ids: Sequence[int]
    ) -> Dict[int, List[int]]:
        """Neighbour lists for a subset of sensors only.

        Produces, for each requested id, the same list
        :meth:`neighbor_table` would contain for it, but touching only the
        requested rows — the batched CPVF path uses it to serve its few
        still-disconnected walkers without materialising the full table.
        """
        self._validate()
        if self._table is not None:
            return {sid: list(self._table.get(sid, ())) for sid in sensor_ids}
        world = self._world
        index = self._spatial_index()
        if index is None or world.radio.line_of_sight:
            table = self._raw_table()
            return {sid: list(table.get(sid, ())) for sid in sensor_ids}
        # The shared index is built over the *alive* subset; candidate
        # indices are positions into that subset, not sensor ids.
        alive = self._alive_sensors()
        out: Dict[int, List[int]] = {}
        for sid in sensor_ids:
            sensor = world.sensors[sid]
            if not sensor.is_alive():
                out[sid] = []
                continue
            rc = sensor.communication_range
            pos = sensor.position
            candidates = index.query_radius(
                pos, rc + _LINK_EPS + _QUERY_SLACK
            )
            # Accept by *squared* distance, exactly like the indexed
            # table build — the sqrt-based link predicate can disagree
            # by one ulp at the range boundary.
            limit_sq = (rc + _LINK_EPS) ** 2
            row: List[int] = []
            for i in candidates.tolist():
                other = alive[i]
                if other.sensor_id == sid:
                    continue
                dx = pos.x - other.position.x
                dy = pos.y - other.position.y
                if dx * dx + dy * dy <= limit_sq:
                    row.append(other.sensor_id)
            out[sid] = row
        return out

    def base_station_neighbors(self) -> List[int]:
        """Copy of the cached one-hop neighborhood of the base station."""
        self._validate()
        return list(self._raw_base_neighbors())

    def _raw_base_neighbors(self) -> List[int]:
        if self._base_neighbors is None:
            world = self._world
            base = world.base_station
            rc = world.config.communication_range
            sensors = self._alive_sensors()
            index = self._spatial_index()
            if index is None:
                self._base_neighbors = world.radio.neighbors_of_point(
                    base, sensors, rc
                )
            else:
                candidates = index.query_radius(base, rc + 2.0 * _QUERY_SLACK)
                self._base_neighbors = [
                    sensors[i].sensor_id
                    for i in candidates.tolist()
                    if world.radio.link_exists(base, sensors[i].position, rc)
                ]
        return self._base_neighbors

    def connected_component(self) -> Set[int]:
        """Copy of the cached set of ids reachable from the base station."""
        self._validate()
        if self._component is None:
            world = self._world
            self._component = world.radio.connected_component_of(
                self._alive_sensors(),
                world.base_station,
                world.config.communication_range,
                table=self._raw_table(),
                base_neighbors=self._raw_base_neighbors(),
            )
        return set(self._component)
