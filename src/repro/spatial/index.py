"""Uniform-grid spatial hash over a packed numpy position store.

See the package docstring for the design.  The index is rebuilt with
:meth:`SpatialIndex.build` whenever positions change; building is a single
``argsort`` over integer cell keys, so it is cheap relative to even one
dense distance-matrix computation.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

__all__ = ["SpatialIndex", "pack_positions"]

#: Relative inflation applied to the geometric candidate ring so that cell
#: membership never excludes a pair the exact squared-distance predicate
#: would accept (floor() bucketing at an exact cell boundary).
_GEOM_SLACK = 1e-9


def pack_positions(sensors) -> np.ndarray:
    """Pack objects carrying a ``.position`` ``Vec2`` into an ``(n, 2)`` array.

    The shared packing used by every consumer that builds an index over
    sensors (radio fast path, neighbor cache), so layout/dtype can never
    diverge between them.
    """
    n = len(sensors)
    return np.fromiter(
        (c for s in sensors for c in (s.position.x, s.position.y)),
        dtype=float,
        count=2 * n,
    ).reshape(n, 2)


def _as_xy(point) -> Tuple[float, float]:
    """Accept a ``Vec2``-like object or a 2-sequence as a query point."""
    x = getattr(point, "x", None)
    if x is not None:
        return float(x), float(point.y)
    px, py = point
    return float(px), float(py)


class SpatialIndex:
    """Cell-hash index answering radius queries by squared distance.

    Parameters
    ----------
    cell_size:
        Side of the square hash cells.  Pick the dominant query radius
        (e.g. the communication range): queries with ``r <= cell_size``
        then touch only the 3x3 ring of cells around the query.  Larger
        radii still work — the ring is widened to ``ceil(r / cell_size)``.
    """

    def __init__(self, cell_size: float):
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.cell_size = float(cell_size)
        self._points = np.empty((0, 2), dtype=float)
        self._x = np.empty(0, dtype=float)
        self._y = np.empty(0, dtype=float)
        self._n = 0
        self._order = np.empty(0, dtype=np.intp)
        self._unique_keys = np.empty(0, dtype=np.int64)
        self._starts = np.empty(0, dtype=np.intp)
        self._ends = np.empty(0, dtype=np.intp)
        self._cell_x = np.empty(0, dtype=np.int64)
        self._cell_y = np.empty(0, dtype=np.int64)
        self._min_cell = (0, 0)
        self._nx = 0
        self._ny = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self, positions) -> "SpatialIndex":
        """(Re)build the index over an ``(n, 2)`` array of positions.

        Accepts any array-like; ``Vec2`` sequences should be packed by the
        caller (``np.array([(p.x, p.y) for p in pts])``) to avoid object
        arrays.  Returns ``self`` for chaining.
        """
        pts = np.asarray(positions, dtype=float)
        if pts.size == 0:
            pts = pts.reshape(0, 2)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ValueError("positions must have shape (n, 2)")
        self._points = pts
        # Flat per-axis copies: 1-D gathers are markedly faster than fancy
        # indexing into the 2-D store on the pair-generation hot path.
        self._x = np.ascontiguousarray(pts[:, 0]) if len(pts) else np.empty(0)
        self._y = np.ascontiguousarray(pts[:, 1]) if len(pts) else np.empty(0)
        self._n = n = len(pts)
        if n == 0:
            self._order = np.empty(0, dtype=np.intp)
            self._unique_keys = np.empty(0, dtype=np.int64)
            self._starts = np.empty(0, dtype=np.intp)
            self._ends = np.empty(0, dtype=np.intp)
            return self
        cells = np.floor(pts / self.cell_size).astype(np.int64)
        cmin = cells.min(axis=0)
        self._min_cell = (int(cmin[0]), int(cmin[1]))
        self._cell_x = cells[:, 0] - cmin[0]
        self._cell_y = cells[:, 1] - cmin[1]
        self._nx = int(self._cell_x.max()) + 1
        self._ny = int(self._cell_y.max()) + 1
        keys = self._cell_x * self._ny + self._cell_y
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        unique_keys, starts = np.unique(sorted_keys, return_index=True)
        self._order = order.astype(np.intp)
        self._unique_keys = unique_keys
        self._starts = starts.astype(np.intp)
        self._ends = np.append(starts[1:], n).astype(np.intp)
        return self

    @property
    def size(self) -> int:
        """Number of indexed points."""
        return self._n

    @property
    def points(self) -> np.ndarray:
        """The packed ``(n, 2)`` position store the index was built over."""
        return self._points

    @property
    def xs(self) -> np.ndarray:
        """Contiguous x coordinates in original point order."""
        return self._x

    @property
    def ys(self) -> np.ndarray:
        """Contiguous y coordinates in original point order."""
        return self._y

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _reach(self, r: float) -> int:
        """Number of cell rings a radius-``r`` query must inspect."""
        inflated = r * (1.0 + _GEOM_SLACK) + _GEOM_SLACK
        return max(1, int(math.ceil(inflated / self.cell_size)))

    def query_radius(self, point, r: float) -> np.ndarray:
        """Indices (ascending) of points with ``d2 <= r*r`` from ``point``.

        ``point`` may be a ``Vec2`` or any 2-sequence.  The result may
        include an indexed point lying exactly at ``point``.
        """
        if self._n == 0 or r < 0:
            return np.empty(0, dtype=np.intp)
        px, py = _as_xy(point)
        cs = self.cell_size
        reach_r = r * (1.0 + _GEOM_SLACK) + _GEOM_SLACK
        cx0 = max(int(math.floor((px - reach_r) / cs)) - self._min_cell[0], 0)
        cx1 = min(int(math.floor((px + reach_r) / cs)) - self._min_cell[0], self._nx - 1)
        cy0 = max(int(math.floor((py - reach_r) / cs)) - self._min_cell[1], 0)
        cy1 = min(int(math.floor((py + reach_r) / cs)) - self._min_cell[1], self._ny - 1)
        if cx0 > cx1 or cy0 > cy1:
            return np.empty(0, dtype=np.intp)
        chunks = []
        ukeys = self._unique_keys
        for tx in range(cx0, cx1 + 1):
            key_lo = tx * self._ny + cy0
            key_hi = tx * self._ny + cy1
            lo = int(np.searchsorted(ukeys, key_lo, side="left"))
            hi = int(np.searchsorted(ukeys, key_hi, side="right"))
            for pos in range(lo, hi):
                chunks.append(self._order[self._starts[pos]:self._ends[pos]])
        if not chunks:
            return np.empty(0, dtype=np.intp)
        cand = np.concatenate(chunks)
        dx = self._x[cand] - px
        dy = self._y[cand] - py
        hits = cand[dx * dx + dy * dy <= r * r]
        hits.sort()
        return hits

    def _candidate_pairs(self, reach: int) -> Tuple[np.ndarray, np.ndarray]:
        """Directed candidate pairs ``(rows, cols)`` from nearby cells.

        For every point, the candidates are all points bucketed within
        ``reach`` cells in each axis (including the point's own cell, and
        the point itself — callers filter identity and distance).  Fully
        vectorised, one gather per cell-*row* offset: within a cell row
        ``tx`` the keys ``tx * ny + (cy - reach .. cy + reach)`` are
        contiguous, and the bucketed points of consecutive cells are
        adjacent in the argsorted order, so the whole ``2 * reach + 1``
        cell window of a row is a single slice of ``_order``.
        """
        n = self._n
        ukeys = self._unique_keys
        nkeys = len(ukeys)
        width = 2 * reach + 1
        # One fused batch over all (2*reach + 1) cell-row offsets: stack the
        # per-offset target rows so searchsorted and the repeat/gather run
        # once over width * n queries instead of width times over n.
        arange_n = np.arange(n, dtype=np.intp)
        offsets = np.arange(-reach, reach + 1, dtype=np.int64)
        tx = (self._cell_x[None, :] + offsets[:, None]).ravel()
        valid = (tx >= 0) & (tx < self._nx)
        cy_lo = np.tile(np.maximum(self._cell_y - reach, 0), width)
        cy_hi = np.tile(np.minimum(self._cell_y + reach, self._ny - 1), width)
        key_lo = tx * self._ny + cy_lo
        key_hi = tx * self._ny + cy_hi
        lo = np.searchsorted(ukeys, key_lo, side="left")
        hi = np.searchsorted(ukeys, key_hi, side="right")
        occupied = valid & (hi > lo)
        slice_start = np.where(occupied, self._starts[np.minimum(lo, nkeys - 1)], 0)
        slice_end = np.where(occupied, self._ends[np.maximum(hi, 1) - 1], 0)
        lengths = slice_end - slice_start
        total = int(lengths.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.intp)
            return empty, empty
        rows = np.repeat(np.tile(arange_n, width), lengths)
        base = np.repeat(slice_start, lengths)
        # Offset of each candidate within its source slice.
        shift = np.arange(total, dtype=np.intp) - np.repeat(
            np.cumsum(lengths) - lengths, lengths
        )
        return rows, self._order[base + shift]

    def neighbor_pairs_directed(
        self, r: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All directed pairs ``(i, j)``, ``i != j``, with ``d2 <= r*r``.

        Returns ``(rows, cols, d2)`` sorted lexicographically by
        ``(row, col)`` — the same neighbour ordering a dense row scan
        produces.  ``d2`` is the exact float64 squared distance.
        """
        empty = (
            np.empty(0, dtype=np.intp),
            np.empty(0, dtype=np.intp),
            np.empty(0, dtype=float),
        )
        if self._n < 2 or r < 0:
            return empty
        rows, cols = self._candidate_pairs(self._reach(r))
        if rows.size == 0:
            return empty
        dx = self._x[rows] - self._x[cols]
        dy = self._y[rows] - self._y[cols]
        d2 = dx * dx + dy * dy
        keep = (rows != cols) & (d2 <= r * r)
        rows, cols, d2 = rows[keep], cols[keep], d2[keep]
        # Single-key stable sort beats np.lexsort here; row * n + col is
        # collision-free and fits int64 comfortably.
        order = np.argsort(rows * self._n + cols, kind="stable")
        return rows[order], cols[order], d2[order]

    def pairs_within(self, r: float) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Unordered pairs ``(i, j)``, ``i < j``, with ``d2 <= r*r``.

        Returns ``(i, j, d2)`` sorted lexicographically by ``(i, j)`` — the
        same order a brute-force ``for i: for j > i`` double loop visits
        accepting pairs, so union-find consumers reproduce brute-force
        results exactly.
        """
        rows, cols, d2 = self.neighbor_pairs_directed(r)
        keep = rows < cols
        return rows[keep], cols[keep], d2[keep]
