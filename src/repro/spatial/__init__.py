"""Spatial acceleration subsystem: cell-hash index, neighbor cache, coverage.

The paper's schemes are defined per-period over every sensor's
neighborhood, so the simulator's hot loop is dominated by three queries:
neighbor tables (``Radio.neighbor_table``), base-station adjacency, and
coverage.  The seed implementation recomputed each of them from scratch —
a dense ``O(n^2)`` distance matrix and a full-grid scan per sensing disk —
which caps practical runs at a few hundred sensors.  This package provides
the shared fast paths:

``SpatialIndex`` — a uniform grid hash over a packed ``(n, 2)`` numpy
position store.  The plane is partitioned into square cells of side
``cell_size`` (callers pick the dominant query radius, e.g. the
communication range); each point is bucketed by ``floor(p / cell_size)``
and the buckets are stored as slices of one argsorted index array, so
candidate generation for a radius-``r`` query touches only the
``ceil(r / cell_size)``-ring of cells around the query and is fully
vectorised (no per-point Python loop).  Candidates are then filtered by
*squared* distance — ``sqrt`` is never taken.  Cell membership is an
over-approximation only: the geometric candidate ring is slightly
inflated, and the exact float64 predicate ``d2 <= r*r`` decides
membership, so results are bit-identical to a brute-force squared-distance
scan.

``NeighborCache`` — an epoch-based per-:class:`~repro.sim.world.World`
cache of the neighbor table, base-station adjacency and the base station's
connected component.  The epoch is the tuple of per-sensor
``MotionModel.position_version`` counters, which are bumped on *every*
position assignment; the cache therefore invalidates exactly when a sensor
actually moves and three queries issued in the same period share one
spatial-index build instead of three dense matrix rebuilds.  Cached
structures are returned as copies so callers may mutate them freely, which
preserves the semantics of the pre-cache API.

``IncrementalCoverage`` — maintains the per-cell coverage *multiplicity*
grid (how many sensing disks contain each sample point) plus a running
count of covered free cells.  When a sensor moves, only the grid cells
inside the bounding boxes of its old and new sensing disks are updated
(decrement old disk, increment new disk, track 0<->1 transitions), making
``World.coverage()`` cheap enough to trace every period.  The predicate
per cell is the same float64 ``dx*dx + dy*dy <= r*r`` the brute-force
:meth:`~repro.geometry.grid.CoverageGrid.coverage_mask` uses, so the
covered-cell count — and hence the coverage fraction — matches the
brute-force path exactly, not just to within tolerance.

Invalidation contract: the ``NeighborCache`` epoch covers per-sensor
position versions and communication ranges plus the radio's
line-of-sight flag and the configured base-station range, so both
movement and mid-run radio-parameter mutations invalidate; the sensor
*population* is assumed fixed for the lifetime of a ``World``, which
holds for every scheme in this repository.  ``IncrementalCoverage``
diffs the packed position array itself and rebuilds from scratch when
the sensor count changes.  Brute-force implementations are kept alongside every fast
path (``Radio.neighbor_table_bruteforce``, ``Field.coverage_fraction``)
and are exercised against the fast paths by randomized parity tests under
``tests/spatial/``.
"""

from .index import SpatialIndex, pack_positions
from .cache import NeighborCache
from .coverage import IncrementalCoverage
from .pairstore import PairStore

__all__ = [
    "SpatialIndex",
    "NeighborCache",
    "IncrementalCoverage",
    "PairStore",
    "pack_positions",
]
