"""Incrementally maintained directed neighbour-pair store.

The batched CPVF kernel asks for every directed pair within
``rc + extra_radius`` once per period.  Rebuilding that set from scratch
costs O(candidate pairs) — ~10^7 pairs per period at clustered density
and n = 10^4 — even though positions drift by at most ``max_step`` per
period, so the pair set barely changes.  :class:`PairStore` makes the
per-period cost proportional to *change* instead:

* The store holds the exact directed pair set at an **inflated** radius
  (``store.limit``), generated against a frozen copy of the positions —
  the *anchors* ``(ax, ay)``.
* A request at ``limit_req`` is answered by recomputing the live squared
  distances of the stored pairs (one gather + multiply over O(stored
  pairs)) and masking to ``d2 <= limit_req**2``.  This is **exact** —
  bit-identical to a fresh :meth:`SpatialIndex.neighbor_pairs_directed`
  build — whenever every sensor's drift from its anchor satisfies
  ``delta_i <= (store.limit - limit_req) / 2``: a live pair at
  ``limit_req`` then has anchor distance at most
  ``limit_req + delta_i + delta_j <= store.limit`` by the triangle
  inequality, so it cannot be missing from the store.
* Sensors that exceed the drift budget are **repaired**: their anchors
  snap to the current positions, every stored pair touching them is
  dropped, and their neighbourhoods are re-probed against the updated
  anchors.  The repaired store is identical (same arrays) to a store
  freshly built over the updated anchors, because the probe applies the
  same squared-distance predicate to the same float values.

The drift check uses the *measured* per-sensor displacement, not a
``max_step`` assumption, so teleports (tests calling ``move_to``
directly, fault-injection joins) are handled by the same invariant.

``scipy.spatial.cKDTree`` is used for bulk generation when available
(it is a compiled radius query; CI runs numpy-only and exercises the
fallback); both paths produce byte-identical arrays because acceptance
is always our own ``dx*dx + dy*dy <= limit*limit`` predicate — the tree
query only proposes candidates, at an inflated radius that can never
exclude a pair the exact predicate accepts.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

try:  # pragma: no cover - exercised via the availability flag
    from scipy.spatial import cKDTree
except Exception:  # pragma: no cover - numpy-only environments (CI)
    cKDTree = None

from .index import SpatialIndex

__all__ = ["PairStore", "directed_pairs_sorted", "HAVE_KDTREE"]

#: Whether the compiled kd-tree path is available in this environment.
HAVE_KDTREE = cKDTree is not None

#: Relative + absolute inflation of candidate-proposal radii (kd-tree
#: query, probe ring) so float rounding at the boundary can never drop a
#: pair the exact squared-distance predicate accepts.
_QUERY_SLACK = 1e-9

#: Safety margin subtracted from the per-sensor drift budget; the slack
#: is O(metres), so this absorbs any ulp-level disagreement between the
#: measured drift and the triangle-inequality bound without ever
#: classifying a genuinely safe sensor as a mover.
_DRIFT_MARGIN = 1e-7

PairFallback = Callable[[np.ndarray, np.ndarray, float], Tuple]


def _fallback_pairs(x: np.ndarray, y: np.ndarray, limit: float) -> Tuple:
    """Index-based pair generation (numpy-only path)."""
    idx = SpatialIndex(max(limit, 1e-9) * 1.001 / 2.0).build(
        np.column_stack([x, y])
    )
    return idx.neighbor_pairs_directed(limit)


def directed_pairs_sorted(
    x: np.ndarray, y: np.ndarray, limit: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All directed pairs ``(i, j)``, ``i != j``, with ``d2 <= limit**2``.

    Identical output (values, dtype-compatible ordering) to
    ``SpatialIndex(...).build(...).neighbor_pairs_directed(limit)``:
    lexicographically sorted by ``(row, col)`` with the exact float64
    squared distances.  Uses the compiled kd-tree when available; the
    accepted set is decided by the same ``dx*dx + dy*dy`` predicate
    either way, so cell size / tree topology never shows in the result.
    """
    n = len(x)
    if n < 2 or limit < 0:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty.copy(), np.empty(0, dtype=float)
    if cKDTree is None:
        rows, cols, d2 = _fallback_pairs(x, y, limit)
        return (
            rows.astype(np.intp, copy=False),
            cols.astype(np.intp, copy=False),
            d2,
        )
    tree = cKDTree(np.column_stack([x, y]))
    und = tree.query_pairs(
        limit * (1.0 + _QUERY_SLACK) + _QUERY_SLACK, output_type="ndarray"
    )
    a = und[:, 0].astype(np.intp, copy=False)
    b = und[:, 1].astype(np.intp, copy=False)
    rows = np.concatenate([a, b])
    cols = np.concatenate([b, a])
    dx = x[rows] - x[cols]
    dy = y[rows] - y[cols]
    d2 = dx * dx + dy * dy
    keep = d2 <= limit * limit
    rows, cols, d2 = rows[keep], cols[keep], d2[keep]
    order = np.argsort(rows * n + cols, kind="stable")
    return rows[order], cols[order], d2[order]


class PairStore:
    """Exact directed pair set at an inflated radius, anchored in time.

    ``rows``/``cols`` hold every directed pair whose **anchor** squared
    distance is ``<= limit**2``, lexicographically sorted; ``counts`` is
    the per-row pair count (``rows`` is sorted, so
    ``np.repeat(x, counts)`` reproduces ``x[rows]`` exactly — the serve
    path uses this to skip one large gather).
    """

    __slots__ = ("limit", "ax", "ay", "rows", "cols", "counts")

    def __init__(self, ax, ay, limit, rows, cols):
        self.limit = float(limit)
        self.ax = ax
        self.ay = ay
        self.rows = rows
        self.cols = cols
        self.counts = np.bincount(rows, minlength=len(ax))

    @property
    def n(self) -> int:
        """Number of anchored sensors."""
        return len(self.ax)

    @property
    def size(self) -> int:
        """Number of stored directed pairs."""
        return len(self.rows)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, x: np.ndarray, y: np.ndarray, limit: float) -> "PairStore":
        """Generate a fresh store anchored at the current positions."""
        rows, cols, _ = directed_pairs_sorted(x, y, limit)
        return cls(x.copy(), y.copy(), limit, rows, cols)

    # ------------------------------------------------------------------
    # Validity
    # ------------------------------------------------------------------
    def drift(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Per-sensor displacement from the anchors (measured, exact)."""
        return np.hypot(x - self.ax, y - self.ay)

    def movers(self, x: np.ndarray, y: np.ndarray, limit_req: float):
        """Indices whose drift exceeds the budget for ``limit_req``.

        The budget is half the radius slack: a pair of sensors each
        within ``(limit - limit_req) / 2`` of their anchors cannot bring
        a live pair at ``limit_req`` outside the anchored ``limit``.
        Returns ``None`` when the store cannot serve ``limit_req`` at
        all (request beyond the inflated radius).
        """
        if limit_req > self.limit or len(x) != self.n:
            return None
        budget = 0.5 * (self.limit - limit_req) - _DRIFT_MARGIN
        return np.flatnonzero(self.drift(x, y) > budget)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve(
        self, x: np.ndarray, y: np.ndarray, limit_req: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The exact live pair set at ``limit_req``.

        Valid only while every sensor is within its drift budget (the
        caller checks :meth:`movers` first); under that invariant the
        result is bit-identical to a fresh
        ``neighbor_pairs_directed(limit_req)`` over the live positions —
        same pairs, same order, same float64 ``d2``.
        """
        xr = np.repeat(x, self.counts)
        yr = np.repeat(y, self.counts)
        dx = xr - x[self.cols]
        dy = yr - y[self.cols]
        d2 = dx * dx + dy * dy
        keep = d2 <= limit_req * limit_req
        return self.rows[keep], self.cols[keep], d2[keep]

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def repair(self, x: np.ndarray, y: np.ndarray, movers: np.ndarray) -> int:
        """Re-anchor ``movers`` and patch their pairs in place.

        Drops every stored pair touching a mover, snaps the movers'
        anchors to their current positions, probes each mover's
        neighbourhood at the store radius against the updated anchors,
        and merges the probed pairs back in sorted order.  After the
        call the store equals :meth:`build` over the updated anchors.
        Returns the number of pairs dropped + inserted (repair volume).
        """
        n = self.n
        self.ax[movers] = x[movers]
        self.ay[movers] = y[movers]
        mover_mask = np.zeros(n, dtype=bool)
        mover_mask[movers] = True
        keep = ~(mover_mask[self.rows] | mover_mask[self.cols])
        dropped = len(self.rows) - int(keep.sum())
        kept_rows = self.rows[keep]
        kept_cols = self.cols[keep]

        probe_rows, probe_cols = self._probe(movers)
        # Both directions of every probed pair, deduplicated through the
        # packed int64 key (a mover-mover pair is found from both ends).
        ins_a = np.concatenate([probe_rows, probe_cols])
        ins_b = np.concatenate([probe_cols, probe_rows])
        keys = np.unique(ins_a.astype(np.int64) * n + ins_b.astype(np.int64))
        ins_rows = (keys // n).astype(np.intp)
        ins_cols = (keys % n).astype(np.intp)

        kept_keys = kept_rows.astype(np.int64) * n + kept_cols.astype(np.int64)
        pos = np.searchsorted(kept_keys, keys)
        self.rows = np.insert(kept_rows, pos, ins_rows)
        self.cols = np.insert(kept_cols, pos, ins_cols)
        self.counts = np.bincount(self.rows, minlength=n)
        return dropped + len(keys)

    def _probe(self, movers: np.ndarray):
        """Directed pairs ``(mover, j)`` within the store radius.

        Candidates come from an inflated-radius neighbourhood query over
        the **anchor** positions (kd-tree when available, cell index
        otherwise); acceptance is the exact anchored squared-distance
        predicate, so the probe can never disagree with a full rebuild.
        """
        limit = self.limit
        reach = limit * (1.0 + _QUERY_SLACK) + _QUERY_SLACK
        if cKDTree is not None:
            tree = cKDTree(np.column_stack([self.ax, self.ay]))
            balls = tree.query_ball_point(
                np.column_stack([self.ax[movers], self.ay[movers]]), reach
            )
            lengths = np.fromiter(
                (len(b) for b in balls), dtype=np.intp, count=len(balls)
            )
            cand = np.fromiter(
                (j for ball in balls for j in ball),
                dtype=np.intp,
                count=int(lengths.sum()),
            )
            owner = np.repeat(movers, lengths)
        else:
            idx = SpatialIndex(max(limit, 1e-9) * 1.001).build(
                np.column_stack([self.ax, self.ay])
            )
            chunks = []
            owners = []
            for m in movers.tolist():
                hits = idx.query_radius((self.ax[m], self.ay[m]), reach)
                chunks.append(hits)
                owners.append(np.full(len(hits), m, dtype=np.intp))
            if chunks:
                cand = np.concatenate(chunks)
                owner = np.concatenate(owners)
            else:
                cand = np.empty(0, dtype=np.intp)
                owner = np.empty(0, dtype=np.intp)
        dx = self.ax[owner] - self.ax[cand]
        dy = self.ay[owner] - self.ay[cand]
        ok = (dx * dx + dy * dy <= limit * limit) & (owner != cand)
        return owner[ok], cand[ok]
