"""Half-plane clipping, used to construct Voronoi cells.

A Voronoi cell of a site ``s`` within a bounded field is the intersection of
the field rectangle with the half-planes ``{p : |p - s| <= |p - q|}`` for
every other site ``q``.  Clipping a convex polygon against such a half-plane
is the Sutherland–Hodgman step implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .polygon import Polygon
from .vec import EPS, Vec2

__all__ = ["HalfPlane", "clip_polygon", "bisector_halfplane"]


@dataclass(frozen=True)
class HalfPlane:
    """The set of points ``p`` with ``normal · p <= offset``."""

    normal: Vec2
    offset: float

    def contains(self, p: Vec2, eps: float = EPS) -> bool:
        """Whether ``p`` satisfies the half-plane inequality."""
        return self.normal.dot(p) <= self.offset + eps

    def signed_distance(self, p: Vec2) -> float:
        """Positive outside the half-plane, negative inside (scaled by |normal|)."""
        return self.normal.dot(p) - self.offset

    def line_intersection(self, a: Vec2, b: Vec2) -> Optional[Vec2]:
        """Intersection of the boundary line with segment ``[a, b]``."""
        da = self.signed_distance(a)
        db = self.signed_distance(b)
        denom = da - db
        if abs(denom) <= EPS:
            return None
        t = da / denom
        if t < -EPS or t > 1 + EPS:
            return None
        return a.lerp(b, min(1.0, max(0.0, t)))


def bisector_halfplane(site: Vec2, other: Vec2) -> HalfPlane:
    """Half-plane of points at least as close to ``site`` as to ``other``.

    ``|p - site|^2 <= |p - other|^2`` rearranges to a linear inequality
    ``2 (other - site) · p <= |other|^2 - |site|^2``.  The inequality is
    normalised so the normal is a unit vector: ``signed_distance`` is then
    the actual Euclidean distance to the bisector line, and epsilon
    tolerances in ``contains`` mean the same thing whatever the distance
    between the two sites.
    """
    normal = (other - site) * 2.0
    offset = other.norm_sq() - site.norm_sq()
    scale = normal.norm()
    if scale > EPS:
        normal = normal / scale
        offset = offset / scale
    return HalfPlane(normal, offset)


def clip_polygon(polygon: Sequence[Vec2], half_plane: HalfPlane) -> List[Vec2]:
    """Clip a convex polygon (list of vertices) against a half-plane.

    Implements one pass of Sutherland–Hodgman.  Returns the (possibly empty)
    clipped vertex list in the original winding order.
    """
    vertices = list(polygon)
    if not vertices:
        return []
    result: List[Vec2] = []
    n = len(vertices)
    for i in range(n):
        current = vertices[i]
        nxt = vertices[(i + 1) % n]
        current_inside = half_plane.contains(current)
        next_inside = half_plane.contains(nxt)
        if current_inside:
            result.append(current)
            if not next_inside:
                crossing = half_plane.line_intersection(current, nxt)
                if crossing is not None:
                    result.append(crossing)
        elif next_inside:
            crossing = half_plane.line_intersection(current, nxt)
            if crossing is not None:
                result.append(crossing)
    # Remove consecutive duplicates that clipping can introduce.
    deduped: List[Vec2] = []
    for p in result:
        if not deduped or not p.almost_equals(deduped[-1]):
            deduped.append(p)
    if len(deduped) >= 2 and deduped[0].almost_equals(deduped[-1]):
        deduped.pop()
    return deduped


def clip_polygon_to_cell(
    bounding: Polygon, site: Vec2, others: Sequence[Vec2]
) -> Optional[Polygon]:
    """Voronoi cell of ``site`` restricted to ``bounding``.

    ``others`` is the set of competing sites; pass only the sites within
    communication range to obtain the *local* (possibly incorrect) cell that
    a real sensor with limited range would compute.
    """
    vertices: List[Vec2] = list(bounding.counter_clockwise().vertices)
    for other in others:
        if other.almost_equals(site):
            continue
        vertices = clip_polygon(vertices, bisector_halfplane(site, other))
        if len(vertices) < 3:
            return None
    if len(vertices) < 3:
        return None
    return Polygon(vertices)
