"""Coverage grids.

The coverage metric in the paper is "the fraction of area covered by at
least one sensor".  We compute it on a regular grid of sample points laid
over the field, excluding points inside obstacles, exactly as a raster
approximation of the covered area.  The grid is also reused by the random
obstacle generator to verify free-space connectivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Sequence, Tuple

import numpy as np

from .vec import Vec2

__all__ = ["CoverageGrid"]


@dataclass
class CoverageGrid:
    """A regular grid of sample points over an axis-aligned rectangle.

    Parameters
    ----------
    xmin, ymin, xmax, ymax:
        Bounds of the sampled rectangle.
    resolution:
        Spacing between neighbouring sample points, in metres.  The paper's
        field is 1000 x 1000 m with sensing ranges of 30-60 m, so a 10 m
        resolution (the default used by the experiments) keeps the coverage
        estimate within about one percentage point of the exact value.
    """

    xmin: float
    ymin: float
    xmax: float
    ymax: float
    resolution: float

    def __post_init__(self) -> None:
        if self.xmax <= self.xmin or self.ymax <= self.ymin:
            raise ValueError("grid rectangle must have positive extent")
        if self.resolution <= 0:
            raise ValueError("grid resolution must be positive")
        xs = np.arange(self.xmin + self.resolution / 2, self.xmax, self.resolution)
        ys = np.arange(self.ymin + self.resolution / 2, self.ymax, self.resolution)
        self._xs = xs
        self._ys = ys
        # Meshgrid of sample point coordinates, flattened to 1-D arrays.
        gx, gy = np.meshgrid(xs, ys, indexing="ij")
        self._px = gx.ravel()
        self._py = gy.ravel()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        """Number of sample columns and rows ``(nx, ny)``."""
        return (len(self._xs), len(self._ys))

    @property
    def num_points(self) -> int:
        """Total number of sample points."""
        return len(self._px)

    def points(self) -> Iterator[Vec2]:
        """Iterate over all sample points as :class:`Vec2`."""
        for x, y in zip(self._px, self._py):
            yield Vec2(float(x), float(y))

    def point_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The flattened x and y coordinate arrays of all sample points."""
        return self._px, self._py

    # ------------------------------------------------------------------
    # Masks
    # ------------------------------------------------------------------
    def mask_from_predicate(self, predicate: Callable[[Vec2], bool]) -> np.ndarray:
        """Boolean mask of sample points for which ``predicate`` is true.

        Intended for low-frequency use (obstacle masks are computed once per
        field and cached by the caller); per-sensor coverage uses the
        vectorised :meth:`coverage_mask` instead.
        """
        return np.fromiter(
            (predicate(p) for p in self.points()), dtype=bool, count=self.num_points
        )

    def disk_block(
        self, cx: float, cy: float, radius: float
    ) -> "Tuple[slice, slice, np.ndarray] | None":
        """The grid sub-block a disk touches, with its in-disk mask.

        Returns ``(i_slice, j_slice, hit)`` where ``hit`` is the boolean
        mask ``dx*dx + dy*dy <= radius*radius`` over the sub-block of the
        ``'ij'``-shaped grid inside the disk's bounding box, or ``None``
        when the disk misses the grid entirely.  This is the single
        rasterisation predicate every coverage path shares — the
        incremental tracker's exact-parity contract depends on all
        consumers using the same float ops.
        """
        xs, ys = self._xs, self._ys
        i0 = int(np.searchsorted(xs, cx - radius, side="left"))
        i1 = int(np.searchsorted(xs, cx + radius, side="right"))
        j0 = int(np.searchsorted(ys, cy - radius, side="left"))
        j1 = int(np.searchsorted(ys, cy + radius, side="right"))
        if i0 >= i1 or j0 >= j1:
            return None
        dx = xs[i0:i1, None] - cx
        dy = ys[None, j0:j1] - cy
        hit = dx * dx + dy * dy <= radius * radius
        return slice(i0, i1), slice(j0, j1), hit

    def coverage_mask(
        self, centers: Sequence[Tuple[float, float]], radius: float
    ) -> np.ndarray:
        """Mask of sample points within ``radius`` of any of ``centers``.

        Each disk only touches the sub-block of grid points inside its
        bounding box, so the cost is proportional to the covered area
        rather than ``len(centers) * num_points``.
        """
        covered = np.zeros(self.shape, dtype=bool)
        if not centers or radius <= 0:
            return covered.ravel()
        for cx, cy in centers:
            block = self.disk_block(cx, cy, radius)
            if block is None:
                continue
            si, sj, hit = block
            covered[si, sj] |= hit
        return covered.ravel()

    def fraction(self, mask: np.ndarray, domain: np.ndarray | None = None) -> float:
        """Fraction of (domain) points set in ``mask``.

        ``domain`` restricts the denominator; in the experiments it is the
        set of points not inside an obstacle.
        """
        if domain is None:
            if self.num_points == 0:
                return 0.0
            return float(np.count_nonzero(mask)) / float(self.num_points)
        denom = int(np.count_nonzero(domain))
        if denom == 0:
            return 0.0
        return float(np.count_nonzero(mask & domain)) / float(denom)
