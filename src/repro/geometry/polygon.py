"""Simple-polygon primitives.

Polygons represent obstacles, the sensing field boundary and Voronoi cells.
Only simple (non self-intersecting) polygons are supported, which covers all
shapes used in the paper (rectangles, convex cells, irregular obstacles).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from .segment import Segment, on_segment, orientation
from .vec import EPS, Vec2

__all__ = ["Polygon"]


@dataclass(frozen=True)
class Polygon:
    """A simple polygon given by its vertices in order (either winding)."""

    vertices: Tuple[Vec2, ...]

    def __init__(self, vertices: Sequence[Vec2]):
        if len(vertices) < 3:
            raise ValueError("a polygon needs at least three vertices")
        object.__setattr__(self, "vertices", tuple(vertices))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def rectangle(xmin: float, ymin: float, xmax: float, ymax: float) -> "Polygon":
        """Axis-aligned rectangle with counter-clockwise winding."""
        if xmax <= xmin or ymax <= ymin:
            raise ValueError("rectangle must have positive width and height")
        return Polygon(
            [Vec2(xmin, ymin), Vec2(xmax, ymin), Vec2(xmax, ymax), Vec2(xmin, ymax)]
        )

    @staticmethod
    def regular(center: Vec2, radius: float, sides: int) -> "Polygon":
        """Regular polygon with ``sides`` vertices inscribed in a circle."""
        if sides < 3:
            raise ValueError("a regular polygon needs at least three sides")
        return Polygon(
            [
                center + Vec2.from_polar(radius, 2.0 * math.pi * i / sides)
                for i in range(sides)
            ]
        )

    # ------------------------------------------------------------------
    # Basic measures
    # ------------------------------------------------------------------
    def signed_area(self) -> float:
        """Signed area (positive for counter-clockwise winding)."""
        total = 0.0
        n = len(self.vertices)
        for i in range(n):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % n]
            total += a.cross(b)
        return total / 2.0

    def area(self) -> float:
        """Absolute area."""
        return abs(self.signed_area())

    def perimeter(self) -> float:
        """Total boundary length."""
        return sum(edge.length() for edge in self.edges())

    def centroid(self) -> Vec2:
        """Area centroid of the polygon."""
        signed = self.signed_area()
        if abs(signed) <= EPS:
            # Degenerate polygon: fall back to the vertex mean.
            sx = sum(v.x for v in self.vertices)
            sy = sum(v.y for v in self.vertices)
            return Vec2(sx / len(self.vertices), sy / len(self.vertices))
        cx = cy = 0.0
        n = len(self.vertices)
        for i in range(n):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % n]
            cross = a.cross(b)
            cx += (a.x + b.x) * cross
            cy += (a.y + b.y) * cross
        factor = 1.0 / (6.0 * signed)
        return Vec2(cx * factor, cy * factor)

    def bounding_box(self) -> Tuple[float, float, float, float]:
        """``(xmin, ymin, xmax, ymax)`` of the polygon."""
        xs = [v.x for v in self.vertices]
        ys = [v.y for v in self.vertices]
        return (min(xs), min(ys), max(xs), max(ys))

    def edges(self) -> List[Segment]:
        """The boundary edges in vertex order."""
        n = len(self.vertices)
        return [
            Segment(self.vertices[i], self.vertices[(i + 1) % n]) for i in range(n)
        ]

    def is_convex(self) -> bool:
        """``True`` when the polygon is convex (collinear runs allowed)."""
        n = len(self.vertices)
        sign = 0
        for i in range(n):
            o = orientation(
                self.vertices[i],
                self.vertices[(i + 1) % n],
                self.vertices[(i + 2) % n],
            )
            if o == 0:
                continue
            if sign == 0:
                sign = o
            elif o != sign:
                return False
        return True

    def counter_clockwise(self) -> "Polygon":
        """The polygon with guaranteed counter-clockwise winding."""
        if self.signed_area() >= 0:
            return self
        return Polygon(tuple(reversed(self.vertices)))

    # ------------------------------------------------------------------
    # Point queries
    # ------------------------------------------------------------------
    def contains(self, p: Vec2, include_boundary: bool = True) -> bool:
        """Point-in-polygon test (ray casting with boundary handling)."""
        if self.on_boundary(p):
            return include_boundary
        inside = False
        n = len(self.vertices)
        for i in range(n):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % n]
            if (a.y > p.y) != (b.y > p.y):
                x_cross = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y)
                if p.x < x_cross:
                    inside = not inside
        return inside

    def on_boundary(self, p: Vec2, eps: float = 1e-7) -> bool:
        """Whether ``p`` lies on the polygon's boundary."""
        return any(edge.distance_to_point(p) <= eps for edge in self.edges())

    def contains_points(
        self, px, py, include_boundary: bool = True, eps: float = 1e-7
    ):
        """Vectorised :meth:`contains` over arrays of point coordinates.

        Returns a boolean array of the same shape as ``px``/``py``.  The
        arithmetic mirrors the scalar test operation by operation — the
        same ray-casting parity and the same clamped-projection boundary
        distance — so rasterising a polygon over a grid produces the same
        mask as calling :meth:`contains` per point.
        """
        import numpy as np

        px = np.asarray(px, dtype=float)
        py = np.asarray(py, dtype=float)
        inside = np.zeros(px.shape, dtype=bool)
        boundary = np.zeros(px.shape, dtype=bool)
        n = len(self.vertices)
        for i in range(n):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % n]
            dx, dy = b.x - a.x, b.y - a.y
            denom = dx * dx + dy * dy
            if denom <= EPS:
                # Near-degenerate edge: distance to the closer endpoint
                # (mirrors Segment.closest_point's degenerate branch).
                dist = np.minimum(
                    np.hypot(px - a.x, py - a.y), np.hypot(px - b.x, py - b.y)
                )
            else:
                t = ((px - a.x) * dx + (py - a.y) * dy) / denom
                t = np.minimum(1.0, np.maximum(0.0, t))
                dist = np.hypot(px - (a.x + dx * t), py - (a.y + dy * t))
            boundary |= dist <= eps
            if a.y != b.y:
                crosses = (a.y > py) != (b.y > py)
                x_cross = a.x + (py - a.y) * (b.x - a.x) / (b.y - a.y)
                inside ^= crosses & (px < x_cross)
        if include_boundary:
            return inside | boundary
        return inside & ~boundary

    def distance_to_point(self, p: Vec2) -> float:
        """Distance from ``p`` to the polygon (zero when inside)."""
        if self.contains(p):
            return 0.0
        return min(edge.distance_to_point(p) for edge in self.edges())

    def boundary_distance_to_point(self, p: Vec2) -> float:
        """Distance from ``p`` to the polygon *boundary* (even when inside)."""
        return min(edge.distance_to_point(p) for edge in self.edges())

    def closest_boundary_point(self, p: Vec2) -> Vec2:
        """Closest point of the polygon boundary to ``p``."""
        best = None
        best_dist = math.inf
        for edge in self.edges():
            candidate = edge.closest_point(p)
            dist = candidate.distance_to(p)
            if dist < best_dist:
                best = candidate
                best_dist = dist
        assert best is not None
        return best

    # ------------------------------------------------------------------
    # Segment queries
    # ------------------------------------------------------------------
    def intersects_segment(self, seg: Segment) -> bool:
        """Whether the segment touches the polygon (boundary or interior)."""
        if self.contains(seg.a) or self.contains(seg.b):
            return True
        return any(edge.intersects(seg) for edge in self.edges())

    def segment_crosses_interior(self, seg: Segment, samples: int = 8) -> bool:
        """Whether the open segment passes through the polygon's interior.

        Boundary grazing does not count.  Implemented by sampling interior
        points of the segment, which is robust enough for the rectangular and
        mildly irregular obstacles used in the experiments.
        """
        for i in range(1, samples):
            t = i / samples
            p = seg.point_at(t)
            if self.contains(p, include_boundary=False):
                return True
        crossings = [edge for edge in self.edges() if edge.intersects(seg)]
        if len(crossings) >= 2:
            midpoint = seg.midpoint()
            if self.contains(midpoint, include_boundary=False):
                return True
        return False

    def segment_intersections(self, seg: Segment) -> List[Vec2]:
        """All boundary intersection points with a segment, ordered along it."""
        points: List[Vec2] = []
        for edge in self.edges():
            p = edge.intersection(seg)
            if p is not None and not any(p.almost_equals(q) for q in points):
                points.append(p)
        points.sort(key=seg.a.distance_to)
        return points

    def scaled(self, factor: float, about: Vec2 | None = None) -> "Polygon":
        """Polygon scaled by ``factor`` about ``about`` (default: centroid)."""
        pivot = about if about is not None else self.centroid()
        return Polygon([pivot + (v - pivot) * factor for v in self.vertices])

    def translated(self, offset: Vec2) -> "Polygon":
        """Polygon translated by ``offset``."""
        return Polygon([v + offset for v in self.vertices])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Polygon({len(self.vertices)} vertices, area={self.area():.3g})"
