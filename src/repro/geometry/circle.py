"""Circle / disk primitives.

Sensing and communication ranges in the paper are isotropic unit disks; the
FLOOR scheme additionally reasons about the *expansion circle* of radius
``min(rc, rs)`` around a fixed sensor and intersects it with floor lines and
obstacle boundaries to locate expansion points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .segment import Segment
from .vec import EPS, Vec2

__all__ = ["Circle", "circle_circle_intersections", "disk_overlap_area"]


@dataclass(frozen=True)
class Circle:
    """A circle (and, when used as a range, the closed disk it bounds)."""

    center: Vec2
    radius: float

    # ------------------------------------------------------------------
    # Containment
    # ------------------------------------------------------------------
    def contains(self, p: Vec2, eps: float = EPS) -> bool:
        """Return ``True`` when ``p`` lies inside or on the circle."""
        return self.center.distance_sq_to(p) <= (self.radius + eps) ** 2

    def strictly_contains(self, p: Vec2, eps: float = EPS) -> bool:
        """Return ``True`` when ``p`` lies strictly inside the circle."""
        return self.center.distance_sq_to(p) < (self.radius - eps) ** 2

    def area(self) -> float:
        """Area of the disk."""
        return math.pi * self.radius * self.radius

    def circumference(self) -> float:
        """Perimeter of the circle."""
        return 2.0 * math.pi * self.radius

    def point_at_angle(self, angle: float) -> Vec2:
        """Point on the circle at ``angle`` radians from the +x axis."""
        return self.center + Vec2.from_polar(self.radius, angle)

    # ------------------------------------------------------------------
    # Intersections
    # ------------------------------------------------------------------
    def intersects_segment(self, seg: Segment) -> bool:
        """Whether the segment has at least one point inside the disk."""
        return seg.distance_to_point(self.center) <= self.radius + EPS

    def segment_intersections(self, seg: Segment) -> List[Vec2]:
        """Intersection points of the circle *boundary* with a segment.

        Returns zero, one or two points sorted along the segment direction.
        """
        d = seg.b - seg.a
        f = seg.a - self.center
        a = d.norm_sq()
        if a <= EPS:
            return []
        b = 2.0 * f.dot(d)
        c = f.norm_sq() - self.radius * self.radius
        disc = b * b - 4.0 * a * c
        if disc < 0:
            return []
        sqrt_disc = math.sqrt(max(0.0, disc))
        points: List[Vec2] = []
        for t in ((-b - sqrt_disc) / (2.0 * a), (-b + sqrt_disc) / (2.0 * a)):
            if -EPS <= t <= 1 + EPS:
                p = seg.point_at(min(1.0, max(0.0, t)))
                if not any(p.almost_equals(q) for q in points):
                    points.append(p)
        return points

    def clip_segment(self, seg: Segment) -> Optional[Segment]:
        """The portion of ``seg`` that lies inside the closed disk.

        Returns ``None`` when the segment does not enter the disk, and may
        return a degenerate (zero-length) segment when it is tangent.
        """
        inside_a = self.contains(seg.a)
        inside_b = self.contains(seg.b)
        if inside_a and inside_b:
            return seg
        crossings = self.segment_intersections(seg)
        if inside_a:
            if not crossings:
                return None
            # The exit point is the crossing farthest from a.
            exit_point = max(crossings, key=seg.a.distance_to)
            return Segment(seg.a, exit_point)
        if inside_b:
            if not crossings:
                return None
            entry_point = max(crossings, key=seg.b.distance_to)
            return Segment(entry_point, seg.b)
        if len(crossings) >= 2:
            crossings.sort(key=seg.a.distance_to)
            return Segment(crossings[0], crossings[-1])
        if len(crossings) == 1:
            return Segment(crossings[0], crossings[0])
        return None

    def intersects_circle(self, other: "Circle") -> bool:
        """Whether the two closed disks overlap."""
        return self.center.distance_to(other.center) <= self.radius + other.radius + EPS


def circle_circle_intersections(c1: Circle, c2: Circle) -> List[Vec2]:
    """Intersection points of two circle boundaries (zero, one or two)."""
    d = c1.center.distance_to(c2.center)
    if d <= EPS:
        return []
    if d > c1.radius + c2.radius + EPS:
        return []
    if d < abs(c1.radius - c2.radius) - EPS:
        return []
    a = (c1.radius**2 - c2.radius**2 + d * d) / (2.0 * d)
    h_sq = c1.radius**2 - a * a
    h = math.sqrt(max(0.0, h_sq))
    base = c1.center + (c2.center - c1.center) * (a / d)
    if h <= EPS:
        return [base]
    offset = (c2.center - c1.center).perpendicular() * (h / d)
    return [base + offset, base - offset]


def disk_overlap_area(c1: Circle, c2: Circle) -> float:
    """Area of the intersection of two disks (lens area).

    Used to estimate how much of a sensor's coverage is redundant with a
    neighbour's when deciding whether it is *movable* in the FLOOR scheme.
    """
    d = c1.center.distance_to(c2.center)
    r1, r2 = c1.radius, c2.radius
    if d >= r1 + r2:
        return 0.0
    if d <= abs(r1 - r2):
        smaller = min(r1, r2)
        return math.pi * smaller * smaller
    alpha = math.acos(min(1.0, max(-1.0, (d * d + r1 * r1 - r2 * r2) / (2.0 * d * r1))))
    beta = math.acos(min(1.0, max(-1.0, (d * d + r2 * r2 - r1 * r1) / (2.0 * d * r2))))
    return (
        r1 * r1 * (alpha - math.sin(2.0 * alpha) / 2.0)
        + r2 * r2 * (beta - math.sin(2.0 * beta) / 2.0)
    )
