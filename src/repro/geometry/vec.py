"""2-D vector primitives used throughout the library.

Every geometric quantity in the simulator (sensor positions, expansion
points, obstacle vertices) is a :class:`Vec2`.  The class is an immutable
value type so that positions can be safely shared between the simulation
engine, metric recorders and test assertions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple

__all__ = ["Vec2", "EPS", "almost_equal"]

#: Numerical tolerance used by geometric predicates throughout the package.
EPS = 1e-9


def almost_equal(a: float, b: float, eps: float = EPS) -> bool:
    """Return ``True`` when two scalars differ by less than ``eps``."""
    return abs(a - b) <= eps


@dataclass(frozen=True)
class Vec2:
    """An immutable 2-D vector / point.

    Supports the usual vector arithmetic (``+``, ``-``, scalar ``*`` and
    ``/``), dot and cross products, rotation, normalisation and distance
    computations.
    """

    x: float
    y: float

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zero() -> "Vec2":
        """The origin ``(0, 0)``."""
        return Vec2(0.0, 0.0)

    @staticmethod
    def from_polar(radius: float, angle: float) -> "Vec2":
        """Build a vector from polar coordinates (``angle`` in radians)."""
        return Vec2(radius * math.cos(angle), radius * math.sin(angle))

    @staticmethod
    def from_iterable(values: Iterable[float]) -> "Vec2":
        """Build a vector from any two-element iterable."""
        x, y = values
        return Vec2(float(x), float(y))

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Vec2":
        return Vec2(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Vec2":
        return Vec2(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Vec2":
        return Vec2(-self.x, -self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    # ------------------------------------------------------------------
    # Products and norms
    # ------------------------------------------------------------------
    def dot(self, other: "Vec2") -> float:
        """Dot product with ``other``."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Vec2") -> float:
        """Z component of the 3-D cross product (signed parallelogram area)."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean length."""
        return math.hypot(self.x, self.y)

    def norm_sq(self) -> float:
        """Squared Euclidean length (avoids the square root)."""
        return self.x * self.x + self.y * self.y

    def distance_to(self, other: "Vec2") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def distance_sq_to(self, other: "Vec2") -> float:
        """Squared Euclidean distance to ``other``."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    # ------------------------------------------------------------------
    # Directional helpers
    # ------------------------------------------------------------------
    def normalized(self) -> "Vec2":
        """Unit vector in the same direction.

        Returns the zero vector when the length is (numerically) zero, which
        is the convenient convention for virtual-force summation.
        """
        n = self.norm()
        if n <= EPS:
            return Vec2.zero()
        return Vec2(self.x / n, self.y / n)

    def angle(self) -> float:
        """Angle of the vector in radians, in ``(-pi, pi]``."""
        return math.atan2(self.y, self.x)

    def rotated(self, angle: float) -> "Vec2":
        """Vector rotated counter-clockwise by ``angle`` radians."""
        c, s = math.cos(angle), math.sin(angle)
        return Vec2(self.x * c - self.y * s, self.x * s + self.y * c)

    def perpendicular(self) -> "Vec2":
        """Vector rotated 90 degrees counter-clockwise."""
        return Vec2(-self.y, self.x)

    def towards(self, other: "Vec2") -> "Vec2":
        """Unit vector pointing from ``self`` toward ``other``."""
        return (other - self).normalized()

    def lerp(self, other: "Vec2", t: float) -> "Vec2":
        """Linear interpolation: ``self`` at ``t=0`` and ``other`` at ``t=1``."""
        return Vec2(self.x + (other.x - self.x) * t, self.y + (other.y - self.y) * t)

    def clamped_norm(self, max_norm: float) -> "Vec2":
        """Vector with the same direction but length at most ``max_norm``."""
        n = self.norm()
        if n <= max_norm or n <= EPS:
            return self
        return self * (max_norm / n)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def as_tuple(self) -> Tuple[float, float]:
        """The vector as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)

    def almost_equals(self, other: "Vec2", eps: float = 1e-6) -> bool:
        """Componentwise approximate equality."""
        return abs(self.x - other.x) <= eps and abs(self.y - other.y) <= eps

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Vec2({self.x:.6g}, {self.y:.6g})"
