"""Geometric substrate: vectors, segments, circles, polygons, grids.

These primitives are deliberately dependency-light (only numpy for the
coverage grid) so that every higher layer — field model, Voronoi diagrams,
BUG2 path planning, the deployment schemes themselves — can build on a
single consistent set of predicates and tolerances.
"""

from .vec import EPS, Vec2, almost_equal
from .segment import Segment, on_segment, orientation
from .circle import Circle, circle_circle_intersections, disk_overlap_area
from .polygon import Polygon
from .halfplane import HalfPlane, bisector_halfplane, clip_polygon, clip_polygon_to_cell
from .grid import CoverageGrid

__all__ = [
    "EPS",
    "Vec2",
    "almost_equal",
    "Segment",
    "on_segment",
    "orientation",
    "Circle",
    "circle_circle_intersections",
    "disk_overlap_area",
    "Polygon",
    "HalfPlane",
    "bisector_halfplane",
    "clip_polygon",
    "clip_polygon_to_cell",
    "CoverageGrid",
]
