"""Line-segment primitives: intersection tests, distances and projections.

Segments are used for obstacle edges, floor lines clipped to the field,
BUG2 reference lines and Voronoi cell boundaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from .vec import EPS, Vec2

__all__ = ["Segment", "orientation", "on_segment"]


def orientation(a: Vec2, b: Vec2, c: Vec2) -> int:
    """Orientation of the ordered triple ``(a, b, c)``.

    Returns ``1`` for counter-clockwise, ``-1`` for clockwise and ``0`` for
    collinear points (within :data:`~repro.geometry.vec.EPS`).
    """
    cross = (b - a).cross(c - a)
    if cross > EPS:
        return 1
    if cross < -EPS:
        return -1
    return 0


def on_segment(p: Vec2, a: Vec2, b: Vec2, eps: float = EPS) -> bool:
    """Return ``True`` when ``p`` lies on the closed segment ``[a, b]``."""
    if abs((b - a).cross(p - a)) > eps * max(1.0, a.distance_to(b)):
        return False
    return (
        min(a.x, b.x) - eps <= p.x <= max(a.x, b.x) + eps
        and min(a.y, b.y) - eps <= p.y <= max(a.y, b.y) + eps
    )


@dataclass(frozen=True)
class Segment:
    """A closed line segment between two points."""

    a: Vec2
    b: Vec2

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    def length(self) -> float:
        """Euclidean length of the segment."""
        return self.a.distance_to(self.b)

    def direction(self) -> Vec2:
        """Unit vector from ``a`` to ``b`` (zero vector for degenerate segments)."""
        return self.a.towards(self.b)

    def midpoint(self) -> Vec2:
        """The midpoint of the segment."""
        return self.a.lerp(self.b, 0.5)

    def point_at(self, t: float) -> Vec2:
        """Point at parameter ``t`` where ``t=0`` is ``a`` and ``t=1`` is ``b``."""
        return self.a.lerp(self.b, t)

    def reversed(self) -> "Segment":
        """The same segment traversed in the opposite direction."""
        return Segment(self.b, self.a)

    # ------------------------------------------------------------------
    # Distances and projections
    # ------------------------------------------------------------------
    def project_parameter(self, p: Vec2) -> float:
        """Parameter ``t`` of the orthogonal projection of ``p`` onto the line.

        The result is *not* clamped to ``[0, 1]``.
        """
        d = self.b - self.a
        denom = d.norm_sq()
        if denom <= EPS:
            return 0.0
        return (p - self.a).dot(d) / denom

    def closest_point(self, p: Vec2) -> Vec2:
        """The point of the closed segment closest to ``p``."""
        if (self.b - self.a).norm_sq() <= EPS:
            # Near-degenerate segment: the projection parameter is
            # meaningless (project_parameter returns 0), but the endpoints
            # can still be metres apart relative to the query tolerance —
            # return whichever is actually closer.
            if p.distance_to(self.a) <= p.distance_to(self.b):
                return self.a
            return self.b
        t = min(1.0, max(0.0, self.project_parameter(p)))
        return self.point_at(t)

    def distance_to_point(self, p: Vec2) -> float:
        """Distance from ``p`` to the closed segment."""
        return p.distance_to(self.closest_point(p))

    def contains_point(self, p: Vec2, eps: float = 1e-7) -> bool:
        """Return ``True`` if ``p`` lies on the segment within ``eps``."""
        return self.distance_to_point(p) <= eps

    # ------------------------------------------------------------------
    # Intersections
    # ------------------------------------------------------------------
    def intersects(self, other: "Segment") -> bool:
        """Whether the two closed segments share at least one point."""
        o1 = orientation(self.a, self.b, other.a)
        o2 = orientation(self.a, self.b, other.b)
        o3 = orientation(other.a, other.b, self.a)
        o4 = orientation(other.a, other.b, self.b)

        if o1 != o2 and o3 != o4:
            return True
        if o1 == 0 and on_segment(other.a, self.a, self.b):
            return True
        if o2 == 0 and on_segment(other.b, self.a, self.b):
            return True
        if o3 == 0 and on_segment(self.a, other.a, other.b):
            return True
        if o4 == 0 and on_segment(self.b, other.a, other.b):
            return True
        return False

    def intersection(self, other: "Segment") -> Optional[Vec2]:
        """Single intersection point of two segments, if one exists.

        Returns ``None`` when the segments do not intersect or when they are
        collinear and overlap in more than a point (no unique answer).
        """
        d1 = self.b - self.a
        d2 = other.b - other.a
        denom = d1.cross(d2)
        if abs(denom) <= EPS:
            # Parallel or collinear.  Report a shared endpoint when they only
            # touch at one, otherwise give up (ambiguous overlap).
            touches = [
                p
                for p in (self.a, self.b)
                if on_segment(p, other.a, other.b)
            ] + [
                p
                for p in (other.a, other.b)
                if on_segment(p, self.a, self.b)
            ]
            unique: List[Vec2] = []
            for p in touches:
                if not any(p.almost_equals(q) for q in unique):
                    unique.append(p)
            if len(unique) == 1:
                return unique[0]
            return None
        t = (other.a - self.a).cross(d2) / denom
        u = (other.a - self.a).cross(d1) / denom
        if -EPS <= t <= 1 + EPS and -EPS <= u <= 1 + EPS:
            return self.point_at(min(1.0, max(0.0, t)))
        return None

    def intersection_parameters(self, other: "Segment") -> Optional[tuple]:
        """``(t, u)`` parameters of the intersection, or ``None``.

        ``t`` parameterises ``self`` and ``u`` parameterises ``other``.
        Collinear overlaps return ``None``.
        """
        d1 = self.b - self.a
        d2 = other.b - other.a
        denom = d1.cross(d2)
        if abs(denom) <= EPS:
            return None
        t = (other.a - self.a).cross(d2) / denom
        u = (other.a - self.a).cross(d1) / denom
        if -EPS <= t <= 1 + EPS and -EPS <= u <= 1 + EPS:
            return (t, u)
        return None

    def distance_to_segment(self, other: "Segment") -> float:
        """Minimum distance between two closed segments."""
        if self.intersects(other):
            return 0.0
        return min(
            self.distance_to_point(other.a),
            self.distance_to_point(other.b),
            other.distance_to_point(self.a),
            other.distance_to_point(self.b),
        )

    # ------------------------------------------------------------------
    # Clipping
    # ------------------------------------------------------------------
    def clip_to_box(
        self, xmin: float, ymin: float, xmax: float, ymax: float
    ) -> Optional["Segment"]:
        """Liang–Barsky clipping of the segment to an axis-aligned box.

        Returns the clipped segment, or ``None`` when the segment lies
        entirely outside the box.
        """
        dx = self.b.x - self.a.x
        dy = self.b.y - self.a.y
        t0, t1 = 0.0, 1.0
        checks = (
            (-dx, self.a.x - xmin),
            (dx, xmax - self.a.x),
            (-dy, self.a.y - ymin),
            (dy, ymax - self.a.y),
        )
        for p, q in checks:
            if abs(p) <= EPS:
                if q < 0:
                    return None
                continue
            r = q / p
            if p < 0:
                if r > t1:
                    return None
                t0 = max(t0, r)
            else:
                if r < t0:
                    return None
                t1 = min(t1, r)
        if t0 > t1:
            return None
        return Segment(self.point_at(t0), self.point_at(t1))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Segment({self.a!r} -> {self.b!r})"


def _self_test() -> None:  # pragma: no cover - manual sanity helper
    s1 = Segment(Vec2(0, 0), Vec2(10, 0))
    s2 = Segment(Vec2(5, -5), Vec2(5, 5))
    assert s1.intersects(s2)
    assert s1.intersection(s2).almost_equals(Vec2(5, 0))


if __name__ == "__main__":  # pragma: no cover
    _self_test()
