"""Fault-injection lifecycle events and their mid-run execution.

A scenario may carry an *event timeline*: seed-deterministic world
mutations the engine applies between periods — sensor death (battery
exhaustion), mid-run sensor injection, obstacles appearing (a door
closing in a ``rooms`` layout) or disappearing again.  The
:class:`FaultInjector` executes the timeline against a live
:class:`~repro.sim.world.World`, notifies the running scheme through its
``on_world_changed`` hook, and opens one
:class:`~repro.metrics.recovery.RecoveryTracker` per event so every run
reports time-to-recover, extra moving distance and the per-event message
burst.

Determinism: all randomness (victim selection, injection positions) comes
from a private stream derived from ``(scenario seed, event index, kind)``
with the same hash construction the sweep layer uses for repetition
seeds, so a timeline replays identically for a given spec — including
under process-parallel sweeps.
"""

from __future__ import annotations

import hashlib
import math
import random
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..field.obstacles import Obstacle
from ..geometry import Vec2
from ..metrics.recovery import EventOutcome, RecoveryTracker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .world import World

__all__ = [
    "EVENT_KINDS",
    "LifecycleEvent",
    "WorldChange",
    "FaultInjector",
    "normalize_events",
    "sensor_failure",
    "sensor_join",
    "obstacle_appear",
    "obstacle_clear",
    "event_rng",
    "select_failure_victims",
    "draw_join_positions",
    "build_event_obstacle",
]

#: Recognised event kinds.
EVENT_KINDS = ("failure", "join", "obstacle", "clear-obstacle")

Params = Tuple[Tuple[str, Any], ...]


def _freeze_params(params: Union[Mapping[str, Any], Sequence, None]) -> Params:
    """Sorted frozen ``(key, value)`` tuple (mirrors the api layer's helper,
    which cannot be imported here — the api package imports ``sim``)."""
    if params is None:
        return ()
    if isinstance(params, Mapping):
        items = params.items()
    else:
        items = tuple(tuple(pair) for pair in params)
    return tuple(sorted((str(k), v) for k, v in items))


def _derive_rng(base_seed: int, *keys) -> random.Random:
    """Private RNG stream for one event (blake2b over the key tuple)."""
    payload = repr((int(base_seed),) + tuple(keys)).encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return random.Random(int.from_bytes(digest, "big") >> 33)


@dataclass(frozen=True)
class LifecycleEvent:
    """One scheduled world mutation.

    ``params`` is a frozen sorted ``(key, value)`` tuple (JSON-friendly,
    hashable) — use the module-level constructors for the supported
    grammar rather than spelling params by hand.
    """

    #: Period index (0-based) at whose *start* the event fires.
    at_period: int
    #: One of :data:`EVENT_KINDS`.
    kind: str
    params: Params = ()

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown lifecycle event kind: {self.kind!r}")
        if self.at_period < 0:
            raise ValueError("event period cannot be negative")
        object.__setattr__(self, "params", _freeze_params(self.params))

    def param(self, key: str, default: Any = None) -> Any:
        """Value of one event parameter."""
        for k, v in self.params:
            if k == key:
                return v
        return default

    def to_dict(self) -> Dict[str, Any]:
        return {
            "at_period": self.at_period,
            "kind": self.kind,
            "params": dict(self.params),
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "LifecycleEvent":
        return LifecycleEvent(
            at_period=int(data["at_period"]),
            kind=str(data["kind"]),
            params=_freeze_params(data.get("params")),
        )


def normalize_events(events) -> Tuple[LifecycleEvent, ...]:
    """Coerce a sequence of events / dicts into a tuple of events."""
    out: List[LifecycleEvent] = []
    for item in events or ():
        if isinstance(item, LifecycleEvent):
            out.append(item)
        elif isinstance(item, Mapping):
            out.append(LifecycleEvent.from_dict(item))
        else:
            raise TypeError(f"not a lifecycle event: {item!r}")
    return tuple(out)


# ----------------------------------------------------------------------
# Event grammar constructors
# ----------------------------------------------------------------------
def sensor_failure(
    at_period: int,
    count: Optional[int] = None,
    fraction: Optional[float] = None,
    selection: str = "random",
) -> LifecycleEvent:
    """Kill ``count`` sensors (or a ``fraction`` of the live population).

    ``selection="interior"`` prefers tree-interior victims (nodes with
    children), the worst case for connectivity repair.
    """
    if (count is None) == (fraction is None):
        raise ValueError("specify exactly one of count / fraction")
    if selection not in ("random", "interior"):
        raise ValueError(f"unknown selection policy: {selection!r}")
    params: Dict[str, Any] = {"selection": selection}
    if count is not None:
        params["count"] = int(count)
    else:
        params["fraction"] = float(fraction)
    return LifecycleEvent(at_period=at_period, kind="failure", params=params)


def sensor_join(
    at_period: int,
    count: int,
    x: Optional[float] = None,
    y: Optional[float] = None,
    radius: Optional[float] = None,
) -> LifecycleEvent:
    """Inject ``count`` fresh sensors, uniform over free space by default.

    With ``x``/``y`` (and optionally ``radius``) the arrivals are drawn
    uniformly from a disk around that staging point instead.
    """
    params: Dict[str, Any] = {"count": int(count)}
    if (x is None) != (y is None):
        raise ValueError("specify both x and y (or neither)")
    if x is not None:
        params["x"] = float(x)
        params["y"] = float(y)
        params["radius"] = float(radius if radius is not None else 0.0)
    elif radius is not None:
        raise ValueError("radius requires a staging point")
    return LifecycleEvent(at_period=at_period, kind="join", params=params)


def obstacle_appear(
    at_period: int, xmin: float, ymin: float, xmax: float, ymax: float
) -> LifecycleEvent:
    """Materialise an axis-aligned rectangular obstacle (a door closing)."""
    if xmax <= xmin or ymax <= ymin:
        raise ValueError("degenerate obstacle rectangle")
    return LifecycleEvent(
        at_period=at_period,
        kind="obstacle",
        params={
            "xmin": float(xmin),
            "ymin": float(ymin),
            "xmax": float(xmax),
            "ymax": float(ymax),
        },
    )


def obstacle_clear(at_period: int, index: int) -> LifecycleEvent:
    """Remove the obstacle at ``index`` in ``field.obstacles`` (door opens).

    Obstacles appended by earlier ``obstacle`` events sit after the
    layout's own obstacles, in event order.
    """
    return LifecycleEvent(
        at_period=at_period, kind="clear-obstacle", params={"index": int(index)}
    )


# ----------------------------------------------------------------------
# Shared event mechanics (used by the engine injector AND the round-based
# VD baseline path, which has no World)
# ----------------------------------------------------------------------
def event_rng(base_seed: int, event_index: int, kind: str) -> random.Random:
    """The deterministic RNG stream of one event."""
    return _derive_rng(base_seed, event_index, kind)


def select_failure_victims(
    rng: random.Random,
    event: LifecycleEvent,
    candidates: Sequence[int],
    interior_candidates: Optional[Sequence[int]] = None,
) -> List[int]:
    """Pick the victims of a ``failure`` event, sorted ascending.

    ``candidates`` must be in deterministic order.  The ``interior``
    policy draws from ``interior_candidates`` first and tops up from the
    rest; with no interior pool (the tree-less VD baselines) it degrades
    to random selection.
    """
    candidates = list(candidates)
    count = event.param("count")
    if count is None:
        count = int(round(event.param("fraction", 0.0) * len(candidates)))
    count = max(0, min(int(count), len(candidates)))
    if (
        event.param("selection", "random") == "interior"
        and interior_candidates
    ):
        interior = list(interior_candidates)
        victims = rng.sample(interior, min(count, len(interior)))
        if len(victims) < count:
            taken = set(victims)
            rest = [c for c in candidates if c not in taken]
            victims += rng.sample(rest, count - len(victims))
    else:
        victims = rng.sample(candidates, count)
    return sorted(victims)


def draw_join_positions(field, event: LifecycleEvent, rng: random.Random) -> List[Vec2]:
    """Draw the arrival positions of a ``join`` event (free space only)."""
    count = max(0, int(event.param("count", 0)))
    x = event.param("x")
    positions: List[Vec2] = []
    for _ in range(count):
        if x is not None:
            cx = float(x)
            cy = float(event.param("y"))
            radius = float(event.param("radius", 0.0))
            pos = None
            for _attempt in range(50):
                # Uniform over the staging disk.
                r = radius * (rng.random() ** 0.5)
                angle = rng.uniform(0.0, 2.0 * math.pi)
                candidate = field.clamp(
                    Vec2(cx + r * math.cos(angle), cy + r * math.sin(angle))
                )
                if field.is_free(candidate):
                    pos = candidate
                    break
            if pos is None:
                pos = field.clamp(Vec2(cx, cy))
        else:
            pos = None
            for _attempt in range(50):
                candidate = Vec2(
                    rng.uniform(0.0, field.width),
                    rng.uniform(0.0, field.height),
                )
                if field.is_free(candidate):
                    pos = candidate
                    break
            if pos is None:
                pos = Vec2(field.width / 2.0, field.height / 2.0)
        positions.append(pos)
    return positions


def build_event_obstacle(event: LifecycleEvent) -> Obstacle:
    """The rectangle an ``obstacle`` event materialises."""
    return Obstacle.rectangle(
        event.param("xmin"),
        event.param("ymin"),
        event.param("xmax"),
        event.param("ymax"),
        name=f"event-obstacle-{event.at_period}",
    )


# ----------------------------------------------------------------------
# Applying events to a live world
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorldChange:
    """What a fired event did to the world (passed to the scheme hook)."""

    kind: str
    failed_ids: Tuple[int, ...] = ()
    added_ids: Tuple[int, ...] = ()
    #: Tree members that fell out of the tree because their orphaned
    #: subtree could not be re-attached (now DISCONNECTED).
    disconnected_ids: Tuple[int, ...] = ()
    obstacles_changed: bool = False


class FaultInjector:
    """Executes a scenario's event timeline against a running world."""

    def __init__(
        self,
        world: "World",
        scheme,
        events: Sequence[LifecycleEvent],
        recovery_target: float = 0.95,
        burst_window: int = 25,
    ):
        self._world = world
        self._scheme = scheme
        self._recovery_target = float(recovery_target)
        self._burst_window = max(1, int(burst_window))
        self._by_period: Dict[int, List[Tuple[int, LifecycleEvent]]] = {}
        self._events = normalize_events(events)
        for index, event in enumerate(self._events):
            self._by_period.setdefault(event.at_period, []).append((index, event))
        self._max_period = max(
            (e.at_period for e in self._events), default=-1
        )
        #: Per-period transmission totals for the trailing baseline window.
        self._recent_messages: deque = deque(maxlen=self._burst_window)
        self._last_snapshot = world.stats.snapshot()
        self._active: List[RecoveryTracker] = []
        self._outcomes: List[EventOutcome] = []

    # ------------------------------------------------------------------
    def has_pending(self, period: int) -> bool:
        """Whether any event is still scheduled after ``period``."""
        return self._max_period > period

    def fire(self, period: int) -> int:
        """Apply every event scheduled for ``period``; returns how many."""
        fired = self._by_period.get(period, ())
        for index, event in fired:
            self._apply(index, event)
        return len(fired)

    def observe(self, period: int) -> None:
        """Per-period bookkeeping (call after the scheme stepped)."""
        world = self._world
        current = world.stats.snapshot()
        self._recent_messages.append(current.diff(self._last_snapshot).total())
        self._last_snapshot = current
        if not self._active:
            return
        coverage = world.coverage()
        distance = world.total_moving_distance()
        messages = world.stats.total()
        still_active: List[RecoveryTracker] = []
        for tracker in self._active:
            tracker.observe(period, coverage, distance, messages)
            if tracker.settled:
                self._outcomes.append(tracker.outcome())
            else:
                still_active.append(tracker)
        self._active = still_active

    def outcomes(self) -> List[EventOutcome]:
        """Finalise remaining trackers and return outcomes in event order."""
        for tracker in self._active:
            self._outcomes.append(tracker.outcome())
        self._active = []
        return sorted(self._outcomes, key=lambda o: o.at_period)

    # ------------------------------------------------------------------
    def _apply(self, index: int, event: LifecycleEvent) -> None:
        world = self._world
        if world.telemetry.enabled:
            world.telemetry.count("lifecycle.events_fired", 1)
            world.telemetry.count(f"lifecycle.events.{event.kind}", 1)
        pre_coverage = world.coverage()
        pre_distance = world.total_moving_distance()
        pre_messages = world.stats.total()
        baseline = sum(self._recent_messages)

        if event.kind == "failure":
            change = self._apply_failure(index, event)
        elif event.kind == "join":
            change = self._apply_join(index, event)
        elif event.kind == "obstacle":
            change = self._apply_obstacle(event)
        else:
            change = self._apply_clear_obstacle(event)
        hook = getattr(self._scheme, "on_world_changed", None)
        if hook is not None:
            hook(world, change)

        self._active.append(
            RecoveryTracker(
                at_period=event.at_period,
                kind=event.kind,
                pre_coverage=pre_coverage,
                post_coverage=world.coverage(),
                pre_distance=pre_distance,
                pre_messages=pre_messages,
                baseline_window_messages=baseline,
                recovery_target=self._recovery_target,
                burst_window=self._burst_window,
            )
        )

    def _apply_failure(self, index: int, event: LifecycleEvent) -> WorldChange:
        world = self._world
        rng = event_rng(world.config.seed, index, "failure")
        alive_ids = sorted(
            s.sensor_id for s in world.sensors if s.is_alive()
        )
        victims = select_failure_victims(
            rng,
            event,
            alive_ids,
            interior_candidates=[
                sid for sid in alive_ids if world.tree.children_of(sid)
            ],
        )
        disconnected: List[int] = []
        for sid in victims:
            disconnected.extend(world.remove_sensor(sid))
        alive_disconnected = tuple(
            sorted(
                sid
                for sid in set(disconnected)
                if world.sensor(sid).is_alive()
            )
        )
        if world.telemetry.enabled:
            world.telemetry.count("lifecycle.sensors_failed", len(victims))
            world.telemetry.count(
                "lifecycle.sensors_disconnected", len(alive_disconnected)
            )
        return WorldChange(
            kind="failure",
            failed_ids=tuple(victims),
            disconnected_ids=alive_disconnected,
        )

    def _apply_join(self, index: int, event: LifecycleEvent) -> WorldChange:
        world = self._world
        rng = event_rng(world.config.seed, index, "join")
        added = [
            world.add_sensor(pos).sensor_id
            for pos in draw_join_positions(world.field, event, rng)
        ]
        world.telemetry.count("lifecycle.sensors_joined", len(added))
        return WorldChange(kind="join", added_ids=tuple(added))

    def _apply_obstacle(self, event: LifecycleEvent) -> WorldChange:
        world = self._world
        world.field.add_obstacle(build_event_obstacle(event))
        world.notify_field_changed()
        self._displace_swallowed_sensors()
        return WorldChange(kind="obstacle", obstacles_changed=True)

    def _apply_clear_obstacle(self, event: LifecycleEvent) -> WorldChange:
        world = self._world
        index = int(event.param("index", -1))
        if not 0 <= index < len(world.field.obstacles):
            raise ValueError(
                f"clear-obstacle index {index} out of range "
                f"(field has {len(world.field.obstacles)} obstacles)"
            )
        world.field.remove_obstacle(index)
        world.notify_field_changed()
        return WorldChange(kind="clear-obstacle", obstacles_changed=True)

    def _displace_swallowed_sensors(self) -> None:
        """Push live sensors out of a newly materialised obstacle.

        The escape walk is charged to the odometer — it is real movement
        the event forced.
        """
        world = self._world
        field_ = world.field
        for sensor in world.sensors:
            if not sensor.is_alive():
                continue
            pos = sensor.position
            if field_.is_free(pos):
                continue
            target = field_.nearest_free(pos)
            sensor.motion.stop()
            sensor.motion.commit_move(
                target.x, target.y, pos.distance_to(target)
            )
