"""Simulation engine: configuration, world state and the period loop."""

from .config import SimulationConfig
from .engine import DeploymentScheme, SimulationEngine, SimulationResult, TraceRecord
from .lifecycle import (
    EVENT_KINDS,
    FaultInjector,
    LifecycleEvent,
    WorldChange,
    normalize_events,
    obstacle_appear,
    obstacle_clear,
    sensor_failure,
    sensor_join,
)
from .world import World

__all__ = [
    "SimulationConfig",
    "DeploymentScheme",
    "SimulationEngine",
    "SimulationResult",
    "TraceRecord",
    "World",
    "EVENT_KINDS",
    "FaultInjector",
    "LifecycleEvent",
    "WorldChange",
    "normalize_events",
    "obstacle_appear",
    "obstacle_clear",
    "sensor_failure",
    "sensor_join",
]
