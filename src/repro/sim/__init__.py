"""Simulation engine: configuration, world state and the period loop."""

from .config import SimulationConfig
from .engine import DeploymentScheme, SimulationEngine, SimulationResult, TraceRecord
from .world import World

__all__ = [
    "SimulationConfig",
    "DeploymentScheme",
    "SimulationEngine",
    "SimulationResult",
    "TraceRecord",
    "World",
]
