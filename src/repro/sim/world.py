"""The simulation world: field, sensors, radio, tree and statistics.

The world is the shared state a deployment scheme manipulates.  It owns the
sensor population, the connectivity tree rooted at the base station, the
message-accounting sinks and convenience queries (neighbour tables, network
connectivity, coverage) that the schemes and the metrics layer both use.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..field import (
    Field,
    clustered_initial_positions,
    uniform_initial_positions,
)
from ..geometry import Vec2
from ..mobility import MotionModel
from ..network import (
    BASE_STATION_ID,
    ConnectivityTree,
    MessageStats,
    Radio,
    RoutingCostModel,
)
from ..sensors import Sensor, SensorState
from ..spatial import IncrementalCoverage, NeighborCache
from .config import SimulationConfig

__all__ = ["World"]


@dataclass
class World:
    """Mutable simulation state shared by the engine and the scheme."""

    config: SimulationConfig
    field: Field
    sensors: List[Sensor]
    radio: Radio
    tree: ConnectivityTree
    stats: MessageStats
    routing: RoutingCostModel
    rng: random.Random
    time: float = 0.0
    period_index: int = 0
    #: Fast-path switches; the brute-force implementations remain available
    #: (and are compared against the fast paths by the spatial parity tests).
    use_neighbor_cache: bool = True
    use_incremental_coverage: bool = True
    _neighbor_cache: Optional[NeighborCache] = field(
        default=None, init=False, repr=False, compare=False
    )
    _coverage_trackers: Dict[Tuple[float, float], IncrementalCoverage] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def create(
        config: SimulationConfig,
        field: Field,
        initial_positions: Optional[Sequence[Vec2]] = None,
        placement: Optional[Callable[..., Sequence[Vec2]]] = None,
    ) -> "World":
        """Build a world with sensors placed at their initial positions.

        The placement is drawn exactly once, from the world's own RNG
        stream.  ``placement`` is a strategy callable
        ``(config, field, rng) -> positions`` (the scenario layer passes
        registered strategies here); when omitted, the positions are drawn
        according to ``config.clustered_start`` (clustered lower-left
        quadrant, the paper's main setting, or uniform over the field).
        Explicit ``initial_positions`` bypass the draw entirely.
        """
        rng = random.Random(config.seed)
        if initial_positions is None:
            if placement is not None:
                initial_positions = list(placement(config, field, rng))
            elif config.clustered_start:
                # The paper clusters the initial distribution in the lower-left
                # quadrant (500 x 500 m of a 1000 x 1000 m field); scale the
                # cluster with the field so reduced-scale runs keep the shape.
                initial_positions = clustered_initial_positions(
                    config.sensor_count,
                    rng,
                    cluster_size=field.width / 2.0,
                    field=field,
                )
            else:
                initial_positions = uniform_initial_positions(
                    config.sensor_count, rng, field
                )
        if len(initial_positions) != config.sensor_count:
            raise ValueError(
                "number of initial positions does not match sensor_count"
            )
        sensors = [
            Sensor(
                sensor_id=i,
                motion=MotionModel(
                    position=pos,
                    max_speed=config.max_speed,
                    period=config.period,
                ),
                communication_range=config.communication_range,
                sensing_range=config.sensing_range,
            )
            for i, pos in enumerate(initial_positions)
        ]
        stats = MessageStats()
        return World(
            config=config,
            field=field,
            sensors=sensors,
            radio=Radio(field),
            tree=ConnectivityTree(),
            stats=stats,
            routing=RoutingCostModel(stats),
            rng=rng,
        )

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def sensor(self, sensor_id: int) -> Sensor:
        """The sensor with the given id."""
        return self.sensors[sensor_id]

    @property
    def base_station(self) -> Vec2:
        """Position of the base station / reference point."""
        return self.config.base_station

    def positions(self) -> List[Vec2]:
        """Current positions of all sensors, in id order."""
        return [s.position for s in self.sensors]

    def _cache(self) -> NeighborCache:
        if self._neighbor_cache is None:
            self._neighbor_cache = NeighborCache(self)
        return self._neighbor_cache

    def neighbor_table(self) -> Dict[int, List[int]]:
        """Current neighbour lists (ids within communication range)."""
        if self.use_neighbor_cache:
            return self._cache().neighbor_table()
        return self.radio.neighbor_table(self.sensors)

    def neighbor_pairs(self, extra_radius: float = 0.0, with_d2: bool = False):
        """Directed neighbour pairs ``(rows, cols[, d2])`` as index arrays.

        The flat-array view of :meth:`neighbor_table` (same accepted pairs,
        same ordering; ``extra_radius`` inflates the acceptance) used by
        the batched CPVF kernel; see
        :meth:`repro.spatial.NeighborCache.neighbor_pairs`.
        """
        if self.use_neighbor_cache:
            return self._cache().neighbor_pairs(extra_radius, with_d2)
        from ..spatial.cache import pairs_from_table

        rows, cols, d2 = pairs_from_table(
            self.sensors, self.radio.neighbor_table(self.sensors)
        )
        if with_d2:
            return rows, cols, d2
        return rows, cols

    def neighbor_rows(self, sensor_ids: Sequence[int]) -> Dict[int, List[int]]:
        """Neighbour lists for a subset of sensors (see the cache method).

        Falls back to slicing the full table when the cache is disabled.
        """
        if self.use_neighbor_cache:
            return self._cache().neighbor_rows(sensor_ids)
        table = self.radio.neighbor_table(self.sensors)
        return {sid: list(table.get(sid, ())) for sid in sensor_ids}

    def sensors_near_base_station(self) -> List[int]:
        """Sensors within one hop of the base station."""
        if self.use_neighbor_cache:
            return self._cache().base_station_neighbors()
        return self.radio.neighbors_of_point(
            self.base_station, self.sensors, self.config.communication_range
        )

    def connected_component_of(self) -> Set[int]:
        """Ids of sensors reachable from the base station via multi-hop links."""
        if self.use_neighbor_cache:
            return self._cache().connected_component()
        return self.radio.connected_component_of(
            self.sensors, self.base_station, self.config.communication_range
        )

    def connected_sensor_ids(self) -> List[int]:
        """Sensors currently marked as connected (any connected state)."""
        return [s.sensor_id for s in self.sensors if s.is_connected()]

    # ------------------------------------------------------------------
    # Global metrics
    # ------------------------------------------------------------------
    def coverage(self) -> float:
        """Fraction of non-obstacle field area covered by sensing disks.

        The incremental tracker re-rasterises only the disks of sensors
        that moved since the previous call; the result is identical to the
        brute-force ``Field.coverage_fraction`` scan.
        """
        if not self.use_incremental_coverage:
            return self.field.coverage_fraction(
                self.positions(),
                self.config.sensing_range,
                self.config.coverage_resolution,
            )
        key = (self.config.sensing_range, self.config.coverage_resolution)
        tracker = self._coverage_trackers.get(key)
        if tracker is None:
            tracker = IncrementalCoverage(self.field, key[0], key[1])
            self._coverage_trackers[key] = tracker
        tracker.update([(s.position.x, s.position.y) for s in self.sensors])
        return tracker.covered_fraction()

    def network_is_connected(self) -> bool:
        """Whether every sensor has a multi-hop route to the base station."""
        if self.use_neighbor_cache:
            return len(self.connected_component_of()) == len(self.sensors)
        return self.radio.network_is_connected(
            self.sensors, self.base_station, self.config.communication_range
        )

    def total_moving_distance(self) -> float:
        """Sum of all sensors' odometers."""
        return sum(s.moving_distance for s in self.sensors)

    def average_moving_distance(self) -> float:
        """Average odometer reading per sensor."""
        if not self.sensors:
            return 0.0
        return self.total_moving_distance() / len(self.sensors)

    # ------------------------------------------------------------------
    # Position commits
    # ------------------------------------------------------------------
    def commit_moves(
        self, moves: Sequence[Tuple[Sensor, float, float, float]]
    ) -> None:
        """Apply a batch of validated ``(sensor, x, y, distance)`` moves.

        The single commit point of the batched CPVF path: one color class
        commits here in one pass, and each sensor's position is assigned
        exactly once (a single ``position_version`` bump per sensor per
        class), so the neighbour cache's epoch advances once per moved
        sensor rather than once per intermediate assignment.  The
        odometer distances arrive precomputed from the class's batch
        arrays.
        """
        for sensor, x, y, dist in moves:
            sensor.motion.commit_move(x, y, dist)

    # ------------------------------------------------------------------
    # Tree maintenance helpers
    # ------------------------------------------------------------------
    def attach_to_tree(self, sensor_id: int, parent_id: int) -> None:
        """Attach a sensor to the connectivity tree and update its record."""
        self.tree.attach(sensor_id, parent_id)
        sensor = self.sensor(sensor_id)
        sensor.set_parent(parent_id, self.tree.ancestors_of(sensor_id))
        if not sensor.state.is_connected():
            sensor.state = SensorState.CONNECTED
        if parent_id != BASE_STATION_ID:
            self.sensor(parent_id).children.add(sensor_id)

    def reparent_in_tree(self, sensor_id: int, new_parent_id: int) -> bool:
        """Re-parent a sensor; keeps sensor-side records in sync."""
        old_parent = self.tree.parent_of(sensor_id)
        if not self.tree.reparent(sensor_id, new_parent_id):
            return False
        sensor = self.sensor(sensor_id)
        sensor.set_parent(new_parent_id, self.tree.ancestors_of(sensor_id))
        if old_parent is not None and old_parent != BASE_STATION_ID:
            self.sensor(old_parent).children.discard(sensor_id)
        if new_parent_id != BASE_STATION_ID:
            self.sensor(new_parent_id).children.add(sensor_id)
        return True
