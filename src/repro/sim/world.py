"""The simulation world: field, sensors, radio, tree and statistics.

The world is the shared state a deployment scheme manipulates.  It owns the
sensor population, the connectivity tree rooted at the base station, the
message-accounting sinks and convenience queries (neighbour tables, network
connectivity, coverage) that the schemes and the metrics layer both use.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..field import (
    Field,
    clustered_initial_positions,
    uniform_initial_positions,
)
from ..geometry import Vec2
from ..mobility import MotionModel
from ..network import (
    BASE_STATION_ID,
    ConnectivityTree,
    MessageStats,
    MessageType,
    NetworkModel,
    PERFECT_NETWORK,
    Radio,
    RoutingCostModel,
)
from ..obs import NULL_TELEMETRY, Telemetry
from ..sensors import Sensor, SensorState
from ..spatial import IncrementalCoverage, NeighborCache
from .config import SimulationConfig

__all__ = ["World"]


@dataclass
class World:
    """Mutable simulation state shared by the engine and the scheme."""

    config: SimulationConfig
    field: Field
    sensors: List[Sensor]
    radio: Radio
    tree: ConnectivityTree
    stats: MessageStats
    routing: RoutingCostModel
    rng: random.Random
    time: float = 0.0
    period_index: int = 0
    #: Bumped whenever the *set* of live sensors changes (failure or mid-run
    #: injection).  Cache epochs include it, so population churn invalidates
    #: derived structures even when no surviving sensor moved.
    population_version: int = 0
    #: Fast-path switches; the brute-force implementations remain available
    #: (and are compared against the fast paths by the spatial parity tests).
    use_neighbor_cache: bool = True
    use_incremental_coverage: bool = True
    #: Telemetry distribution point: the engine installs its collector
    #: here, so schemes / tree repair / fault injection reach it through
    #: the world they already hold.  The shared null instance makes the
    #: default a no-op.
    telemetry: Telemetry = field(
        default=NULL_TELEMETRY, repr=False, compare=False
    )
    #: Delivery-condition model consulted at protocol decision points.
    #: The shared perfect instance is a pass-through, so the default is
    #: byte-identical to the pre-conditions behaviour; the run layer
    #: installs an ``UnreliableNetwork`` when the spec asks for one.
    network: NetworkModel = field(
        default=PERFECT_NETWORK, repr=False, compare=False
    )
    _neighbor_cache: Optional[NeighborCache] = field(
        default=None, init=False, repr=False, compare=False
    )
    _coverage_trackers: Dict[Tuple[float, float], IncrementalCoverage] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def create(
        config: SimulationConfig,
        field: Field,
        initial_positions: Optional[Sequence[Vec2]] = None,
        placement: Optional[Callable[..., Sequence[Vec2]]] = None,
    ) -> "World":
        """Build a world with sensors placed at their initial positions.

        The placement is drawn exactly once, from the world's own RNG
        stream.  ``placement`` is a strategy callable
        ``(config, field, rng) -> positions`` (the scenario layer passes
        registered strategies here); when omitted, the positions are drawn
        according to ``config.clustered_start`` (clustered lower-left
        quadrant, the paper's main setting, or uniform over the field).
        Explicit ``initial_positions`` bypass the draw entirely.
        """
        rng = random.Random(config.seed)
        if initial_positions is None:
            if placement is not None:
                initial_positions = list(placement(config, field, rng))
            elif config.clustered_start:
                # The paper clusters the initial distribution in the lower-left
                # quadrant (500 x 500 m of a 1000 x 1000 m field); scale the
                # cluster with the field so reduced-scale runs keep the shape.
                initial_positions = clustered_initial_positions(
                    config.sensor_count,
                    rng,
                    cluster_size=field.width / 2.0,
                    field=field,
                )
            else:
                initial_positions = uniform_initial_positions(
                    config.sensor_count, rng, field
                )
        if len(initial_positions) != config.sensor_count:
            raise ValueError(
                "number of initial positions does not match sensor_count"
            )
        sensors = [
            Sensor(
                sensor_id=i,
                motion=MotionModel(
                    position=pos,
                    max_speed=config.max_speed,
                    period=config.period,
                ),
                communication_range=config.communication_range,
                sensing_range=config.sensing_range,
            )
            for i, pos in enumerate(initial_positions)
        ]
        stats = MessageStats()
        return World(
            config=config,
            field=field,
            sensors=sensors,
            radio=Radio(field),
            tree=ConnectivityTree(),
            stats=stats,
            routing=RoutingCostModel(stats),
            rng=rng,
        )

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def sensor(self, sensor_id: int) -> Sensor:
        """The sensor with the given id."""
        return self.sensors[sensor_id]

    @property
    def base_station(self) -> Vec2:
        """Position of the base station / reference point."""
        return self.config.base_station

    def positions(self) -> List[Vec2]:
        """Current positions of all sensors, in id order."""
        return [s.position for s in self.sensors]

    def alive_sensors(self) -> List[Sensor]:
        """The operational (non-FAILED) sensors, in id order.

        Returns the ``sensors`` list itself while no sensor has failed, so
        static runs take exactly the pre-lifecycle code paths.
        """
        sensors = self.sensors
        alive = [s for s in sensors if s.state is not SensorState.FAILED]
        return sensors if len(alive) == len(sensors) else alive

    def alive_count(self) -> int:
        """Number of operational sensors."""
        return sum(1 for s in self.sensors if s.state is not SensorState.FAILED)

    def _cache(self) -> NeighborCache:
        if self._neighbor_cache is None:
            self._neighbor_cache = NeighborCache(self)
        return self._neighbor_cache

    def neighbor_table(self) -> Dict[int, List[int]]:
        """Current neighbour lists (ids within communication range)."""
        if self.use_neighbor_cache:
            return self._cache().neighbor_table()
        return self.radio.neighbor_table(self.alive_sensors())

    def neighbor_pairs(self, extra_radius: float = 0.0, with_d2: bool = False):
        """Directed neighbour pairs ``(rows, cols[, d2])`` as index arrays.

        The flat-array view of :meth:`neighbor_table` (same accepted pairs,
        same ordering; ``extra_radius`` inflates the acceptance) used by
        the batched CPVF kernel; see
        :meth:`repro.spatial.NeighborCache.neighbor_pairs`.
        """
        if self.use_neighbor_cache:
            return self._cache().neighbor_pairs(extra_radius, with_d2)
        from ..spatial.cache import pairs_from_table

        alive = self.alive_sensors()
        rows, cols, d2 = pairs_from_table(
            alive, self.radio.neighbor_table(alive)
        )
        if len(alive) != len(self.sensors):
            # pairs_from_table emits positions into the alive subset; the
            # batched kernel indexes whole-population arrays, so remap to
            # full-list indices (== sensor ids).
            ids = np.fromiter(
                (s.sensor_id for s in alive), dtype=np.intp, count=len(alive)
            )
            rows = ids[rows]
            cols = ids[cols]
        if with_d2:
            return rows, cols, d2
        return rows, cols

    def pairs_maintenance_hint(self, extra_radius: float = 0.0) -> str:
        """``"incremental"`` or ``"rebuild"`` — how the next
        :meth:`neighbor_pairs` call at this radius will be served (see
        :meth:`repro.spatial.NeighborCache.pairs_maintenance_hint`).
        Always ``"rebuild"`` with the cache disabled."""
        if not self.use_neighbor_cache:
            return "rebuild"
        return self._cache().pairs_maintenance_hint(extra_radius)

    def pairs_maintenance_last(self) -> Optional[str]:
        """Kind of the most recent pair answer ("memo"/"derived"/
        "serve"/"repair"/"rebuild"/"bypass"), ``None`` before the first
        request or with the cache disabled."""
        if not self.use_neighbor_cache or self._neighbor_cache is None:
            return None
        return self._neighbor_cache.pair_events["last"]

    def neighbor_rows(self, sensor_ids: Sequence[int]) -> Dict[int, List[int]]:
        """Neighbour lists for a subset of sensors (see the cache method).

        Falls back to slicing the full table when the cache is disabled.
        """
        if self.use_neighbor_cache:
            return self._cache().neighbor_rows(sensor_ids)
        table = self.radio.neighbor_table(self.alive_sensors())
        return {sid: list(table.get(sid, ())) for sid in sensor_ids}

    def protocol_neighbor_table(self) -> Dict[int, List[int]]:
        """Neighbour table as the *protocol* layer sees it.

        Routed through the network model: live under the perfect network,
        possibly aged under :class:`~repro.network.conditions
        .UnreliableNetwork` staleness.  Physics queries (coverage,
        connectivity, movement validation) must keep using
        :meth:`neighbor_table`.
        """
        return self.network.neighbor_table(self)

    def protocol_neighbor_rows(
        self, sensor_ids: Sequence[int]
    ) -> Dict[int, List[int]]:
        """Per-sensor neighbour rows as the protocol layer sees them."""
        return self.network.neighbor_rows(self, sensor_ids)

    def sensors_near_base_station(self) -> List[int]:
        """Sensors within one hop of the base station."""
        if self.use_neighbor_cache:
            return self._cache().base_station_neighbors()
        return self.radio.neighbors_of_point(
            self.base_station, self.alive_sensors(), self.config.communication_range
        )

    def connected_component_of(self) -> Set[int]:
        """Ids of sensors reachable from the base station via multi-hop links."""
        if self.use_neighbor_cache:
            return self._cache().connected_component()
        return self.radio.connected_component_of(
            self.alive_sensors(), self.base_station, self.config.communication_range
        )

    def connected_sensor_ids(self) -> List[int]:
        """Sensors currently marked as connected (any connected state)."""
        return [s.sensor_id for s in self.sensors if s.is_connected()]

    # ------------------------------------------------------------------
    # Global metrics
    # ------------------------------------------------------------------
    def coverage(self) -> float:
        """Fraction of non-obstacle field area covered by sensing disks.

        The incremental tracker re-rasterises only the disks of sensors
        that moved since the previous call; the result is identical to the
        brute-force ``Field.coverage_fraction`` scan.
        """
        alive = self.alive_sensors()
        if not self.use_incremental_coverage:
            return self.field.coverage_fraction(
                [s.position for s in alive],
                self.config.sensing_range,
                self.config.coverage_resolution,
            )
        key = (self.config.sensing_range, self.config.coverage_resolution)
        tracker = self._coverage_trackers.get(key)
        if tracker is None:
            tracker = IncrementalCoverage(self.field, key[0], key[1])
            self._coverage_trackers[key] = tracker
        tracker.update([(s.position.x, s.position.y) for s in alive])
        return tracker.covered_fraction()

    def network_is_connected(self) -> bool:
        """Whether every live sensor has a multi-hop route to the base station."""
        if self.use_neighbor_cache:
            return len(self.connected_component_of()) == self.alive_count()
        return self.radio.network_is_connected(
            self.alive_sensors(), self.base_station, self.config.communication_range
        )

    def total_moving_distance(self) -> float:
        """Sum of all sensors' odometers."""
        return sum(s.moving_distance for s in self.sensors)

    def average_moving_distance(self) -> float:
        """Average odometer reading per sensor."""
        if not self.sensors:
            return 0.0
        return self.total_moving_distance() / len(self.sensors)

    # ------------------------------------------------------------------
    # Position commits
    # ------------------------------------------------------------------
    def commit_moves(
        self, moves: Sequence[Tuple[Sensor, float, float, float]]
    ) -> None:
        """Apply a batch of validated ``(sensor, x, y, distance)`` moves.

        The single commit point of the batched CPVF path: one color class
        commits here in one pass, and each sensor's position is assigned
        exactly once (a single ``position_version`` bump per sensor per
        class), so the neighbour cache's epoch advances once per moved
        sensor rather than once per intermediate assignment.  The
        odometer distances arrive precomputed from the class's batch
        arrays.
        """
        for sensor, x, y, dist in moves:
            sensor.motion.commit_move(x, y, dist)

    # ------------------------------------------------------------------
    # Tree maintenance helpers
    # ------------------------------------------------------------------
    def attach_to_tree(self, sensor_id: int, parent_id: int) -> None:
        """Attach a sensor to the connectivity tree and update its record."""
        self.tree.attach(sensor_id, parent_id)
        sensor = self.sensor(sensor_id)
        sensor.set_parent(parent_id, self.tree.ancestors_of(sensor_id))
        if not sensor.state.is_connected():
            sensor.state = SensorState.CONNECTED
        if parent_id != BASE_STATION_ID:
            self.sensor(parent_id).children.add(sensor_id)

    def reparent_in_tree(self, sensor_id: int, new_parent_id: int) -> bool:
        """Re-parent a sensor; keeps sensor-side records in sync."""
        old_parent = self.tree.parent_of(sensor_id)
        if not self.tree.reparent(sensor_id, new_parent_id):
            return False
        sensor = self.sensor(sensor_id)
        sensor.set_parent(new_parent_id, self.tree.ancestors_of(sensor_id))
        if old_parent is not None and old_parent != BASE_STATION_ID:
            self.sensor(old_parent).children.discard(sensor_id)
        if new_parent_id != BASE_STATION_ID:
            self.sensor(new_parent_id).children.add(sensor_id)
        return True

    # ------------------------------------------------------------------
    # Population churn (fault injection)
    # ------------------------------------------------------------------
    def add_sensor(self, position: Vec2) -> Sensor:
        """Inject a new (disconnected) sensor at ``position``.

        The sensor is appended so its id equals its list index, preserving
        the id-as-index invariant every fast path relies on.  The position
        is clamped to the field and pushed out of obstacles.
        """
        pos = self.field.nearest_free(self.field.clamp(position))
        sensor = Sensor(
            sensor_id=len(self.sensors),
            motion=MotionModel(
                position=pos,
                max_speed=self.config.max_speed,
                period=self.config.period,
            ),
            communication_range=self.config.communication_range,
            sensing_range=self.config.sensing_range,
        )
        self.sensors.append(sensor)
        self.population_version += 1
        if self._neighbor_cache is not None:
            self._neighbor_cache.invalidate()
        return sensor

    def remove_sensor(self, sensor_id: int) -> List[int]:
        """Mark a sensor FAILED and repair the connectivity tree around it.

        The dead sensor keeps its slot in ``sensors`` (ids stay equal to
        indices) but leaves the tree; each orphaned subtree is re-rooted at
        a member with a live link back to the remaining tree (or to the
        base station) and re-attached there.  Subtrees with no such link
        fall out of the tree entirely — their members revert to
        DISCONNECTED and are returned so the scheme can send them walking
        again.
        """
        sensor = self.sensor(sensor_id)
        if sensor.state is SensorState.FAILED:
            return []
        sensor.motion.stop()
        sensor.state = SensorState.FAILED
        sensor.path_parent_id = None
        sensor.idle_periods = 0
        self.population_version += 1
        if self._neighbor_cache is not None:
            self._neighbor_cache.invalidate()
        with self.telemetry.span("tree.repair"):
            disconnected = self._repair_tree_after_failure(sensor_id)
        if self.telemetry.enabled:
            self.telemetry.count("tree.repairs", 1)
            self.telemetry.count("tree.repair_dropped", len(disconnected))
        sensor.parent_id = None
        sensor.children = set()
        sensor.ancestors = []
        return disconnected

    def notify_field_changed(self) -> None:
        """Invalidate structures derived from the field's obstacle set.

        Call after mutating ``field.obstacles`` (lifecycle obstacle
        events): coverage trackers rasterised the old obstacle mask and
        the neighbour cache may hold line-of-sight answers.
        """
        self._coverage_trackers.clear()
        if self._neighbor_cache is not None:
            self._neighbor_cache.invalidate()

    def _repair_tree_after_failure(self, sensor_id: int) -> List[int]:
        """Re-attach (or drop) the subtrees orphaned by a node death."""
        tree = self.tree
        if sensor_id not in tree.parent:
            return []
        parent_id = tree.parent_of(sensor_id)
        orphan_roots = tree.remove_node(sensor_id)
        if parent_id is not None and parent_id != BASE_STATION_ID:
            self.sensor(parent_id).children.discard(sensor_id)
        if not orphan_roots:
            return []
        anchored = tree.subtree_of(BASE_STATION_ID)
        dropped: List[int] = []
        pending = list(orphan_roots)
        progress = True
        # An orphan subtree may only reach the main tree through another
        # orphan that re-attaches first, so iterate to a fixpoint.
        while pending and progress:
            progress = False
            remaining: List[int] = []
            for root in pending:
                if self._reattach_orphan_subtree(root, anchored):
                    progress = True
                else:
                    remaining.append(root)
            pending = remaining
        for root in pending:
            members = tree.discard_floating(root)
            for member_id in members:
                member = self.sensor(member_id)
                member.state = SensorState.DISCONNECTED
                member.parent_id = None
                member.children = set()
                member.ancestors = []
            dropped.extend(members)
        return sorted(dropped)

    def _reattach_orphan_subtree(self, root: int, anchored: Set[int]) -> bool:
        """Try to re-attach one floating subtree to the anchored tree.

        Every subtree member probes its neighbourhood (one TREE_REPAIR
        transmission each); the member with the shortest live link to an
        anchored node becomes the subtree's new root and attaches there.
        On success ``anchored`` is extended with the subtree's members.

        Under a lossy network the two-message attach handshake (new-root
        announcement + attach request) retransmits with exponential
        backoff up to the delivery budget; if it still fails the subtree
        is treated as unreachable this round — the caller's fixpoint may
        retry it via another orphan, else it is discarded and its members
        revert to DISCONNECTED (the existing safe state).
        """
        tree = self.tree
        members = sorted(tree.subtree_of(root))
        member_set = set(members)
        rows = self.neighbor_rows(members)
        self.stats.record_transmissions(MessageType.TREE_REPAIR, len(members))
        best: Optional[Tuple[float, int, int]] = None
        rc = self.config.communication_range
        for member_id in members:
            pos = self.sensor(member_id).position
            base_distance = pos.distance_to(self.base_station)
            if self.radio.link_exists(pos, self.base_station, rc):
                candidate = (base_distance, member_id, BASE_STATION_ID)
                if best is None or candidate < best:
                    best = candidate
            for neighbor_id in rows.get(member_id, ()):
                if neighbor_id in member_set or neighbor_id not in anchored:
                    continue
                distance = pos.distance_to(self.sensor(neighbor_id).position)
                candidate = (distance, member_id, neighbor_id)
                if best is None or candidate < best:
                    best = candidate
        if best is None:
            return False
        _, new_root, anchor_id = best
        delivered, attempts = self.network.exchange(
            self, ("tree.repair", root, new_root, anchor_id), 2
        )
        # New root announcement + attach request (per delivery attempt).
        self.stats.record_transmissions(MessageType.TREE_REPAIR, 2 * attempts)
        if not delivered:
            return False
        tree.reroot_floating(root, new_root)
        tree.attach(new_root, anchor_id)
        for member_id in members:
            member = self.sensor(member_id)
            member.set_parent(tree.parent_of(member_id), tree.ancestors_of(member_id))
            member.children = tree.children_of(member_id)
        if anchor_id != BASE_STATION_ID:
            self.sensor(anchor_id).children.add(new_root)
        anchored.update(member_set)
        self.telemetry.count("tree.repair_reattached", len(members))
        return True
