"""The period-synchronous simulation engine.

The paper's protocols are defined at the granularity of a *period*: a sensor
moves in a straight line for ``T`` seconds, then decides its next step.  The
engine therefore advances the world one period at a time, delegating all
decisions to a :class:`DeploymentScheme`, and records a metric trace
(coverage, moving distance, message counts) that the experiment harness
turns into the paper's tables and figures.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..metrics.recovery import EventOutcome
from ..obs import NULL_TELEMETRY, PeriodTrace, Telemetry, TelemetrySummary
from .lifecycle import FaultInjector, LifecycleEvent, WorldChange
from .world import World

__all__ = ["DeploymentScheme", "TraceRecord", "SimulationResult", "SimulationEngine"]


class DeploymentScheme(abc.ABC):
    """Interface every deployment scheme implements."""

    #: Human-readable scheme name used in experiment reports.
    name: str = "scheme"

    @abc.abstractmethod
    def initialize(self, world: World) -> None:
        """One-time setup before the first period (state assignment etc.)."""

    @abc.abstractmethod
    def step(self, world: World) -> None:
        """Execute one decision period for every sensor."""

    def has_converged(self, world: World) -> bool:
        """Whether the layout has stabilised (engines may stop early)."""
        return False

    def on_world_changed(self, world: World, change: WorldChange) -> None:
        """Hook: a lifecycle event mutated the world between periods.

        Schemes override this to react to churn — re-dispatch sensors the
        tree repair dropped, evict dead registry entries, invalidate paths
        crossing a new obstacle.  The default is a no-op: a scheme that
        only reads the world each period is already churn-safe.
        """


@dataclass(frozen=True)
class TraceRecord:
    """Metrics snapshot taken at the end of a period."""

    time: float
    coverage: float
    average_moving_distance: float
    total_messages: int
    connected_sensors: int


@dataclass
class SimulationResult:
    """Outcome of a complete simulation run."""

    scheme_name: str
    final_coverage: float
    average_moving_distance: float
    total_moving_distance: float
    total_messages: int
    connected: bool
    periods_executed: int
    converged_at: Optional[int]
    trace: List[TraceRecord] = field(default_factory=list)
    #: Recovery metrics, one entry per fired lifecycle event.
    events: List[EventOutcome] = field(default_factory=list)
    world: Optional[World] = None
    #: Phase-time breakdown + counter totals; ``None`` unless the engine
    #: ran with an enabled Telemetry.
    telemetry: Optional[TelemetrySummary] = None

    def messages_per_node(self) -> float:
        """Average protocol transmissions per sensor."""
        if self.world is None or not self.world.sensors:
            return 0.0
        return self.total_messages / len(self.world.sensors)


class SimulationEngine:
    """Runs a deployment scheme over a world for the configured horizon."""

    def __init__(
        self,
        world: World,
        scheme: DeploymentScheme,
        trace_every: Optional[int] = 50,
        stop_on_convergence: bool = True,
        keep_world: bool = True,
        events: Sequence[LifecycleEvent] = (),
        recovery_target: float = 0.95,
        burst_window: int = 25,
        telemetry: Optional[Telemetry] = None,
    ):
        self._world = world
        self._scheme = scheme
        # ``None`` disables periodic tracing entirely: no per-period
        # coverage measurement is paid for a trace nobody asked for.
        self._trace_every = None if trace_every is None else max(1, trace_every)
        self._stop_on_convergence = stop_on_convergence
        self._keep_world = keep_world
        self._events = tuple(events)
        self._recovery_target = recovery_target
        self._burst_window = burst_window
        self._telemetry = telemetry if telemetry is not None else NULL_TELEMETRY

    @property
    def world(self) -> World:
        """The world being simulated."""
        return self._world

    def run(self) -> SimulationResult:
        """Execute the simulation and return the aggregated result."""
        world = self._world
        scheme = self._scheme
        tel = self._telemetry
        world.telemetry = tel
        with tel.span("engine.initialize"):
            scheme.initialize(world)

        trace: List[TraceRecord] = []
        converged_at: Optional[int] = None
        max_periods = world.config.max_periods
        # No timeline, no injector: static runs take the exact pre-lifecycle
        # period loop (and pay none of the per-period accounting).
        injector = (
            FaultInjector(
                world,
                scheme,
                self._events,
                recovery_target=self._recovery_target,
                burst_window=self._burst_window,
            )
            if self._events
            else None
        )

        trace_every = self._trace_every
        for period in range(max_periods):
            world.period_index = period
            # Let the network model observe the clock (staleness refresh,
            # latency bookkeeping).  A no-op for the perfect network.
            world.network.on_period(world)
            if injector is not None:
                with tel.span("engine.fault_injection"):
                    fired = injector.fire(period)
                if fired:
                    # The world just changed; earlier convergence is void.
                    converged_at = None
            with tel.span("engine.scheme_step"):
                scheme.step(world)
            world.time += world.config.period
            if injector is not None:
                with tel.span("engine.fault_injection"):
                    injector.observe(period)

            if trace_every is not None and (
                (period + 1) % trace_every == 0 or period == max_periods - 1
            ):
                with tel.span("engine.trace"):
                    period_trace = PeriodTrace(
                        period=period,
                        time=world.time,
                        coverage=world.coverage(),
                        average_moving_distance=world.average_moving_distance(),
                        total_messages=world.stats.total(),
                        connected_sensors=len(world.connected_sensor_ids()),
                    )
                # One mechanism: the same per-period event feeds both the
                # result trace and the telemetry sink.
                tel.record_period(period_trace)
                trace.append(
                    TraceRecord(
                        time=period_trace.time,
                        coverage=period_trace.coverage,
                        average_moving_distance=period_trace.average_moving_distance,
                        total_messages=period_trace.total_messages,
                        connected_sensors=period_trace.connected_sensors,
                    )
                )

            if scheme.has_converged(world):
                if converged_at is None:
                    converged_at = period + 1
                if self._stop_on_convergence and (
                    injector is None or not injector.has_pending(period)
                ):
                    break

        # The last trace record (when one was taken this period) already
        # holds the final coverage; don't measure the same layout twice.
        if trace and trace[-1].time == world.time:
            final_coverage = trace[-1].coverage
        else:
            with tel.span("engine.trace"):
                final_coverage = world.coverage()
        summary: Optional[TelemetrySummary] = None
        if tel.enabled:
            tel.count("engine.periods", world.period_index + 1)
            tel.merge_counters(world.stats.to_counters())
            summary = tel.summary()
        result = SimulationResult(
            scheme_name=scheme.name,
            final_coverage=final_coverage,
            average_moving_distance=world.average_moving_distance(),
            total_moving_distance=world.total_moving_distance(),
            total_messages=world.stats.total(),
            connected=world.network_is_connected(),
            periods_executed=world.period_index + 1,
            converged_at=converged_at,
            trace=trace,
            events=injector.outcomes() if injector is not None else [],
            world=world if self._keep_world else None,
            telemetry=summary,
        )
        return result
