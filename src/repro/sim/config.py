"""Simulation configuration.

The default values follow Section 4.3 / 6 of the paper: a 1000 x 1000 m
field, 240 sensors initially clustered in the 500 x 500 m lower-left
quadrant, base station at the origin, maximum speed 2 m/s, one-second
periods and a 750-second horizon, with ``rc`` and ``rs`` between 30 and
60 m.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..geometry import Vec2

__all__ = ["SimulationConfig"]


@dataclass(frozen=True)
class SimulationConfig:
    """All scalar parameters of one deployment simulation."""

    #: Number of mobile sensors.
    sensor_count: int = 240
    #: Communication range ``rc`` in metres.
    communication_range: float = 60.0
    #: Sensing range ``rs`` in metres.
    sensing_range: float = 40.0
    #: Maximum moving speed ``V`` in metres per second.
    max_speed: float = 2.0
    #: Period length ``T`` in seconds.
    period: float = 1.0
    #: Simulation horizon in seconds (the paper runs 750 s).
    duration: float = 750.0
    #: Base-station / reference-point location ``O``.
    base_station: Vec2 = field(default=Vec2(0.0, 0.0))
    #: Grid resolution (metres) used when measuring coverage.
    coverage_resolution: float = 10.0
    #: Random seed for reproducibility.
    seed: int = 1
    #: Whether sensors start clustered in the lower-left quadrant
    #: (``True``, the paper's main setting) or uniformly over the field.
    clustered_start: bool = True
    #: Invitation random-walk TTL, as used by FLOOR; ``None`` selects the
    #: paper's default of ``0.2 * N``.
    invitation_ttl: Optional[int] = None
    #: Oscillation-avoidance factor delta for CPVF (``None`` disables it).
    oscillation_delta: Optional[float] = None
    #: Oscillation-avoidance mode: "one-step" or "two-step".
    oscillation_mode: str = "one-step"

    @property
    def max_periods(self) -> int:
        """Number of decision periods in the simulation horizon."""
        return int(round(self.duration / self.period))

    @property
    def max_step(self) -> float:
        """Maximum step size ``V * T`` in metres."""
        return self.max_speed * self.period

    def effective_invitation_ttl(self) -> int:
        """The invitation TTL actually used (default ``0.2 * N``)."""
        if self.invitation_ttl is not None:
            return max(1, int(self.invitation_ttl))
        return max(1, int(round(0.2 * self.sensor_count)))

    def with_overrides(self, **kwargs) -> "SimulationConfig":
        """A copy of the configuration with some fields replaced."""
        return replace(self, **kwargs)
