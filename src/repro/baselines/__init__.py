"""Baseline schemes: OPT strip pattern, VOR, Minimax and the explosion step."""

from .explosion import ExplosionResult, explode
from .opt_pattern import OptStripPattern
from .vd_schemes import MinimaxScheme, VDSchemeResult, VorScheme

__all__ = [
    "ExplosionResult",
    "explode",
    "OptStripPattern",
    "MinimaxScheme",
    "VDSchemeResult",
    "VorScheme",
]
