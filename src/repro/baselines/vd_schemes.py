"""The Voronoi-diagram based baselines VOR and Minimax (Wang et al., INFOCOM'04).

Both schemes are round-based and *connectivity-ignorant*: in every round each
sensor constructs its Voronoi cell from the neighbours it can hear (i.e. the
ones within communication range — which is why small ``rc/rs`` yields
incorrect cells, Fig 1/10 of the paper) and then moves:

* **VOR** — toward its farthest Voronoi vertex, stopping when its sensing
  range reaches that vertex, and never moving more than ``rc / 2`` in one
  round;
* **Minimax** — to the point of its cell minimising the distance to its
  farthest Voronoi vertex (the centre of the minimum enclosing circle of the
  cell's vertices).

The implementations operate directly on position lists (they are not
period-based like CPVF/FLOOR); the experiment harness combines them with
the explosion procedure of :mod:`repro.baselines.explosion` when the initial
distribution is clustered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..field import Field
from ..geometry import Vec2
from ..voronoi import compute_cell
from ..voronoi.local import local_cell

__all__ = ["VDSchemeResult", "VorScheme", "MinimaxScheme"]


@dataclass
class VDSchemeResult:
    """Outcome of running a VD-based scheme for a number of rounds."""

    final_positions: List[Vec2]
    per_sensor_distance: List[float]
    rounds_executed: int

    @property
    def total_distance(self) -> float:
        """Sum of all sensors' travelled distances."""
        return sum(self.per_sensor_distance)

    @property
    def average_distance(self) -> float:
        """Average travelled distance per sensor."""
        if not self.per_sensor_distance:
            return 0.0
        return self.total_distance / len(self.per_sensor_distance)


class _VDSchemeBase:
    """Shared round loop of the two VD-based schemes."""

    name = "VD"

    def __init__(
        self,
        field: Field,
        communication_range: float,
        sensing_range: float,
        use_local_cells: bool = True,
    ):
        """``use_local_cells`` restricts cell construction to neighbours
        within ``rc`` (the realistic setting); disable it to study the
        idealised full-information variant."""
        self._field = field
        self._rc = communication_range
        self._rs = sensing_range
        self._use_local_cells = use_local_cells

    # ------------------------------------------------------------------
    # Per-sensor move target (scheme-specific)
    # ------------------------------------------------------------------
    def _move_target(self, cell, position: Vec2) -> Optional[Vec2]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Round loop
    # ------------------------------------------------------------------
    def run(
        self,
        initial_positions: Sequence[Vec2],
        rounds: int = 10,
        movement_tolerance: float = 1e-3,
    ) -> VDSchemeResult:
        """Run the scheme for up to ``rounds`` rounds.

        Stops early when no sensor moves more than ``movement_tolerance`` in
        a round (the layout has stabilised).
        """
        positions = [self._field.nearest_free(p) for p in initial_positions]
        distances = [0.0] * len(positions)
        executed = 0
        bounding = self._field.boundary_polygon()

        for _ in range(rounds):
            executed += 1
            new_positions = list(positions)
            moved = 0.0
            for i, position in enumerate(positions):
                if self._use_local_cells:
                    cell = local_cell(i, positions, self._rc, self._field)
                else:
                    others = [p for j, p in enumerate(positions) if j != i]
                    cell = compute_cell(position, others, bounding)
                target = self._move_target(cell, position)
                if target is None:
                    continue
                target = self._field.nearest_free(self._field.clamp(target))
                step = position.distance_to(target)
                if step <= movement_tolerance:
                    continue
                new_positions[i] = target
                distances[i] += step
                moved = max(moved, step)
            positions = new_positions
            if moved <= movement_tolerance:
                break
        return VDSchemeResult(
            final_positions=positions,
            per_sensor_distance=distances,
            rounds_executed=executed,
        )

    # ------------------------------------------------------------------
    # Evaluation helpers
    # ------------------------------------------------------------------
    def coverage(self, positions: Sequence[Vec2], resolution: float = 10.0) -> float:
        """Coverage fraction of a position snapshot."""
        return self._field.coverage_fraction(positions, self._rs, resolution)


class VorScheme(_VDSchemeBase):
    """The VOR baseline: move toward the farthest Voronoi vertex."""

    name = "VOR"

    def _move_target(self, cell, position: Vec2) -> Optional[Vec2]:
        farthest = cell.farthest_vertex()
        if farthest is None:
            return None
        distance_to_vertex = position.distance_to(farthest)
        if distance_to_vertex <= self._rs:
            # The farthest vertex is already sensed; no move needed.
            return None
        # Move so that the sensing range just reaches the vertex, but no
        # farther than rc / 2 per round.
        desired = distance_to_vertex - self._rs
        step = min(desired, self._rc / 2.0)
        return position + position.towards(farthest) * step


class MinimaxScheme(_VDSchemeBase):
    """The Minimax baseline: move to the cell's minimax point."""

    name = "Minimax"

    def _move_target(self, cell, position: Vec2) -> Optional[Vec2]:
        return cell.minimax_point()
