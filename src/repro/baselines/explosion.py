"""The "explosion" dispersal step for VOR / Minimax (Section 6.2).

When sensors start densely clustered in a sub-area, the VD-based schemes
first need an explosion procedure that disperses them into an approximately
uniform random distribution before the round-based Voronoi adjustment can
make progress.  The paper charges this stage its *minimum possible* total
moving distance by modelling the choice of destination for each sensor as a
minimum weighted bipartite matching, solved with the Hungarian algorithm —
which gives VOR and Minimax a best-case moving-distance baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..assignment import minimum_distance_matching
from ..field import Field, uniform_initial_positions
from ..geometry import Vec2

__all__ = ["ExplosionResult", "explode"]


@dataclass
class ExplosionResult:
    """Outcome of the explosion dispersal."""

    positions: List[Vec2]
    per_sensor_distance: List[float]

    @property
    def total_distance(self) -> float:
        """Total distance travelled during the explosion."""
        return sum(self.per_sensor_distance)

    @property
    def average_distance(self) -> float:
        """Average distance travelled per sensor."""
        if not self.per_sensor_distance:
            return 0.0
        return self.total_distance / len(self.per_sensor_distance)


def explode(
    initial_positions: Sequence[Vec2],
    field: Field,
    rng,
    target_positions: Sequence[Vec2] | None = None,
) -> ExplosionResult:
    """Disperse clustered sensors to a uniform random layout at minimum cost.

    ``target_positions`` may be supplied explicitly (e.g. a layout produced
    by another scheme, for the Fig 11 lower bounds); when omitted, a fresh
    uniform random layout over the field's free space is drawn with ``rng``.
    The assignment of sensors to destinations is the minimum-total-distance
    matching (Hungarian algorithm).
    """
    sources = list(initial_positions)
    if target_positions is None:
        targets: List[Vec2] = uniform_initial_positions(len(sources), rng, field)
    else:
        targets = list(target_positions)
    if len(targets) != len(sources):
        raise ValueError("number of targets must equal number of sensors")

    assignment, _ = minimum_distance_matching(
        [p.as_tuple() for p in sources], [p.as_tuple() for p in targets]
    )
    final_positions: List[Vec2] = [targets[assignment[i]] for i in range(len(sources))]
    distances = [
        sources[i].distance_to(final_positions[i]) for i in range(len(sources))
    ]
    return ExplosionResult(positions=final_positions, per_sensor_distance=distances)
