"""The OPT strip-based deployment pattern (Bai et al., MobiHoc'06).

Bai et al. prove that, in an obstacle-free plane, placing sensors in
horizontal strips with intra-strip spacing ``d1 = min(rc, sqrt(3) * rs)``
and inter-strip spacing ``d2 = rs + sqrt(rs^2 - d1^2 / 4)`` (strips offset
by ``d1 / 2``, plus one vertical connecting column) achieves asymptotically
optimal coverage with one-connectivity.  The paper uses this centralised
pattern as the coverage upper baseline (Fig 9) and as a target layout for
the Hungarian moving-distance lower bound (Fig 11).

The pattern is only defined for obstacle-free rectangular fields, exactly
as in the paper's evaluation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from ..field import Field
from ..geometry import Vec2

__all__ = ["OptStripPattern"]


@dataclass
class OptStripPattern:
    """Generates OPT pattern positions for a given field and radio ranges."""

    field: Field
    communication_range: float
    sensing_range: float

    def __post_init__(self) -> None:
        if self.field.obstacles:
            raise ValueError("the OPT strip pattern requires an obstacle-free field")
        if self.communication_range <= 0 or self.sensing_range <= 0:
            raise ValueError("ranges must be positive")

    # ------------------------------------------------------------------
    # Pattern geometry
    # ------------------------------------------------------------------
    @property
    def intra_strip_spacing(self) -> float:
        """Horizontal spacing ``d1 = min(rc, sqrt(3) * rs)``."""
        return min(self.communication_range, math.sqrt(3.0) * self.sensing_range)

    @property
    def inter_strip_spacing(self) -> float:
        """Vertical spacing ``d2 = rs + sqrt(rs^2 - d1^2 / 4)``."""
        d1 = self.intra_strip_spacing
        inner = self.sensing_range**2 - (d1**2) / 4.0
        return self.sensing_range + math.sqrt(max(0.0, inner))

    def full_pattern_positions(self) -> List[Vec2]:
        """All pattern positions needed to cover the field.

        Positions are generated strip by strip from the bottom, each strip
        filled left to right, alternate strips offset by ``d1 / 2``; a
        vertical column of connector nodes along the left edge links the
        strips so the pattern is one-connected for any ``rc``.
        """
        d1 = self.intra_strip_spacing
        d2 = self.inter_strip_spacing
        width, height = self.field.width, self.field.height
        positions: List[Vec2] = []

        strip_count = int(math.ceil(height / d2))
        for row in range(strip_count):
            y = min(height, d2 / 2.0 + row * d2)
            offset = (d1 / 2.0) if row % 2 == 1 else 0.0
            x = offset + d1 / 2.0
            while x <= width:
                positions.append(Vec2(min(x, width), y))
                x += d1

        # Connector column along the left edge (spacing rc so it is itself
        # connected), linking consecutive strips when d2 > rc.
        if d2 > self.communication_range:
            y = self.communication_range
            while y < height:
                positions.append(Vec2(d1 / 4.0, y))
                y += self.communication_range
        return positions

    def positions_for_count(self, count: int) -> List[Vec2]:
        """The first ``count`` pattern positions (strip-major order).

        When ``count`` exceeds the full pattern size the extra sensors are
        interleaved midway between existing pattern points (they add no
        coverage, matching the saturation the paper observes beyond ~300
        sensors).
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        full = self.full_pattern_positions()
        if count <= len(full):
            return full[:count]
        extras: List[Vec2] = []
        i = 0
        while len(full) + len(extras) < count:
            base = full[i % len(full)]
            extras.append(
                Vec2(
                    min(self.field.width, base.x + self.intra_strip_spacing / 2.0),
                    base.y,
                )
            )
            i += 1
        return full + extras

    # ------------------------------------------------------------------
    # Evaluation helpers
    # ------------------------------------------------------------------
    def coverage_for_count(self, count: int, resolution: float = 10.0) -> float:
        """Coverage fraction achieved by the first ``count`` pattern points."""
        return self.field.coverage_fraction(
            self.positions_for_count(count), self.sensing_range, resolution
        )

    def sensors_needed_for_full_coverage(self) -> int:
        """Size of the full pattern."""
        return len(self.full_pattern_positions())
