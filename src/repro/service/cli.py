"""Command-line face of the sweep service.

::

    python -m repro.service submit SWEEP.json --store runs/ --jobs 4
    python -m repro.service submit --experiment fig9 --scale smoke --store runs/
    python -m repro.service status SWEEP.json --store runs/
    python -m repro.service stats --store runs/
    python -m repro.service gc --store runs/ [--dry-run]

``submit`` executes a sweep through the async service — cells already in
the store are served without recompute, the rest stream per-cell progress
lines as they finish — and can persist the records (``--out``).
``status`` previews a resume: which cells of a sweep are already cached.
``stats`` and ``gc`` report on and reclaim the store.  Sweeps are given
either as a JSON file (the ``SweepSpec.to_dict`` shape, also accepted
inside a ``{"sweep": ...}`` wrapper) or by registered experiment name.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from ..api.specs import SweepSpec
from .service import SweepService
from .store import RunStore
from .workers import InlineWorkerPool, ProcessWorkerPool

__all__ = ["main"]


def _load_sweep(args: argparse.Namespace) -> SweepSpec:
    """The sweep named on the command line (JSON file or experiment)."""
    if (args.sweep is None) == (args.experiment is None):
        raise SystemExit("give exactly one of SWEEP.json or --experiment")
    if args.sweep is not None:
        payload = json.loads(Path(args.sweep).read_text())
        if "sweep" in payload and "runs" not in payload:
            payload = payload["sweep"]
        return SweepSpec.from_dict(payload)
    from ..experiments.common import BENCH_SCALE, FULL_SCALE, SMOKE_SCALE
    from ..experiments.runner import EXPERIMENTS

    scales = {"smoke": SMOKE_SCALE, "bench": BENCH_SCALE, "full": FULL_SCALE}
    if args.experiment not in EXPERIMENTS:
        raise SystemExit(
            f"unknown experiment {args.experiment!r}; "
            f"choose from {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[args.experiment].build(
        scales[args.scale], args.seed, None
    )


def _store_for(args: argparse.Namespace, required: bool = True) -> Optional[RunStore]:
    if args.store is None:
        if required:
            raise SystemExit("--store DIR is required for this command")
        return None
    return RunStore(args.store)


def _cmd_submit(args: argparse.Namespace) -> int:
    sweep = _load_sweep(args)
    store = _store_for(args, required=False)
    if args.jobs > 1 or args.pool == "process":
        pool = ProcessWorkerPool(max_workers=args.jobs)
    else:
        pool = InlineWorkerPool()
    service = SweepService(store=store, pool=pool, reuse=not args.refresh)

    async def drive():
        job = service.submit(sweep)
        async for event in job.events():
            if args.quiet:
                continue
            if event.status == "done":
                print(
                    f"[{job.id}] cell {event.index + 1}/{len(sweep.runs)} "
                    f"{event.scheme:<8s} {event.source:<8s} "
                    f"{event.elapsed:6.2f}s {event.fingerprint[:12]}"
                )
            elif event.status == "failed":
                print(
                    f"[{job.id}] cell {event.index + 1} FAILED: {event.error}",
                    file=sys.stderr,
                )
        return await job.result()

    try:
        records = asyncio.run(drive())
    finally:
        service.close()
    metrics = service.metrics
    if store is not None:
        # Accumulate into the store's sidecar so a later
        # ``stats --json`` reports service totals in the shared schema.
        store.merge_service_counters(metrics.to_counters())
    print(
        f"{sweep.name}: {len(records)} records — "
        f"{metrics.store_hits} store hits, "
        f"{metrics.inflight_hits} coalesced, "
        f"{metrics.computed} computed "
        f"(hit rate {metrics.cache_hit_rate():.0%})"
    )
    if args.out is not None:
        payload = {
            "sweep": sweep.name,
            "records": [record.to_dict() for record in records],
            "metrics": metrics.to_dict(),
            "counters": metrics.to_counters(),
        }
        Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"[wrote {args.out}]")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    sweep = _load_sweep(args)
    store = _store_for(args)
    missing = [spec for spec in sweep.runs if spec not in store]
    cached = len(sweep.runs) - len(missing)
    print(
        f"{sweep.name}: {cached}/{len(sweep.runs)} cells cached in "
        f"{store.root} — resume would compute {len(missing)}"
    )
    if args.verbose:
        for index, spec in enumerate(sweep.runs):
            state = "cached" if spec in store else "missing"
            print(
                f"  cell {index:>4d} {spec.scheme:<8s} "
                f"{spec.fingerprint()[:16]} {state}"
            )
    return 0 if not missing else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    store = _store_for(args)
    stats = store.stats()
    counters = store.service_counters()
    if args.json:
        # "counters" carries the accumulated ServiceMetrics in the shared
        # dotted schema (service.*), aggregatable with engine telemetry.
        print(json.dumps({**stats.to_dict(), "counters": counters}, indent=2))
        return 0
    print(f"store {stats.root} (schema v{stats.schema_version})")
    print(f"  entries: {stats.entries} ({stats.bytes} bytes)")
    print(f"  stale:   {stats.stale_entries} files ({stats.stale_bytes} bytes)")
    for name in sorted(counters):
        print(f"  {name}: {counters[name]}")
    return 0


def _cmd_gc(args: argparse.Namespace) -> int:
    report = _store_for(args).gc(dry_run=args.dry_run)
    verb = "would remove" if report.dry_run else "removed"
    print(
        f"gc: {verb} {report.removed_files} files "
        f"({report.removed_bytes} bytes); "
        f"{report.kept_entries} records kept"
    )
    return 0


def _add_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "sweep", nargs="?", default=None, metavar="SWEEP.json",
        help="sweep spec JSON file (SweepSpec.to_dict shape)",
    )
    parser.add_argument(
        "--experiment", default=None, metavar="NAME",
        help="build the sweep of a registered experiment instead",
    )
    parser.add_argument(
        "--scale", choices=("smoke", "bench", "full"), default="smoke",
        help="experiment scale for --experiment (default: smoke)",
    )
    parser.add_argument(
        "--seed", type=int, default=1,
        help="base seed for --experiment sweeps (default: 1)",
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service", description=__doc__
    )
    commands = parser.add_subparsers(dest="command", required=True)

    submit = commands.add_parser(
        "submit", help="execute a sweep through the async service"
    )
    _add_sweep_arguments(submit)
    submit.add_argument("--store", default=None, metavar="DIR")
    submit.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (1 = in-process; default: 1)",
    )
    submit.add_argument(
        "--pool", choices=("inline", "process"), default="inline",
        help="worker backend (process = true parallelism)",
    )
    submit.add_argument(
        "--refresh", action="store_true",
        help="recompute every cell (store stays write-through only)",
    )
    submit.add_argument(
        "--out", default=None, metavar="FILE",
        help="write records + metrics as JSON",
    )
    submit.add_argument("--quiet", action="store_true")
    submit.set_defaults(func=_cmd_submit)

    status = commands.add_parser(
        "status", help="preview a resume: which cells are already cached"
    )
    _add_sweep_arguments(status)
    status.add_argument("--store", default=None, metavar="DIR", required=True)
    status.add_argument("--verbose", action="store_true")
    status.set_defaults(func=_cmd_status)

    stats = commands.add_parser("stats", help="store entry/byte counts")
    stats.add_argument("--store", default=None, metavar="DIR", required=True)
    stats.add_argument("--json", action="store_true")
    stats.set_defaults(func=_cmd_stats)

    gc = commands.add_parser(
        "gc", help="reclaim stale schema versions and temp files"
    )
    gc.add_argument("--store", default=None, metavar="DIR", required=True)
    gc.add_argument("--dry-run", action="store_true")
    gc.set_defaults(func=_cmd_gc)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
