"""Pluggable worker backends for the sweep service.

The service dispatches cache misses to a :class:`WorkerPool`.  The
contract is deliberately narrow — ``await execute(spec) -> record`` — and
the process backend ships specs and records across the boundary as plain
JSON-ready dicts, exactly the payloads a multi-host transport would carry:
specs are JSON-round-trippable and every run's randomness is derived from
its own seed, so a shard computes the same record no matter which host
picks it up.  A remote backend therefore only has to move these dicts
over a socket; nothing in the service layer would change.

Backends:

* :class:`InlineWorkerPool` — runs cells on threads in this process.
  CPython's GIL serializes the numeric work, so this is the
  deterministic, zero-setup choice for tests and tiny sweeps;
* :class:`ProcessWorkerPool` — a ``concurrent.futures``
  ``ProcessPoolExecutor``; true parallelism on multi-core hosts.
"""

from __future__ import annotations

import abc
import asyncio
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, Optional

from ..api.schemes import execute_run
from ..api.specs import RunRecord, RunSpec
from ..api.sweep import default_job_count

__all__ = [
    "WorkerPool",
    "InlineWorkerPool",
    "ProcessWorkerPool",
    "execute_payload",
]


def execute_payload(spec_dict: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one serialized spec and return the serialized record.

    The location-independent unit of work: a plain function over plain
    dicts, usable verbatim as a process-pool task or a remote RPC body.
    """
    record = execute_run(RunSpec.from_dict(spec_dict))
    return record.to_dict()


class WorkerPool(abc.ABC):
    """Executes one run spec somewhere and returns its record."""

    @abc.abstractmethod
    async def execute(self, spec: RunSpec) -> RunRecord:
        """Compute the record for ``spec`` (may run anywhere)."""

    def close(self) -> None:
        """Release any held workers (idempotent)."""


class InlineWorkerPool(WorkerPool):
    """Thread-offloaded in-process execution (keeps the event loop live)."""

    def __init__(self, max_workers: int = 1):
        self._semaphore = asyncio.Semaphore(max(1, int(max_workers)))

    async def execute(self, spec: RunSpec) -> RunRecord:
        async with self._semaphore:
            return await asyncio.to_thread(execute_run, spec)


class ProcessWorkerPool(WorkerPool):
    """Worker processes fed serialized specs (multi-host-shaped payloads)."""

    def __init__(self, max_workers: Optional[int] = None):
        self.max_workers = max_workers or default_job_count()
        self._executor: Optional[ProcessPoolExecutor] = None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._executor

    async def execute(self, spec: RunSpec) -> RunRecord:
        loop = asyncio.get_running_loop()
        record_dict = await loop.run_in_executor(
            self._ensure_executor(), execute_payload, spec.to_dict()
        )
        # Re-attach the caller's exact spec object: the JSON boundary
        # canonicalises containers (tuples come back as lists) but cannot
        # change semantics, so the fingerprints are guaranteed to match.
        return RunRecord.from_dict(record_dict).rebind(spec)

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
