"""The async sweep service: job queue, in-flight dedup, progress streams.

:class:`SweepService` accepts :class:`~repro.api.specs.SweepSpec` /
:class:`~repro.api.specs.RunSpec` submissions from any number of
concurrent clients on one event loop and serves every cell from the
cheapest source available:

1. **store** — the content-addressed :class:`~repro.service.store.RunStore`
   already holds the record (a prior sweep computed it, or this sweep is
   being resumed after a kill);
2. **in-flight dedup** — another job is computing the same fingerprint
   right now; the cell attaches to that computation instead of starting a
   second one (overlapping sweeps share cells by construction: the
   gallery and Figs 9-13 reuse many scenario x scheme points);
3. **worker pool** — a genuine miss is dispatched to the pluggable
   :class:`~repro.service.workers.WorkerPool` and written through to the
   store the moment it completes, which is what makes killed sweeps
   resumable with only the missing cells recomputed.

Each job streams per-cell progress events (:class:`CellEvent`) to its
subscribers, and the service keeps live counters
(:class:`ServiceMetrics`): submissions, hits, coalesced cells, computed
cells, failures, queue depth and per-cell timing.

Determinism: records are merged in spec order and every cell's content is
a pure function of its spec, so a sweep served through the service —
cold or warm store, any worker count — equals ``SweepRunner(jobs=1)``.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, List, Optional, Sequence, Union

from ..api.specs import RunRecord, RunSpec, SweepSpec
from .store import RunStore
from .workers import InlineWorkerPool, WorkerPool

__all__ = ["CellEvent", "SweepJob", "ServiceMetrics", "SweepService"]

#: Where a finished cell's record came from.
CELL_SOURCES = ("store", "inflight", "computed")


@dataclass(frozen=True)
class CellEvent:
    """One progress event on one cell of one job."""

    job: str
    #: Cell index within the job's sweep (spec order).
    index: int
    fingerprint: str
    #: ``"scheduled"`` (dispatched to the worker pool), ``"done"`` or
    #: ``"failed"``.
    status: str
    scheme: str
    #: For ``done``: which source served the record (:data:`CELL_SOURCES`).
    source: Optional[str] = None
    #: Wall-clock seconds from submission to completion (``done`` only).
    elapsed: Optional[float] = None
    #: Failure detail (``failed`` only).
    error: Optional[str] = None


@dataclass
class ServiceMetrics:
    """Live service counters (see :meth:`to_dict` for the export shape)."""

    jobs_submitted: int = 0
    cells_submitted: int = 0
    store_hits: int = 0
    inflight_hits: int = 0
    computed: int = 0
    failed: int = 0
    #: Cells currently dispatched to the worker pool.
    queue_depth: int = 0
    #: High-water mark of ``queue_depth``.
    max_queue_depth: int = 0
    #: Total worker seconds spent on computed cells.
    compute_seconds: float = 0.0

    def cache_hit_rate(self) -> float:
        """Fraction of submitted cells served without new computation."""
        served = self.store_hits + self.inflight_hits + self.computed
        if not served:
            return 0.0
        return (self.store_hits + self.inflight_hits) / served

    def to_dict(self) -> Dict[str, Any]:
        return {
            "jobs_submitted": self.jobs_submitted,
            "cells_submitted": self.cells_submitted,
            "store_hits": self.store_hits,
            "inflight_hits": self.inflight_hits,
            "computed": self.computed,
            "failed": self.failed,
            "queue_depth": self.queue_depth,
            "max_queue_depth": self.max_queue_depth,
            "compute_seconds": self.compute_seconds,
            "cache_hit_rate": self.cache_hit_rate(),
        }

    def to_counters(self, prefix: str = "service.") -> Dict[str, int]:
        """The monotone counters in the shared telemetry schema.

        ``service.*`` keys with integer values — the same dotted schema
        :class:`repro.obs.Telemetry` counters and
        ``MessageStats.to_counters`` use, so service metrics merge into a
        :class:`~repro.obs.TelemetrySummary` (gauges like ``queue_depth``
        and derived rates stay in :meth:`to_dict`).
        """
        return {
            f"{prefix}jobs_submitted": self.jobs_submitted,
            f"{prefix}cells_submitted": self.cells_submitted,
            f"{prefix}store_hits": self.store_hits,
            f"{prefix}inflight_hits": self.inflight_hits,
            f"{prefix}computed": self.computed,
            f"{prefix}failed": self.failed,
        }


class SweepJob:
    """A submitted sweep: result future plus a per-cell progress stream."""

    def __init__(self, job_id: str, sweep: SweepSpec):
        self.id = job_id
        self.sweep = sweep
        self._records: List[Optional[RunRecord]] = [None] * len(sweep.runs)
        self._done: Dict[int, str] = {}
        self._backlog: List[CellEvent] = []
        self._queues: List[asyncio.Queue] = []
        self._finished = asyncio.get_running_loop().create_future()
        self._started = time.perf_counter()
        self._task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    async def result(self) -> List[RunRecord]:
        """All records in spec order (raises if any cell failed)."""
        return await asyncio.shield(self._finished)

    def status(self) -> Dict[str, Any]:
        """A point-in-time completion snapshot."""
        by_source = {source: 0 for source in CELL_SOURCES}
        for source in self._done.values():
            by_source[source] += 1
        return {
            "job": self.id,
            "sweep": self.sweep.name,
            "cells": len(self.sweep.runs),
            "completed": len(self._done),
            "by_source": by_source,
            "finished": self._finished.done(),
            "elapsed": time.perf_counter() - self._started,
        }

    async def events(self):
        """Async iterator over this job's cell events (ends at completion).

        Every subscriber gets the full stream: events fired before the
        subscription are replayed from the job's backlog, so a client that
        submits and then subscribes never misses a cell.
        """
        queue: asyncio.Queue = asyncio.Queue()
        for event in self._backlog:
            queue.put_nowait(event)
        if self._finished.done():
            queue.put_nowait(None)
        else:
            self._queues.append(queue)
        while True:
            event = await queue.get()
            if event is None:
                return
            yield event

    def cancel(self) -> bool:
        """Kill this job mid-flight.

        Cells already written to the store stay there (that is the resume
        contract); a computation another job is also waiting on keeps
        running for that job.  Returns whether a cancellation was issued.
        """
        if self._task is None or self._task.done():
            return False
        return self._task.cancel()

    # ------------------------------------------------------------------
    # Service-side hooks
    # ------------------------------------------------------------------
    def _publish(self, event: CellEvent) -> None:
        self._backlog.append(event)
        for queue in self._queues:
            queue.put_nowait(event)

    def _complete_cell(self, index: int, record: RunRecord, source: str) -> None:
        self._records[index] = record
        self._done[index] = source

    def _finish(self, error: Optional[BaseException] = None) -> None:
        for queue in self._queues:
            queue.put_nowait(None)
        self._queues.clear()
        if self._finished.done():
            return
        if error is not None:
            self._finished.set_exception(error)
        else:
            self._finished.set_result(list(self._records))


class SweepService:
    """Accepts sweep submissions and serves cells from store/dedup/workers."""

    def __init__(
        self,
        store: Optional[Union[RunStore, str]] = None,
        pool: Optional[WorkerPool] = None,
        reuse: bool = True,
    ):
        """``store=None`` runs without persistence (dedup still applies);
        ``reuse=False`` keeps the store write-through only — every cell is
        recomputed, results are still persisted (the refresh mode)."""
        self.store = RunStore(store) if isinstance(store, (str,)) else store
        self.pool = pool or InlineWorkerPool()
        self.reuse = bool(reuse)
        self.metrics = ServiceMetrics()
        self._inflight: Dict[str, asyncio.Task] = {}
        self._jobs: Dict[str, SweepJob] = {}
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        sweep: Union[SweepSpec, Sequence[RunSpec]],
        reuse: Optional[bool] = None,
    ) -> SweepJob:
        """Enqueue a sweep; returns immediately with its :class:`SweepJob`.

        Must be called on a running event loop.  ``reuse`` overrides the
        service default for this job only.
        """
        if not isinstance(sweep, SweepSpec):
            sweep = SweepSpec(name="adhoc", runs=tuple(sweep))
        job = SweepJob(f"job-{next(self._ids)}", sweep)
        self._jobs[job.id] = job
        self.metrics.jobs_submitted += 1
        self.metrics.cells_submitted += len(sweep.runs)
        use_store = self.reuse if reuse is None else bool(reuse)
        job._task = asyncio.create_task(self._run_job(job, use_store))
        # Safety net: a task cancelled before its coroutine ever ran (or
        # killed by an unexpected error) must still settle the job future,
        # or result() would wait forever.
        job._task.add_done_callback(partial(self._settle, job))
        return job

    @staticmethod
    def _settle(job: SweepJob, task: "asyncio.Task[None]") -> None:
        if job._finished.done():
            return
        if task.cancelled():
            job._finish(asyncio.CancelledError(f"{job.id} cancelled"))
        elif task.exception() is not None:
            job._finish(task.exception())

    async def run(
        self,
        sweep: Union[SweepSpec, Sequence[RunSpec]],
        reuse: Optional[bool] = None,
    ) -> List[RunRecord]:
        """Submit and await one sweep (the one-shot client call)."""
        return await self.submit(sweep, reuse=reuse).result()

    async def execute(self, spec: RunSpec, reuse: Optional[bool] = None) -> RunRecord:
        """Submit and await a single run spec."""
        records = await self.run([spec], reuse=reuse)
        return records[0]

    def job(self, job_id: str) -> SweepJob:
        """Look up a submitted job by id."""
        return self._jobs[job_id]

    def jobs(self) -> List[SweepJob]:
        """Every job submitted to this service, in submission order."""
        return list(self._jobs.values())

    async def drain(self) -> None:
        """Wait for every in-flight computation to settle.

        Call after cancelling jobs and before tearing the loop down:
        shielded computations keep running past a cancelled job, and each
        one finishes by writing its record through to the store.
        """
        while self._inflight:
            await asyncio.gather(
                *list(self._inflight.values()), return_exceptions=True
            )

    def close(self) -> None:
        """Release the worker pool."""
        self.pool.close()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    async def _run_job(self, job: SweepJob, use_store: bool) -> None:
        cells = [
            self._run_cell(job, index, spec, use_store)
            for index, spec in enumerate(job.sweep.runs)
        ]
        try:
            results = await asyncio.gather(*cells, return_exceptions=True)
        except asyncio.CancelledError:
            job._finish(asyncio.CancelledError(f"{job.id} cancelled"))
            raise
        error = next(
            (r for r in results if isinstance(r, BaseException)), None
        )
        job._finish(error)

    async def _run_cell(
        self, job: SweepJob, index: int, spec: RunSpec, use_store: bool
    ) -> None:
        fingerprint = spec.fingerprint()
        started = time.perf_counter()

        def finish(record: RunRecord, source: str) -> None:
            job._complete_cell(index, record, source)
            job._publish(
                CellEvent(
                    job=job.id,
                    index=index,
                    fingerprint=fingerprint,
                    status="done",
                    scheme=spec.scheme,
                    source=source,
                    elapsed=time.perf_counter() - started,
                )
            )

        try:
            if use_store and self.store is not None:
                cached = await asyncio.to_thread(self.store.load, fingerprint)
                if cached is not None:
                    self.metrics.store_hits += 1
                    finish(cached.rebind(spec), "store")
                    return

            shared = self._inflight.get(fingerprint)
            if shared is not None:
                self.metrics.inflight_hits += 1
                record = await asyncio.shield(shared)
                finish(record.rebind(spec), "inflight")
                return

            job._publish(
                CellEvent(
                    job=job.id,
                    index=index,
                    fingerprint=fingerprint,
                    status="scheduled",
                    scheme=spec.scheme,
                )
            )
            task = asyncio.create_task(self._compute(fingerprint, spec))
            self._inflight[fingerprint] = task
            # The computation outlives this cell (shield: cancelling the
            # job must not cancel work another job may be attached to),
            # so it deregisters itself when it actually completes.
            task.add_done_callback(
                lambda t, fp=fingerprint: (
                    self._inflight.pop(fp)
                    if self._inflight.get(fp) is t
                    else None
                )
            )
            record = await asyncio.shield(task)
            finish(record, "computed")
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            self.metrics.failed += 1
            job._publish(
                CellEvent(
                    job=job.id,
                    index=index,
                    fingerprint=fingerprint,
                    status="failed",
                    scheme=spec.scheme,
                    error=repr(exc),
                )
            )
            raise

    async def _compute(self, fingerprint: str, spec: RunSpec) -> RunRecord:
        """One deduplicated computation: worker pool + store write-through."""
        self.metrics.queue_depth += 1
        self.metrics.max_queue_depth = max(
            self.metrics.max_queue_depth, self.metrics.queue_depth
        )
        started = time.perf_counter()
        try:
            record = await self.pool.execute(spec)
        finally:
            self.metrics.queue_depth -= 1
        self.metrics.computed += 1
        self.metrics.compute_seconds += time.perf_counter() - started
        if self.store is not None:
            # Write-through immediately: this is the resume guarantee — a
            # killed job leaves every finished cell behind.
            await asyncio.to_thread(self.store.put, record, fingerprint)
        return record
