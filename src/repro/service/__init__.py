"""Deployment-as-a-service: the async sweep fabric and run store.

This package is the serving layer grown over the declarative experiment
API (:mod:`repro.api`).  The pieces compose bottom-up:

* :mod:`repro.service.store` — the content-addressed
  :class:`RunStore`: records keyed by the canonical fingerprint of their
  spec (:func:`repro.api.specs.run_fingerprint`), filesystem backend,
  atomic writes, schema-versioned invalidation and GC;
* :mod:`repro.service.workers` — pluggable :class:`WorkerPool` backends
  (in-process threads, process pool) fed location-independent JSON
  payloads, so a multi-host backend is a transport change only;
* :mod:`repro.service.service` — the :class:`SweepService`: an asyncio
  job queue that deduplicates identical cells across overlapping
  submissions, serves warm cells from the store, streams per-cell
  progress to each subscriber and keeps live metrics;
* :mod:`repro.service.cli` — ``python -m repro.service``
  (``submit`` / ``status`` / ``gc`` / ``stats``).

Quick start::

    import asyncio
    from repro.api import ScenarioSpec, SweepSpec
    from repro.service import ProcessWorkerPool, RunStore, SweepService

    sweep = SweepSpec.grid(
        "demo",
        ScenarioSpec(field_size=300.0, sensor_count=24, duration=80.0),
        schemes=("CPVF", "FLOOR"),
        axes={"communication_range": [30.0, 60.0]},
    )

    async def main():
        service = SweepService(store=RunStore("runs/"), pool=ProcessWorkerPool())
        job = service.submit(sweep)
        async for event in job.events():
            print(event.status, event.index, event.source)
        return await job.result()

    records = asyncio.run(main())

See ``docs/service.md`` for the architecture, the store layout, the
fingerprint contract and resume semantics.
"""

from .service import CellEvent, ServiceMetrics, SweepJob, SweepService
from .store import GCReport, RunStore, StoreStats
from .workers import (
    InlineWorkerPool,
    ProcessWorkerPool,
    WorkerPool,
    execute_payload,
)

__all__ = [
    "CellEvent",
    "ServiceMetrics",
    "SweepJob",
    "SweepService",
    "RunStore",
    "StoreStats",
    "GCReport",
    "WorkerPool",
    "InlineWorkerPool",
    "ProcessWorkerPool",
    "execute_payload",
]
