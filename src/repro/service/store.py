"""The content-addressed run store.

Every :class:`~repro.api.specs.RunSpec` is JSON-round-trippable and all of
its randomness is derived from its own seed, so a canonical fingerprint of
the spec (:func:`repro.api.specs.run_fingerprint`) fully determines the
:class:`~repro.api.specs.RunRecord` it produces.  :class:`RunStore` keys
records by that fingerprint on the filesystem:

.. code-block:: text

    <root>/
      v1/                    # one directory per SPEC_SCHEMA_VERSION
        3f/                  # two-hex-char shard (first fingerprint byte)
          3f9a...e1.json     # {"schema": 1, "fingerprint": ..., "record": ...}

Writes are atomic (temp file in the final directory + ``os.replace``), so
concurrent writers — sweep worker processes, several service event loops,
a resumed run racing a dying one — can share a store without locking: the
worst case is two processes computing the same cell and one ``replace``
winning with an identical payload.

Schema-versioned invalidation: the schema version is hashed into every
fingerprint *and* partitions the directory layout, so bumping
:data:`~repro.api.specs.SPEC_SCHEMA_VERSION` makes every old entry
unreachable at once; :meth:`RunStore.gc` reclaims the dead version
directories (plus any temp files a killed writer left behind).
"""

from __future__ import annotations

import dataclasses
import json
import os
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from ..api.specs import (
    SPEC_SCHEMA_VERSION,
    RunRecord,
    RunSpec,
    canonical_json,
)

__all__ = ["RunStore", "StoreStats", "GCReport", "SERVICE_COUNTERS_FILENAME"]

#: Sidecar file (inside the version directory, so GC keeps it) holding the
#: accumulated ``ServiceMetrics.to_counters()`` totals of every submit
#: against this store, in the shared dotted counter schema.
SERVICE_COUNTERS_FILENAME = "service_counters.json"


@dataclass(frozen=True)
class StoreStats:
    """A point-in-time summary of one store's contents."""

    root: str
    schema_version: int
    #: Records reachable under the current schema version.
    entries: int
    #: Bytes held by reachable records.
    bytes: int
    #: Records stranded under other (stale) schema versions.
    stale_entries: int
    #: Bytes held by stale records and leftover temp files.
    stale_bytes: int

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class GCReport:
    """What one :meth:`RunStore.gc` pass removed."""

    removed_files: int
    removed_bytes: int
    #: Reachable records kept in place.
    kept_entries: int
    dry_run: bool = False

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


class RunStore:
    """Filesystem-backed content-addressed store of run records."""

    def __init__(
        self,
        root: Union[str, Path],
        schema_version: int = SPEC_SCHEMA_VERSION,
    ):
        self.root = Path(root)
        self.schema_version = int(schema_version)
        self._version_dir = self.root / f"v{self.schema_version}"

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def path_for(self, fingerprint: str) -> Path:
        """Where the record for ``fingerprint`` lives (whether or not it
        exists yet)."""
        return self._version_dir / fingerprint[:2] / f"{fingerprint}.json"

    @staticmethod
    def _fingerprint_of(key: Union[str, RunSpec]) -> str:
        return key.fingerprint() if isinstance(key, RunSpec) else str(key)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def __contains__(self, key: Union[str, RunSpec]) -> bool:
        return self.path_for(self._fingerprint_of(key)).exists()

    def load(self, fingerprint: str) -> Optional[RunRecord]:
        """The stored record for ``fingerprint``, or ``None`` on a miss."""
        path = self.path_for(fingerprint)
        try:
            payload = json.loads(path.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            # A decode error means a torn write from a pre-atomic tool or
            # manual tampering; treat it as a miss (the cell recomputes
            # and the atomic put repairs the entry).
            return None
        if payload.get("schema") != self.schema_version:
            return None
        return RunRecord.from_dict(payload["record"])

    def get(self, spec: RunSpec) -> Optional[RunRecord]:
        """The cached record for ``spec``, rebound to it, or ``None``.

        Rebinding re-attaches the requesting spec (its bookkeeping tags
        may differ from the spec the record was first computed under), so
        a hit is indistinguishable from a fresh ``execute_run(spec)``.
        """
        record = self.load(spec.fingerprint())
        return record.rebind(spec) if record is not None else None

    def fingerprints(self) -> Iterator[str]:
        """Every fingerprint reachable under the current schema version."""
        if not self._version_dir.is_dir():
            return
        for shard in sorted(self._version_dir.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.glob("*.json")):
                yield entry.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.fingerprints())

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, record: RunRecord, fingerprint: Optional[str] = None) -> str:
        """Persist ``record`` under its spec's fingerprint, atomically.

        Returns the fingerprint.  Safe under concurrent writers: the
        payload is staged in the destination directory and moved into
        place with ``os.replace``, so readers only ever see complete
        files.
        """
        fingerprint = fingerprint or record.spec.fingerprint()
        path = self.path_for(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = canonical_json(
            {
                "schema": self.schema_version,
                "fingerprint": fingerprint,
                "record": record.to_dict(),
            }
        )
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{fingerprint[:12]}.", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return fingerprint

    # ------------------------------------------------------------------
    # Service counter sidecar
    # ------------------------------------------------------------------
    def service_counters(self) -> Dict[str, int]:
        """Accumulated service counters (shared schema), empty when none."""
        path = self._version_dir / SERVICE_COUNTERS_FILENAME
        try:
            payload = json.loads(path.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            return {}
        return {str(name): int(value) for name, value in payload.items()}

    def merge_service_counters(self, counters: Dict[str, int]) -> Dict[str, int]:
        """Fold one submit's counters into the sidecar, atomically.

        Counters are monotone, so accumulation across submits is
        well-defined; the atomic replace keeps concurrent submits from
        tearing the file (one writer's addition can still be lost in a
        race, which is acceptable for observability totals).
        """
        merged = self.service_counters()
        for name, value in counters.items():
            merged[name] = merged.get(name, 0) + int(value)
        self._version_dir.mkdir(parents=True, exist_ok=True)
        path = self._version_dir / SERVICE_COUNTERS_FILENAME
        fd, tmp_name = tempfile.mkstemp(
            prefix=".counters.", suffix=".tmp", dir=self._version_dir
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(canonical_json(merged))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return merged

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def stats(self) -> StoreStats:
        """Entry/byte counts, split into reachable vs stale.

        The service-counter sidecar is bookkeeping, not a record: it is
        excluded from both the live and the stale tallies.
        """
        entries = live_bytes = stale_entries = stale_bytes = 0
        if self.root.is_dir():
            for dirpath, _dirnames, filenames in os.walk(self.root):
                directory = Path(dirpath)
                reachable = self._version_dir in (directory, *directory.parents)
                for name in filenames:
                    if (
                        directory == self._version_dir
                        and name == SERVICE_COUNTERS_FILENAME
                    ):
                        continue
                    size = (directory / name).stat().st_size
                    if reachable and name.endswith(".json"):
                        entries += 1
                        live_bytes += size
                    else:
                        stale_entries += 1
                        stale_bytes += size
        return StoreStats(
            root=str(self.root),
            schema_version=self.schema_version,
            entries=entries,
            bytes=live_bytes,
            stale_entries=stale_entries,
            stale_bytes=stale_bytes,
        )

    def gc(self, dry_run: bool = False) -> GCReport:
        """Reclaim everything unreachable under the current schema version.

        Removes stale schema-version directories wholesale plus any
        leftover ``*.tmp`` staging files from killed writers.  Reachable
        records are never touched — GC is always safe to run while
        sweeps are in flight.
        """
        removed_files = removed_bytes = 0
        if self.root.is_dir():
            for child in sorted(self.root.iterdir()):
                if child == self._version_dir:
                    continue
                files, size = _tree_size(child)
                removed_files += files
                removed_bytes += size
                if not dry_run:
                    if child.is_dir():
                        shutil.rmtree(child)
                    else:
                        child.unlink()
            if self._version_dir.is_dir():
                for tmp in self._version_dir.glob(".*.tmp"):
                    removed_files += 1
                    removed_bytes += tmp.stat().st_size
                    if not dry_run:
                        tmp.unlink()
                for tmp in self._version_dir.glob("*/.*.tmp"):
                    removed_files += 1
                    removed_bytes += tmp.stat().st_size
                    if not dry_run:
                        tmp.unlink()
        return GCReport(
            removed_files=removed_files,
            removed_bytes=removed_bytes,
            kept_entries=len(self),
            dry_run=dry_run,
        )


def _tree_size(path: Path) -> Tuple[int, int]:
    """``(file count, total bytes)`` under a file or directory."""
    if path.is_file():
        return 1, path.stat().st_size
    files = total = 0
    for dirpath, _dirnames, filenames in os.walk(path):
        for name in filenames:
            files += 1
            total += (Path(dirpath) / name).stat().st_size
    return files, total
