"""Sensor life-cycle states.

The two schemes share the connectivity-establishment states; the FLOOR
scheme adds the fixed / movable / relocating distinction of its second and
third phases.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["SensorState"]


class SensorState(Enum):
    """The state of a sensor within a deployment scheme."""

    #: Not yet aware of a multi-hop route to the base station.
    DISCONNECTED = "disconnected"

    #: Disconnected and currently walking (BUG2) toward the base station.
    MOVING_TO_CONNECT = "moving_to_connect"

    #: Connected to the base station via the connectivity tree.
    CONNECTED = "connected"

    #: FLOOR: connected and declared immovable (it anchors coverage).
    FIXED = "fixed"

    #: FLOOR: connected and free to relocate to an expansion point.
    MOVABLE = "movable"

    #: FLOOR: movable sensor en route to an accepted expansion point.
    RELOCATING = "relocating"

    #: Permanently dead (battery exhaustion / injected fault).  A failed
    #: sensor keeps its slot in ``world.sensors`` so sensor ids stay equal
    #: to list indices, but it no longer senses, moves or relays.
    FAILED = "failed"

    def is_connected(self) -> bool:
        """Whether the state implies membership of the connectivity tree."""
        return self in (
            SensorState.CONNECTED,
            SensorState.FIXED,
            SensorState.MOVABLE,
            SensorState.RELOCATING,
        )
