"""Sensor node model and life-cycle states."""

from .sensor import Sensor
from .states import SensorState

__all__ = ["Sensor", "SensorState"]
