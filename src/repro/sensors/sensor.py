"""The mobile sensor node.

A :class:`Sensor` bundles identity, radio parameters (communication range
``rc`` and sensing range ``rs``), the kinematic state (a
:class:`~repro.mobility.MotionModel`) and the protocol state used by the
deployment schemes (connectivity state, tree parent, lazy-movement path
parent, oscillation history).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..geometry import Circle, Vec2
from ..mobility import MotionModel
from .states import SensorState

__all__ = ["Sensor"]


@dataclass
class Sensor:
    """A single mobile sensor node."""

    sensor_id: int
    motion: MotionModel
    communication_range: float
    sensing_range: float
    state: SensorState = SensorState.DISCONNECTED

    #: Tree parent in the connectivity tree (``None`` for the root's children
    #: the base station itself is not a Sensor).
    parent_id: Optional[int] = None
    #: Tree children.
    children: Set[int] = field(default_factory=set)
    #: IDs of all ancestors up to the base station (FLOOR phase 2 uses this
    #: to check for loops when re-parenting children of a movable sensor).
    ancestors: List[int] = field(default_factory=list)

    #: Lazy movement: the neighbour this sensor is currently waiting on.
    path_parent_id: Optional[int] = None
    #: Lazy movement: how many consecutive periods the sensor has not moved.
    idle_periods: int = 0
    #: Lazy movement: path parents that led to a wait-loop and must not be
    #: chosen again.
    rejected_path_parents: Set[int] = field(default_factory=set)

    #: Oscillation-avoidance history (CPVF): position at the end of the
    #: previous step.
    previous_position: Optional[Vec2] = None

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def position(self) -> Vec2:
        """Current position (delegates to the motion model)."""
        return self.motion.position

    @position.setter
    def position(self, value: Vec2) -> None:
        self.motion.position = value

    @property
    def moving_distance(self) -> float:
        """Total distance moved so far (the paper's energy proxy)."""
        return self.motion.odometer

    def sensing_disk(self) -> Circle:
        """The sensor's sensing disk."""
        return Circle(self.position, self.sensing_range)

    def communication_disk(self) -> Circle:
        """The sensor's communication disk."""
        return Circle(self.position, self.communication_range)

    def expansion_circle_radius(self) -> float:
        """Radius of the FLOOR expansion circle: ``min(rc, rs)``."""
        return min(self.communication_range, self.sensing_range)

    def in_communication_range(self, other: "Sensor") -> bool:
        """Whether ``other`` is within this sensor's communication range."""
        return (
            self.position.distance_to(other.position)
            <= self.communication_range + 1e-9
        )

    def covers(self, point: Vec2) -> bool:
        """Whether ``point`` is inside this sensor's sensing disk."""
        return self.position.distance_to(point) <= self.sensing_range + 1e-9

    # ------------------------------------------------------------------
    # Tree bookkeeping
    # ------------------------------------------------------------------
    def set_parent(self, parent_id: Optional[int], ancestors: List[int]) -> None:
        """Attach to a new tree parent and record the ancestor chain."""
        self.parent_id = parent_id
        self.ancestors = list(ancestors)

    def is_connected(self) -> bool:
        """Whether the sensor currently belongs to the connectivity tree."""
        return self.state.is_connected()

    def is_alive(self) -> bool:
        """Whether the sensor is still operational (not FAILED)."""
        return self.state is not SensorState.FAILED

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Sensor(id={self.sensor_id}, pos={self.position}, "
            f"state={self.state.value})"
        )
