"""Minimum-cost assignment (Hungarian algorithm)."""

from .hungarian import assignment_cost, hungarian, minimum_distance_matching

__all__ = ["assignment_cost", "hungarian", "minimum_distance_matching"]
