"""The Hungarian algorithm for minimum-cost assignment.

The paper uses minimum weighted bipartite matching twice in its moving-
distance evaluation (Section 6.2): to compute the cheapest "explosion"
dispersal for VOR/Minimax and to compute lower bounds on the moving
distance needed to reach the OPT pattern or FLOOR's own final layout.

This is a from-scratch O(n^3) implementation (shortest augmenting paths
with dual potentials, a.k.a. the Jonker–Volgenant formulation of the
Hungarian method).  It supports rectangular cost matrices with
``rows <= cols``; tests cross-check it against
``scipy.optimize.linear_sum_assignment``.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["hungarian", "assignment_cost", "minimum_distance_matching"]


def hungarian(cost_matrix: Sequence[Sequence[float]]) -> List[int]:
    """Solve the minimum-cost assignment problem.

    Parameters
    ----------
    cost_matrix:
        A rows x cols matrix with ``rows <= cols``; entry ``[i][j]`` is the
        cost of assigning row ``i`` to column ``j``.

    Returns
    -------
    list of int
        ``assignment[i]`` is the column assigned to row ``i``.  Every row is
        assigned and no column is used twice.
    """
    cost = np.asarray(cost_matrix, dtype=float)
    if cost.ndim != 2:
        raise ValueError("cost matrix must be two-dimensional")
    n, m = cost.shape
    if n == 0:
        return []
    if n > m:
        raise ValueError("hungarian() requires rows <= cols; transpose the input")
    if not np.isfinite(cost).all():
        raise ValueError("cost matrix must be finite")

    INF = math.inf
    # Potentials and matching arrays use 1-based indexing internally, with
    # index 0 as the artificial root of each augmenting search.
    u = [0.0] * (n + 1)
    v = [0.0] * (m + 1)
    # way[j] = previous column on the shortest augmenting path to column j.
    match = [0] * (m + 1)  # match[j] = row matched to column j (0 = free)

    for i in range(1, n + 1):
        match[0] = i
        j0 = 0
        minv = [INF] * (m + 1)
        used = [False] * (m + 1)
        way = [0] * (m + 1)
        while True:
            used[j0] = True
            i0 = match[j0]
            delta = INF
            j1 = -1
            for j in range(1, m + 1):
                if used[j]:
                    continue
                cur = cost[i0 - 1][j - 1] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(m + 1):
                if used[j]:
                    u[match[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if match[j0] == 0:
                break
        # Augment along the path found.
        while j0 != 0:
            j1 = way[j0]
            match[j0] = match[j1]
            j0 = j1

    assignment = [-1] * n
    for j in range(1, m + 1):
        if match[j] != 0:
            assignment[match[j] - 1] = j - 1
    return assignment


def assignment_cost(
    cost_matrix: Sequence[Sequence[float]], assignment: Sequence[int]
) -> float:
    """Total cost of an assignment produced by :func:`hungarian`."""
    cost = np.asarray(cost_matrix, dtype=float)
    return float(sum(cost[i][j] for i, j in enumerate(assignment)))


def minimum_distance_matching(
    sources: Sequence[Tuple[float, float]],
    targets: Sequence[Tuple[float, float]],
) -> Tuple[List[int], float]:
    """Match sources to targets minimising total Euclidean distance.

    Returns ``(assignment, total_distance)`` where ``assignment[i]`` is the
    target index assigned to source ``i``.  Requires
    ``len(sources) <= len(targets)``.
    """
    if len(sources) > len(targets):
        raise ValueError("need at least as many targets as sources")
    if not sources:
        return [], 0.0
    src = np.asarray(sources, dtype=float)
    dst = np.asarray(targets, dtype=float)
    diff = src[:, None, :] - dst[None, :, :]
    cost = np.sqrt((diff**2).sum(axis=2))
    assignment = hungarian(cost)
    return assignment, assignment_cost(cost, assignment)
