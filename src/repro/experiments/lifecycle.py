"""Lifecycle: scheme robustness under sensor churn and field changes.

The paper evaluates CPVF and FLOOR on static populations; this experiment
opens the fault axis.  Four curated event scripts — a mass mid-run failure,
two interior-cascade kill waves, a failure-plus-reinforcement cycle and an
obstacle that slams shut and later clears — run against CPVF, FLOOR and the
connectivity-ignorant VOR baseline.  Every run carries its scenario's event
timeline declaratively (:attr:`~repro.api.scenario.ScenarioSpec.events`),
so records are identical whether the sweep runs serially or sharded, and
each record reports one :class:`~repro.metrics.recovery.EventOutcome` per
fired event: time-to-recover, extra moving distance and the per-event
message burst.

Scripts are seed-averaged over a small number of repetitions (derived
seeds, as everywhere else) because a single churn draw can land on an
atypically cheap or catastrophic victim set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..api import RunRecord, RunSpec, SweepRunner, SweepSpec, derive_seed
from ..sim import (
    LifecycleEvent,
    obstacle_appear,
    obstacle_clear,
    sensor_failure,
    sensor_join,
)
from .common import ExperimentScale, FULL_SCALE, make_scenario

__all__ = [
    "LifecycleRow",
    "DEFAULT_LIFECYCLE_SCHEMES",
    "LIFECYCLE_SCRIPTS",
    "lifecycle_events",
    "sweep_lifecycle",
    "rows_lifecycle",
    "run_lifecycle",
    "format_lifecycle",
]

#: Schemes compared under churn (VOR is the connectivity-ignorant baseline).
DEFAULT_LIFECYCLE_SCHEMES = ("CPVF", "FLOOR", "VOR")

#: Repetition cap: churn scripts average over a few derived seeds, not the
#: hundreds used by the paper's aggregate figures.
_MAX_REPETITIONS = 4


def _at(scale: ExperimentScale, fraction: float) -> int:
    """Event period at a fraction of the (scaled) simulation horizon."""
    return max(1, int(round(fraction * scale.duration)))


def _script_mass_failure(scale: ExperimentScale) -> Tuple[LifecycleEvent, ...]:
    """One 20% kill on the open field at 40% of the horizon.

    The acceptance scenario: both connectivity-aware schemes should climb
    back to >= 90% of their pre-event coverage by the end of the run.
    """
    return (sensor_failure(at_period=_at(scale, 0.4), fraction=0.2),)


def _script_interior_cascade(
    scale: ExperimentScale,
) -> Tuple[LifecycleEvent, ...]:
    """Two waves preferring interior (tree-relaying) victims.

    Killing relay sensors orphans whole subtrees, exercising the tree
    repair's re-attachment search rather than just leaf pruning.
    """
    return (
        sensor_failure(
            at_period=_at(scale, 0.3), fraction=0.12, selection="interior"
        ),
        sensor_failure(
            at_period=_at(scale, 0.6), fraction=0.12, selection="interior"
        ),
    )


def _script_reinforcements(
    scale: ExperimentScale,
) -> Tuple[LifecycleEvent, ...]:
    """A 25% kill followed by fresh sensors staged near the base station."""
    joins = max(2, int(round(0.15 * scale.sensor_count)))
    return (
        sensor_failure(at_period=_at(scale, 0.35), fraction=0.25),
        sensor_join(
            at_period=_at(scale, 0.55),
            count=joins,
            x=0.0,
            y=0.0,
            radius=0.2 * scale.field_size,
        ),
    )


def _script_door_slam(scale: ExperimentScale) -> Tuple[LifecycleEvent, ...]:
    """A wall band slams across the field mid-run and clears later.

    The band spans the upper 80% of the field height, leaving a door at the
    bottom; sensors swallowed by it are displaced and every BUG2 path
    planned against the old field is invalidated.  On the obstacle-free
    layout the appearing band is obstacle index 0, which the clearing
    event removes.
    """
    size = scale.field_size
    return (
        obstacle_appear(
            at_period=_at(scale, 0.3),
            xmin=0.38 * size,
            ymin=0.2 * size,
            xmax=0.46 * size,
            ymax=size,
        ),
        obstacle_clear(at_period=_at(scale, 0.7), index=0),
    )


#: Curated event scripts: name -> (scale -> event timeline).
LIFECYCLE_SCRIPTS: Dict[
    str, Callable[[ExperimentScale], Tuple[LifecycleEvent, ...]]
] = {
    "mass-failure": _script_mass_failure,
    "interior-cascade": _script_interior_cascade,
    "reinforcements": _script_reinforcements,
    "door-slam": _script_door_slam,
}


def lifecycle_events(
    script: str, scale: ExperimentScale = FULL_SCALE
) -> Tuple[LifecycleEvent, ...]:
    """The event timeline of one named script at a scale."""
    if script not in LIFECYCLE_SCRIPTS:
        raise KeyError(
            f"unknown lifecycle script {script!r}; "
            f"choose from {sorted(LIFECYCLE_SCRIPTS)}"
        )
    return LIFECYCLE_SCRIPTS[script](scale)


@dataclass(frozen=True)
class LifecycleRow:
    """One scheme's seed-averaged outcome on one event script."""

    script: str
    scheme: str
    #: Mean final coverage across repetitions.
    coverage: float
    #: Mean best-recovery ratio across every event of every repetition.
    recovery_ratio: float
    #: Fraction of events that reached the recovery target before the end.
    recovered_fraction: float
    #: Mean periods-to-recover over the events that did recover.
    mean_time_to_recover: float
    #: Mean extra moving distance charged per event (metres).
    extra_distance: float
    #: Mean post-event message burst per event (transmissions).
    message_burst: float
    #: Events fired per repetition.
    events_per_run: int


def sweep_lifecycle(
    scale: ExperimentScale = FULL_SCALE,
    schemes: Sequence[str] = DEFAULT_LIFECYCLE_SCHEMES,
    scripts: Optional[Sequence[str]] = None,
    seed: int = 1,
    trace_every: Optional[int] = None,
) -> SweepSpec:
    """The declarative lifecycle sweep (optionally a named script subset)."""
    names = list(scripts) if scripts is not None else sorted(LIFECYCLE_SCRIPTS)
    repetitions = max(1, min(scale.repetitions, _MAX_REPETITIONS))
    runs: List[RunSpec] = []
    for script in names:
        events = lifecycle_events(script, scale)
        for rep in range(repetitions):
            scenario = make_scenario(
                scale, seed=derive_seed(seed, script, rep), events=events
            )
            for scheme in schemes:
                runs.append(
                    RunSpec(
                        scenario=scenario,
                        scheme=scheme,
                        trace_every=trace_every if scheme != "VOR" else None,
                        tags={"script": script, "rep": rep},
                    )
                )
    return SweepSpec(name="lifecycle", runs=tuple(runs))


def rows_lifecycle(records: Sequence[RunRecord]) -> List[LifecycleRow]:
    """Seed-averaged lifecycle rows from executed sweep records."""
    order: List[Tuple[str, str]] = []
    groups: Dict[Tuple[str, str], List[RunRecord]] = {}
    for record in records:
        key = (record.tag("script"), record.scheme)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(record)

    rows: List[LifecycleRow] = []
    for script, scheme in order:
        group = groups[(script, scheme)]
        outcomes = [outcome for record in group for outcome in record.events]
        recovered = [
            outcome for outcome in outcomes if outcome.time_to_recover is not None
        ]
        count = len(outcomes)
        rows.append(
            LifecycleRow(
                script=script,
                scheme=scheme,
                coverage=sum(r.coverage for r in group) / len(group),
                recovery_ratio=(
                    sum(o.recovery_ratio for o in outcomes) / count if count else 0.0
                ),
                recovered_fraction=len(recovered) / count if count else 0.0,
                mean_time_to_recover=(
                    sum(o.time_to_recover for o in recovered) / len(recovered)
                    if recovered
                    else float("nan")
                ),
                extra_distance=(
                    sum(o.extra_distance for o in outcomes) / count if count else 0.0
                ),
                message_burst=(
                    sum(o.message_burst for o in outcomes) / count if count else 0.0
                ),
                events_per_run=max((len(r.events) for r in group), default=0),
            )
        )
    return rows


def run_lifecycle(
    scale: ExperimentScale = FULL_SCALE,
    schemes: Sequence[str] = DEFAULT_LIFECYCLE_SCHEMES,
    scripts: Optional[Sequence[str]] = None,
    seed: int = 1,
    jobs: int = 1,
) -> List[LifecycleRow]:
    """Run the lifecycle sweep (optionally sharded over ``jobs`` processes)."""
    records = SweepRunner(jobs=jobs).run(
        sweep_lifecycle(scale, schemes=schemes, scripts=scripts, seed=seed)
    )
    return rows_lifecycle(records)


def format_lifecycle(rows: List[LifecycleRow]) -> str:
    """Render the lifecycle comparison as a per-script table."""
    lines = [
        "Lifecycle (recovery from sensor churn and field changes)",
        "-" * 56,
    ]
    scripts: List[str] = []
    for row in rows:
        if row.script not in scripts:
            scripts.append(row.script)
    for script in scripts:
        subset = [r for r in rows if r.script == script]
        lines.append(f"{script} ({subset[0].events_per_run} events/run)")
        lines.append(
            f"  {'scheme':<8s} {'coverage':>9s} {'recovery':>9s} "
            f"{'recovered':>9s} {'t-recover':>9s} {'extra m':>8s} {'burst':>8s}"
        )
        for row in subset:
            ttr = (
                f"{row.mean_time_to_recover:>8.1f}p"
                if row.mean_time_to_recover == row.mean_time_to_recover
                else f"{'-':>9s}"
            )
            lines.append(
                f"  {row.scheme:<8s} {100 * row.coverage:>8.1f}% "
                f"{100 * row.recovery_ratio:>8.1f}% "
                f"{100 * row.recovered_fraction:>8.0f}% {ttr} "
                f"{row.extra_distance:>7.1f}m {row.message_burst:>8.0f}"
            )
    return "\n".join(lines)
