"""Spatial-subsystem performance benchmarks (seed vs fast paths).

Measures the three hot queries the spatial subsystem accelerates —
neighbor-table construction, one full CPVF period, and coverage
re-measurement after movement — against faithful re-implementations of
the seed algorithms (dense ``sqrt`` distance matrix, scalar ``Vec2``
force loops, full-grid coverage scan).  Every measurement also checks
that the fast path produces results identical to the brute-force path,
so the numbers can never drift away from correctness.

``benchmarks/test_perf_spatial.py`` runs these under pytest;
``benchmarks/run_perf.py`` writes the repo-root ``BENCH_perf.json`` that
tracks the perf trajectory across PRs.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, List, Sequence

import numpy as np

from ..api import SweepRunner, default_job_count
from ..core import CPVFScheme
from ..core import connectivity as _connectivity
from ..core import cpvf as _cpvf_module
from ..sim import World
from ..spatial import IncrementalCoverage
from .common import ExperimentScale, SMOKE_SCALE, make_config, make_world

__all__ = [
    "seed_neighbor_table",
    "seed_coverage_fraction",
    "measure_neighbor_table",
    "measure_cpvf_period",
    "measure_cpvf_period_scale",
    "measure_telemetry_overhead",
    "measure_cpvf_convergence",
    "measure_coverage",
    "measure_sweep_throughput",
    "measure_sweep_service",
    "measure_scenario_generation",
    "measure_lifecycle_recovery",
    "measure_degraded_coverage",
    "run_perf_suite",
    "PERF_ENTRIES",
]


def _best_of(func: Callable[[], object], repeats: int, rounds: int = 3) -> float:
    """Best mean seconds per call over ``rounds`` timing rounds."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(repeats):
            func()
        best = min(best, (time.perf_counter() - start) / repeats)
    return best


def _make_perf_world(
    n: int, seed: int, clustered: bool, fast: bool
) -> World:
    # Populations beyond the paper's 10^4 keep the 10^4 row's density
    # (field side grows with sqrt(n)); a fixed 1000 m field at n = 10^5
    # would pack ~100 sensors per communication disk and measure a
    # pathological regime no deployment targets.  Rows at n <= 10^4 keep
    # the historical field so committed numbers stay comparable.
    field_size = 1000.0 if n <= 10000 else 1000.0 * math.sqrt(n / 10000.0)
    scale = ExperimentScale(field_size=field_size, sensor_count=n)
    config = make_config(
        scale, sensor_count=n, seed=seed, clustered_start=clustered
    )
    world = make_world(config, scale)
    world.use_neighbor_cache = fast
    world.use_incremental_coverage = fast
    world.radio.use_spatial_index = fast
    return world


# ----------------------------------------------------------------------
# Neighbor tables
# ----------------------------------------------------------------------
def seed_neighbor_table(radio, sensors) -> Dict[int, List[int]]:
    """Faithful copy of the seed ``Radio.neighbor_table`` implementation.

    Dense ``n x n`` matrix with ``np.sqrt`` and per-row Python loops —
    kept verbatim here (rather than in :class:`Radio`) so the benchmark
    baseline stays the seed algorithm even as the library improves.
    """
    ids = [s.sensor_id for s in sensors]
    if not ids:
        return {}
    xs = np.array([s.position.x for s in sensors])
    ys = np.array([s.position.y for s in sensors])
    rcs = np.array([s.communication_range for s in sensors])
    dx = xs[:, None] - xs[None, :]
    dy = ys[:, None] - ys[None, :]
    dist = np.sqrt(dx * dx + dy * dy)
    table: Dict[int, List[int]] = {i: [] for i in ids}
    for i in range(len(sensors)):
        within = np.flatnonzero(dist[i] <= rcs[i] + 1e-9)
        for j in within:
            if j == i:
                continue
            if radio.line_of_sight:  # pragma: no cover - seed parity only
                from ..geometry import Segment

                if radio.field.segment_blocked(
                    Segment(sensors[i].position, sensors[j].position)
                ):
                    continue
            table[ids[i]].append(ids[int(j)])
    return table


def measure_neighbor_table(
    n: int, seed: int = 3, clustered: bool = False, repeats: int = 10
) -> Dict[str, float]:
    """Seed vs indexed neighbor-table build time on one layout."""
    world = _make_perf_world(n, seed, clustered, fast=True)
    sensors = world.sensors
    radio = world.radio
    reference = seed_neighbor_table(radio, sensors)
    if reference != radio.neighbor_table_indexed(sensors):
        raise AssertionError("indexed neighbor table diverged from seed table")
    if reference != radio.neighbor_table_bruteforce(sensors):
        raise AssertionError("brute neighbor table diverged from seed table")
    # Several short best-of rounds: both paths are sub-10ms, so a single
    # noisy round on a loaded machine would dominate the ratio otherwise.
    seed_s = _best_of(lambda: seed_neighbor_table(radio, sensors), repeats, rounds=5)
    fast_s = _best_of(
        lambda: radio.neighbor_table_indexed(sensors), repeats, rounds=5
    )
    return {
        "n": n,
        "layout": "clustered" if clustered else "uniform",
        "seed_ms": seed_s * 1000.0,
        "fast_ms": fast_s * 1000.0,
        "speedup": seed_s / fast_s if fast_s > 0 else float("inf"),
    }


# ----------------------------------------------------------------------
# CPVF periods
# ----------------------------------------------------------------------
def _timed_periods(
    n: int,
    seed: int,
    fast: bool,
    periods: int,
    mode: str = None,
    fast_infra: bool = None,
    telemetry=None,
) -> float:
    """Mean seconds per CPVF period for one execution configuration.

    ``fast=False`` is the seed configuration: the sequential scheme with
    the paper's reference ladder.  ``fast_infra`` controls the world's
    neighbour/coverage infrastructure independently — the large-``n``
    scale rows keep it on even for the seed *algorithm*, because the
    seed's dense n x n matrices would not fit in memory at n = 10^4.

    ``telemetry`` (a :class:`repro.obs.Telemetry`) is installed on the
    world *after* the warm-up step, so its spans and counters cover
    exactly the ``periods`` timed steps.
    """
    if fast_infra is None:
        fast_infra = fast
    world = _make_perf_world(n, seed, clustered=True, fast=fast_infra)
    if mode is None:
        mode = "vectorized" if fast else "sequential"
    scheme = CPVFScheme(mode=mode)
    original_ladder = _cpvf_module.max_valid_step
    if not fast:
        # The seed ladder evaluated every fraction through Vec2 helpers.
        _cpvf_module.max_valid_step = _connectivity.max_valid_step_reference
    try:
        scheme.initialize(world)
        scheme.step(world)  # warm-up period
        if telemetry is not None:
            world.telemetry = telemetry
        start = time.perf_counter()
        for _ in range(periods):
            scheme.step(world)
        return (time.perf_counter() - start) / periods
    finally:
        _cpvf_module.max_valid_step = original_ladder


def measure_cpvf_period(
    n: int, seed: int = 3, periods: int = 6
) -> Dict[str, float]:
    """Seed vs fast cost of one full CPVF decision period."""
    seed_s = _timed_periods(n, seed, fast=False, periods=periods)
    fast_s = _timed_periods(n, seed, fast=True, periods=periods)
    return {
        "n": n,
        "seed_ms": seed_s * 1000.0,
        "fast_ms": fast_s * 1000.0,
        "speedup": seed_s / fast_s if fast_s > 0 else float("inf"),
    }


def measure_cpvf_period_scale(
    n: int, seed: int = 3, periods: int = None, seed_periods: int = None
) -> Dict[str, float]:
    """Three-mode CPVF period cost at scale: seed vs vectorized vs batched.

    The large-``n`` rows of ``BENCH_perf.json``.  ``seed_ms`` runs the
    seed algorithm (sequential decisions, reference ladder) but on the
    fast neighbour infrastructure — the seed's dense matrices would need
    gigabytes at n = 10^4 — so it *understates* the true seed cost;
    ``fast_ms`` is the vectorized mode (the pre-batch fast path) and
    ``batched_ms`` the colored-batch kernel.  ``speedup`` keeps the
    bench-wide convention (seed over the fastest path); the honest
    batched-over-vectorized margin is ``speedup_vs_vectorized`` — about
    2x at n >= 5000, because PR 1 already moved the dominant force
    evaluation into numpy, and the protocol's parent-change churn is
    sequential in every mode.
    """
    if periods is None:
        periods = 6 if n <= 2000 else 3
    if seed_periods is None:
        seed_periods = max(1, min(periods, 20000 // n))
    # Beyond n = 2 * 10^4 even one seed-algorithm period takes minutes
    # per period (it is a per-sensor Python loop); the n = 10^5 rows
    # record seed_ms = None and the modes that actually run at scale.
    seed_s = None
    if n <= 20000:
        seed_s = _timed_periods(
            n, seed, fast=False, periods=seed_periods, fast_infra=True
        )
    fast_s = _timed_periods(n, seed, fast=True, periods=periods)
    batched_s = _timed_periods(
        n, seed, fast=True, periods=periods, mode="batched"
    )
    # One more batched pass with telemetry on: the phase breakdown of a
    # period (ms per period per span) and the period-normalised kernel
    # counters.  Timed separately so the headline batched_ms stays the
    # untraced number the overhead entry is gated against.
    from ..obs import Telemetry

    tel = Telemetry()
    _timed_periods(
        n, seed, fast=True, periods=periods, mode="batched", telemetry=tel
    )
    summary = tel.summary()
    phases = {
        name: stat.seconds / periods * 1000.0
        for name, stat in sorted(summary.phases.items())
    }
    counters_per_period = {
        name: summary.counters[name] / periods
        for name in (
            "cpvf.candidate_pairs",
            "cpvf.repair_attempts",
            "cpvf.pairs_repaired",
            "cpvf.pairs_rebuilt",
            "cpvf.repair_rounds",
        )
        if name in summary.counters
    }
    return {
        "n": n,
        "seed_ms": None if seed_s is None else seed_s * 1000.0,
        "fast_ms": fast_s * 1000.0,
        "batched_ms": batched_s * 1000.0,
        "speedup": (
            None
            if seed_s is None
            else (seed_s / batched_s if batched_s > 0 else float("inf"))
        ),
        "speedup_vs_vectorized": (
            fast_s / batched_s if batched_s > 0 else float("inf")
        ),
        "phases_ms": phases,
        "counters_per_period": counters_per_period,
    }


def measure_telemetry_overhead(
    n: int = 2000, seed: int = 3, periods: int = None, rounds: int = 3
) -> Dict[str, float]:
    """Null-sink telemetry cost on the batched CPVF hot path.

    Times the same batched configuration as the ``cpvf_period`` n = 2000
    row, untraced (``NULL_TELEMETRY``) and traced (a live ``Telemetry``
    with the default null sink), best-of-``rounds`` each to denoise the
    shared 1-CPU bench host.  The observability contract is that the
    traced path stays within a few percent of the untraced one; CI's
    ``obs_smoke`` gate reads this entry.
    """
    from ..obs import Telemetry

    if periods is None:
        periods = 6 if n <= 2000 else 3
    untraced_s = min(
        _timed_periods(n, seed, fast=True, periods=periods, mode="batched")
        for _ in range(rounds)
    )
    traced_s = min(
        _timed_periods(
            n,
            seed,
            fast=True,
            periods=periods,
            mode="batched",
            telemetry=Telemetry(),
        )
        for _ in range(rounds)
    )
    return {
        "n": n,
        "periods": periods,
        "untraced_ms": untraced_s * 1000.0,
        "traced_ms": traced_s * 1000.0,
        "overhead_pct": (
            (traced_s - untraced_s) / untraced_s * 100.0
            if untraced_s > 0
            else 0.0
        ),
    }


# ----------------------------------------------------------------------
# CPVF convergence (batched vs sequential dynamics)
# ----------------------------------------------------------------------
def measure_cpvf_convergence(
    seed: int = 1, duration: float = 750.0, n: int = 240
) -> Dict[str, float]:
    """Coverage plateau of the batched dynamics vs the sequential seed.

    Runs the paper's Figure 3(a) scenario (240 sensors, rc = 60, rs = 40,
    obstacle-free 1000 m field, 750 s horizon) once under the sequential
    dynamics and once under the colored-batch kernel, and reports both
    final coverages.  The batched schedule is semantically faithful — the
    paper's sensors all move simultaneously — so the plateaus must agree;
    the suite asserts the difference stays within two coverage points.
    """
    from ..sim import SimulationEngine

    coverages: Dict[str, float] = {}
    for mode in ("sequential", "batched"):
        scale = ExperimentScale(
            field_size=1000.0, sensor_count=n, duration=duration
        )
        config = make_config(scale, sensor_count=n, seed=seed)
        world = make_world(config, scale)
        engine = SimulationEngine(
            world, CPVFScheme(mode=mode), trace_every=10**9
        )
        coverages[mode] = engine.run().final_coverage
    gap = abs(coverages["batched"] - coverages["sequential"])
    if gap > 0.02:
        raise AssertionError(
            "batched CPVF plateau diverged from sequential dynamics: "
            f"{coverages['batched']:.4f} vs {coverages['sequential']:.4f}"
        )
    return {
        "scenario": "fig3a",
        "n": n,
        "duration_s": duration,
        "sequential_coverage": coverages["sequential"],
        "batched_coverage": coverages["batched"],
        "abs_gap": gap,
    }


# ----------------------------------------------------------------------
# Coverage
# ----------------------------------------------------------------------
def seed_coverage_fraction(field, positions, sensing_range, resolution) -> float:
    """Faithful copy of the seed coverage scan.

    The seed ``CoverageGrid.coverage_mask`` tested every disk against the
    whole (still-uncovered) flattened grid; kept verbatim here so the
    benchmark baseline stays the seed algorithm even though the library's
    brute path now rasterises per-disk bounding boxes.
    """
    grid, obstacle_mask = field.grid_and_obstacle_mask(resolution)
    px, py = grid.point_arrays()
    covered = np.zeros(grid.num_points, dtype=bool)
    if positions and sensing_range > 0:
        r_sq = sensing_range * sensing_range
        for p in positions:
            remaining = ~covered
            if not remaining.any():
                break
            dx = px[remaining] - p.x
            dy = py[remaining] - p.y
            hit = dx * dx + dy * dy <= r_sq
            idx = np.flatnonzero(remaining)
            covered[idx[hit]] = True
    free = ~obstacle_mask
    return grid.fraction(covered & free, domain=free)


def measure_coverage(
    n: int,
    seed: int = 3,
    moved_fraction: float = 0.02,
    rounds: int = 5,
) -> Dict[str, float]:
    """Seed vs incremental coverage after small position changes.

    Simulates the engine's trace pattern: measure, move a few sensors,
    measure again.  The seed path rescans the grid for every sensing disk
    each time; the incremental tracker only re-rasterises the moved
    disks.  Both answers are checked for exact equality every round.
    """
    world = _make_perf_world(n, seed, clustered=False, fast=True)
    rs = world.config.sensing_range
    res = world.config.coverage_resolution
    rng = np.random.default_rng(seed)
    positions = np.array([(s.position.x, s.position.y) for s in world.sensors])
    tracker = IncrementalCoverage(world.field, rs, res)
    tracker.update(positions)

    from ..geometry import Vec2

    moved = max(1, int(n * moved_fraction))
    brute_s = 0.0
    fast_s = 0.0
    for _ in range(rounds):
        idx = rng.choice(n, size=moved, replace=False)
        positions[idx] = rng.uniform(0, world.field.width, size=(moved, 2))
        vecs = [Vec2(x, y) for x, y in positions]

        start = time.perf_counter()
        seed_value = seed_coverage_fraction(world.field, vecs, rs, res)
        brute_s += time.perf_counter() - start

        start = time.perf_counter()
        tracker.update(positions)
        fast_value = tracker.covered_fraction()
        fast_s += time.perf_counter() - start

        if seed_value != fast_value:
            raise AssertionError(
                f"incremental coverage {fast_value!r} != seed {seed_value!r}"
            )
        if world.field.coverage_fraction(vecs, rs, res) != fast_value:
            raise AssertionError("library brute coverage diverged from seed")
    return {
        "n": n,
        "moved_per_round": moved,
        "seed_ms": brute_s / rounds * 1000.0,
        "fast_ms": fast_s / rounds * 1000.0,
        "speedup": brute_s / fast_s if fast_s > 0 else float("inf"),
    }


# ----------------------------------------------------------------------
# Sweep throughput (serial vs process-sharded SweepRunner)
# ----------------------------------------------------------------------
def measure_sweep_throughput(
    jobs: int = None, seed: int = 3
) -> Dict[str, float]:
    """Serial vs sharded execution of a smoke-scale Fig 9 sweep.

    Runs the same declarative sweep through ``SweepRunner(jobs=1)`` and
    ``SweepRunner(jobs=cpu_count)`` and asserts the records are identical
    (the executor's determinism contract) while timing both.  On a
    single-core machine the sharded path mostly measures process overhead;
    the point of the entry is tracking the trajectory as sweeps grow.
    """
    from .fig9 import sweep_fig9

    sweep = sweep_fig9(
        SMOKE_SCALE,
        sensor_counts=[120, 240],
        range_pairs=[(40.0, 60.0), (60.0, 60.0)],
        seed=seed,
    )
    jobs = jobs if jobs is not None else default_job_count()

    start = time.perf_counter()
    serial_records = SweepRunner(jobs=1).run(sweep)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    sharded_records = SweepRunner(jobs=jobs).run(sweep)
    sharded_s = time.perf_counter() - start

    if serial_records != sharded_records:
        raise AssertionError("sharded sweep records diverged from serial run")
    return {
        "runs": len(sweep.runs),
        "jobs": jobs,
        "seed_ms": serial_s * 1000.0,
        "fast_ms": sharded_s * 1000.0,
        "speedup": serial_s / sharded_s if sharded_s > 0 else float("inf"),
    }


# ----------------------------------------------------------------------
# Sweep service (concurrent clients over a shared run store)
# ----------------------------------------------------------------------
def measure_sweep_service(clients: int = 4, seed: int = 3) -> Dict[str, float]:
    """Sustained throughput of the async sweep service under many clients.

    A synthetic many-client workload: ``clients`` overlapping mini-sweeps
    (adjacent clients share half their cells) are submitted concurrently
    to one :class:`~repro.service.SweepService` over a fresh store, then
    resubmitted against the warm store by a second service.  The service
    determinism contract is asserted while timing — the cold pass computes
    exactly the unique cells (shared cells ride the in-flight dedup) and
    every client's records equal ``SweepRunner(jobs=1)`` on its sweep; the
    warm pass computes nothing.  Reported throughput is cells served per
    second, cache hits included — the number a dashboard of this service
    would call "sustained runs/s".
    """
    import asyncio
    import tempfile

    from ..api import SweepSpec
    from ..api.scenario import ScenarioSpec
    from ..service import SweepService

    scenario = ScenarioSpec(
        field_size=300.0,
        sensor_count=12,
        communication_range=60.0,
        sensing_range=40.0,
        duration=20.0,
        coverage_resolution=15.0,
        seed=seed,
    )
    ranges = (40.0, 50.0, 60.0, 70.0)
    sweeps = []
    for i in range(clients):
        window = sorted({ranges[i % len(ranges)], ranges[(i + 1) % len(ranges)]})
        sweeps.append(
            SweepSpec.grid(
                f"svc-client-{i}",
                scenario,
                schemes=("CPVF",),
                axes={"communication_range": window},
            )
        )
    total_cells = sum(len(sweep.runs) for sweep in sweeps)
    unique_cells = len(
        {spec.fingerprint() for sweep in sweeps for spec in sweep.runs}
    )
    serial = [SweepRunner(jobs=1).run(sweep) for sweep in sweeps]

    async def drive(store_root: str):
        service = SweepService(store=store_root)
        try:
            start = time.perf_counter()
            jobs = [service.submit(sweep) for sweep in sweeps]
            results = await asyncio.gather(*(job.result() for job in jobs))
            elapsed = time.perf_counter() - start
            await service.drain()
            return results, service.metrics, elapsed
        finally:
            service.close()

    with tempfile.TemporaryDirectory(prefix="svc-bench-") as store_root:
        cold_records, cold, cold_s = asyncio.run(drive(store_root))
        warm_records, warm, warm_s = asyncio.run(drive(store_root))

    if cold.computed != unique_cells:
        raise AssertionError(
            f"cold service computed {cold.computed} cells, expected the "
            f"{unique_cells} unique ones"
        )
    if warm.computed != 0 or warm.store_hits != total_cells:
        raise AssertionError(
            f"warm service recomputed {warm.computed} cells "
            f"({warm.store_hits}/{total_cells} store hits)"
        )
    if cold_records != serial or warm_records != serial:
        raise AssertionError("service records diverged from SweepRunner(jobs=1)")
    return {
        "clients": clients,
        "cells_requested": total_cells,
        "unique_cells": unique_cells,
        "cold_ms": cold_s * 1000.0,
        "cold_runs_per_s": total_cells / cold_s if cold_s > 0 else float("inf"),
        "cold_hit_rate": cold.cache_hit_rate(),
        "warm_ms": warm_s * 1000.0,
        "warm_runs_per_s": total_cells / warm_s if warm_s > 0 else float("inf"),
        "warm_hit_rate": warm.cache_hit_rate(),
    }


# ----------------------------------------------------------------------
# Scenario generation (procedural layouts + validation)
# ----------------------------------------------------------------------
def measure_scenario_generation(
    size: float = 1000.0, seeds: Sequence[int] = (1, 2, 3, 4, 5)
) -> List[Dict[str, object]]:
    """Generation + validation throughput of every procedural layout.

    Each sample generates a fresh field from a fresh seed (generation is
    seed-deterministic, so re-timing one seed would only measure the
    field's obstacle-mask cache) and runs under the shared
    :class:`~repro.scenarios.validate.ScenarioValidator` — the number
    reported is the cost a sweep pays per scenario materialisation.
    """
    from ..api import layout_registry
    from ..scenarios import ScenarioValidator

    validator = ScenarioValidator()
    rows: List[Dict[str, object]] = []
    for layout in ("maze", "rooms", "spiral", "clutter", "random-obstacles"):
        builder = layout_registry.get(layout)

        def generate_all() -> None:
            for seed in seeds:
                field = builder(size, seed=seed)
                if not validator.validate_field(field).ok:
                    raise AssertionError(
                        f"{layout} produced an invalid field for seed {seed}"
                    )

        per_call = _best_of(generate_all, repeats=1, rounds=3) / len(seeds)
        rows.append(
            {
                "layout": layout,
                "size": size,
                "gen_ms": per_call * 1000.0,
                "scenarios_per_s": 1.0 / per_call if per_call > 0 else float("inf"),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Lifecycle recovery (fault injection + tree repair)
# ----------------------------------------------------------------------
def measure_lifecycle_recovery(seed: int = 3) -> List[Dict[str, float]]:
    """Cost and quality of recovering from a 20% mid-run kill.

    Runs the lifecycle suite's acceptance scenario (``mass-failure``: a
    fifth of the live population dies at 40% of the horizon on the open
    field) for both connectivity-aware schemes at the bench scale, timing
    the full run and asserting the robustness contract while measuring —
    each scheme must climb back to at least 90% of its pre-event coverage
    by the end of the run.
    """
    from ..api import RunSpec, execute_run
    from .common import BENCH_SCALE
    from .common import make_scenario as _make_scenario
    from .lifecycle import lifecycle_events

    events = lifecycle_events("mass-failure", BENCH_SCALE)
    scenario = _make_scenario(BENCH_SCALE, seed=seed, events=events)
    rows: List[Dict[str, float]] = []
    for scheme in ("CPVF", "FLOOR"):
        start = time.perf_counter()
        record = execute_run(RunSpec(scenario=scenario, scheme=scheme))
        elapsed = time.perf_counter() - start
        outcome = record.events[0]
        if outcome.recovery_ratio < 0.9:
            raise AssertionError(
                f"{scheme} recovered only {outcome.recovery_ratio:.1%} of its "
                "pre-failure coverage (contract: >= 90%)"
            )
        rows.append(
            {
                "scheme": scheme,
                "n": scenario.sensor_count,
                "run_ms": elapsed * 1000.0,
                "pre_coverage": outcome.pre_coverage,
                "post_coverage": outcome.post_coverage,
                "recovery_ratio": outcome.recovery_ratio,
                "time_to_recover": outcome.time_to_recover,
                "extra_distance": outcome.extra_distance,
                "message_burst": outcome.message_burst,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Degraded coverage (unreliable-network backend)
# ----------------------------------------------------------------------
def measure_degraded_coverage(
    seed: int = 3, loss: float = 0.1
) -> List[Dict[str, float]]:
    """Coverage retained under packet loss, per paper scheme.

    Runs both connectivity-aware schemes at the bench scale twice on the
    same scenario — once on the perfect network and once under
    ``loss`` per-message drop probability with the default retry budget —
    timing the degraded run and asserting the robustness contract while
    measuring: each scheme must retain at least 85% of its own
    perfect-network coverage.  The degraded run is profiled so the row
    also carries the ``net.*`` counters (drops, retries, timeouts) that
    explain the message overhead.
    """
    from ..api import NetworkSpec, RunSpec, execute_run
    from .common import BENCH_SCALE
    from .common import make_scenario as _make_scenario

    scenario = _make_scenario(BENCH_SCALE, seed=seed)
    network = NetworkSpec(model="unreliable", loss=loss)
    rows: List[Dict[str, float]] = []
    for scheme in ("CPVF", "FLOOR"):
        perfect = execute_run(RunSpec(scenario=scenario, scheme=scheme))
        start = time.perf_counter()
        degraded = execute_run(
            RunSpec(
                scenario=scenario, scheme=scheme, network=network, profile=True
            )
        )
        elapsed = time.perf_counter() - start
        ratio = (
            degraded.coverage / perfect.coverage
            if perfect.coverage > 0
            else 0.0
        )
        if ratio < 0.85:
            raise AssertionError(
                f"{scheme} retained only {ratio:.1%} of its perfect-network "
                f"coverage at {loss:.0%} loss (contract: >= 85%)"
            )
        counters = (
            degraded.telemetry.counters if degraded.telemetry is not None else {}
        )
        rows.append(
            {
                "scheme": scheme,
                "n": scenario.sensor_count,
                "loss": loss,
                "run_ms": elapsed * 1000.0,
                "perfect_coverage": perfect.coverage,
                "degraded_coverage": degraded.coverage,
                "coverage_ratio": ratio,
                "message_overhead": (
                    degraded.total_messages / perfect.total_messages
                    if perfect.total_messages > 0
                    else 0.0
                ),
                "net_dropped": counters.get("net.dropped", 0),
                "net_retries": counters.get("net.retries", 0),
                "net_timeouts": counters.get("net.timeouts", 0),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Full suite
# ----------------------------------------------------------------------
#: Default population sizes of the classic (seed-vs-fast) entries and of
#: the large-scale three-mode CPVF rows.
DEFAULT_NS = (100, 500, 1000)
SCALE_NS = (2000, 5000, 10000)

#: Entry name -> builder ``(ns, seed) -> value``; ``run_perf_suite`` and
#: the ``run_perf.py --only`` flag both draw from this table.
PERF_ENTRIES: Dict[str, Callable] = {
    "neighbor_table": lambda ns, seed: [
        measure_neighbor_table(n, seed=seed, clustered=clustered)
        for n in ns
        for clustered in (False, True)
    ],
    "cpvf_period": lambda ns, seed: [
        (
            measure_cpvf_period(n, seed=seed)
            if n <= 1000
            else measure_cpvf_period_scale(n, seed=seed)
        )
        for n in ns
    ],
    "cpvf_convergence": lambda ns, seed: [measure_cpvf_convergence(seed=seed)],
    "telemetry_overhead": lambda ns, seed: [
        measure_telemetry_overhead(seed=seed)
    ],
    "coverage": lambda ns, seed: [
        measure_coverage(n, seed=seed) for n in ns if n <= 1000
    ],
    "sweep_throughput": lambda ns, seed: [measure_sweep_throughput(seed=seed)],
    "sweep_service": lambda ns, seed: [measure_sweep_service(seed=seed)],
    "scenario_generation": lambda ns, seed: measure_scenario_generation(),
    "lifecycle_recovery": lambda ns, seed: measure_lifecycle_recovery(seed=seed),
    "degraded_coverage": lambda ns, seed: measure_degraded_coverage(seed=seed),
}


def run_perf_suite(
    ns: Sequence[int] = None,
    seed: int = 3,
    only: Sequence[str] = None,
) -> Dict[str, object]:
    """All (or a subset of) benchmarks over the requested population sizes.

    ``ns`` applies to the per-population entries (``neighbor_table``,
    ``cpvf_period``, ``coverage``); ``only`` restricts the run to a
    subset of :data:`PERF_ENTRIES` so one entry can be regenerated
    without re-running the whole suite.
    """
    names = list(PERF_ENTRIES) if only is None else list(only)
    unknown = [name for name in names if name not in PERF_ENTRIES]
    if unknown:
        raise KeyError(
            f"unknown perf entries {unknown}; choose from {sorted(PERF_ENTRIES)}"
        )
    results: Dict[str, object] = {
        "description": (
            "Spatial-index + batched-CPVF benchmarks: seed algorithms vs "
            "fast paths; parity/convergence is asserted before or while "
            "timing.  cpvf_period rows with a batched_ms column compare "
            "all three CPVF execution modes (seed sequential ladder, "
            "vectorized, colored-batch); their seed_ms runs the seed "
            "algorithm on the fast neighbour infrastructure (the dense "
            "seed matrices would not fit in memory at n >= 5000) and so "
            "understates the true seed cost."
        ),
        "field": "1000x1000 m, rc=60, rs=40, coverage resolution 10 m",
    }
    for name in names:
        entry_ns = ns
        if entry_ns is None:
            entry_ns = (
                DEFAULT_NS + SCALE_NS if name == "cpvf_period" else DEFAULT_NS
            )
        results[name] = PERF_ENTRIES[name](entry_ns, seed)
    return results
