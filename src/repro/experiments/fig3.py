"""Figure 3: CPVF layouts and coverage in three canonical scenarios.

The paper reports the coverage of CPVF with 240 sensors after 750 s for:

* (a) ``rc = 60 m``, ``rs = 40 m``, obstacle-free field  -> 74.5 %
* (b) ``rc = 30 m``, ``rs = 40 m``, obstacle-free field  -> 26.4 %
* (c) ``rc = 60 m``, ``rs = 40 m``, two-obstacle field   -> 37.1 %

The qualitative claims being reproduced: coverage collapses when ``rc``
drops below ``rs`` (sensors cluster because the connectivity constraint
keeps them within ``rc`` of their tree neighbours), and obstacles trap a
large part of the population inside the initial quadrant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .common import ExperimentScale, FULL_SCALE, run_scheme

__all__ = ["Fig3Row", "SCENARIOS", "run_fig3", "format_fig3"]

#: The three scenarios of Figure 3: (label, rc, rs, with_obstacles, paper coverage).
SCENARIOS = (
    ("a", 60.0, 40.0, False, 0.745),
    ("b", 30.0, 40.0, False, 0.264),
    ("c", 60.0, 40.0, True, 0.371),
)


@dataclass(frozen=True)
class Fig3Row:
    """One scenario of Figure 3."""

    scenario: str
    communication_range: float
    sensing_range: float
    with_obstacles: bool
    coverage: float
    paper_coverage: float
    connected: bool
    average_moving_distance: float


def run_fig3(
    scale: ExperimentScale = FULL_SCALE,
    seed: int = 1,
    scheme_name: str = "CPVF",
) -> List[Fig3Row]:
    """Run the three Figure 3 scenarios (CPVF by default)."""
    rows: List[Fig3Row] = []
    for label, rc, rs, with_obstacles, paper in SCENARIOS:
        result = run_scheme(
            scheme_name,
            scale,
            communication_range=rc,
            sensing_range=rs,
            with_obstacles=with_obstacles,
            seed=seed,
        )
        rows.append(
            Fig3Row(
                scenario=label,
                communication_range=rc,
                sensing_range=rs,
                with_obstacles=with_obstacles,
                coverage=result.final_coverage,
                paper_coverage=paper,
                connected=result.connected,
                average_moving_distance=result.average_moving_distance,
            )
        )
    return rows


def format_fig3(rows: List[Fig3Row], title: str = "Figure 3 (CPVF)") -> str:
    """Render the rows as an aligned text table."""
    lines = [title, "-" * len(title)]
    header = (
        f"{'case':<5s}{'rc':>6s}{'rs':>6s}{'obstacles':>11s}"
        f"{'coverage':>10s}{'paper':>8s}{'conn':>6s}{'avg move (m)':>14s}"
    )
    lines.append(header)
    for row in rows:
        lines.append(
            f"{row.scenario:<5s}{row.communication_range:>6.0f}{row.sensing_range:>6.0f}"
            f"{str(row.with_obstacles):>11s}{100 * row.coverage:>9.1f}%"
            f"{100 * row.paper_coverage:>7.1f}%{str(row.connected):>6s}"
            f"{row.average_moving_distance:>14.1f}"
        )
    return "\n".join(lines)
