"""Figure 3: CPVF layouts and coverage in three canonical scenarios.

The paper reports the coverage of CPVF with 240 sensors after 750 s for:

* (a) ``rc = 60 m``, ``rs = 40 m``, obstacle-free field  -> 74.5 %
* (b) ``rc = 30 m``, ``rs = 40 m``, obstacle-free field  -> 26.4 %
* (c) ``rc = 60 m``, ``rs = 40 m``, two-obstacle field   -> 37.1 %

The qualitative claims being reproduced: coverage collapses when ``rc``
drops below ``rs`` (sensors cluster because the connectivity constraint
keeps them within ``rc`` of their tree neighbours), and obstacles trap a
large part of the population inside the initial quadrant.

The experiment is a three-run sweep: :func:`sweep_fig3` declares the
:class:`~repro.api.specs.RunSpec` grid, :func:`rows_fig3` turns the
records into rows, and :func:`run_fig3` drives both through a
:class:`~repro.api.sweep.SweepRunner`.  Pass ``trace_every`` to record the
per-period coverage time series (rendered by the CLI / formatter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..api import RunRecord, RunSpec, SweepRunner, SweepSpec
from .common import ExperimentScale, FULL_SCALE, format_coverage_traces, make_scenario

__all__ = [
    "Fig3Row",
    "SCENARIOS",
    "sweep_fig3",
    "rows_fig3",
    "run_fig3",
    "format_fig3",
    "format_fig3_records",
]

#: The three scenarios of Figure 3: (label, rc, rs, with_obstacles, paper coverage).
SCENARIOS = (
    ("a", 60.0, 40.0, False, 0.745),
    ("b", 30.0, 40.0, False, 0.264),
    ("c", 60.0, 40.0, True, 0.371),
)


@dataclass(frozen=True)
class Fig3Row:
    """One scenario of Figure 3."""

    scenario: str
    communication_range: float
    sensing_range: float
    with_obstacles: bool
    coverage: float
    paper_coverage: float
    connected: bool
    average_moving_distance: float


def sweep_fig3(
    scale: ExperimentScale = FULL_SCALE,
    seed: int = 1,
    scheme_name: str = "CPVF",
    trace_every: Optional[int] = None,
    paper_coverage=None,
) -> SweepSpec:
    """The declarative Figure 3 sweep (CPVF by default).

    ``paper_coverage`` optionally remaps the per-scenario paper values
    (Figure 8 reuses this sweep with FLOOR's numbers).
    """
    runs = []
    for label, rc, rs, with_obstacles, paper in SCENARIOS:
        if paper_coverage is not None:
            paper = paper_coverage[label]
        runs.append(
            RunSpec(
                scenario=make_scenario(
                    scale,
                    communication_range=rc,
                    sensing_range=rs,
                    seed=seed,
                    layout="two-obstacle" if with_obstacles else "obstacle-free",
                ),
                scheme=scheme_name,
                trace_every=trace_every,
                tags={
                    "scenario": label,
                    "with_obstacles": with_obstacles,
                    "paper_coverage": paper,
                },
            )
        )
    return SweepSpec(name="fig3", runs=tuple(runs))


def rows_fig3(records: Sequence[RunRecord]) -> List[Fig3Row]:
    """Figure 3 rows from executed sweep records."""
    return [
        Fig3Row(
            scenario=record.tag("scenario"),
            communication_range=record.scenario.communication_range,
            sensing_range=record.scenario.sensing_range,
            with_obstacles=record.tag("with_obstacles"),
            coverage=record.coverage,
            paper_coverage=record.tag("paper_coverage"),
            connected=record.connected,
            average_moving_distance=record.average_moving_distance,
        )
        for record in records
    ]


def run_fig3(
    scale: ExperimentScale = FULL_SCALE,
    seed: int = 1,
    scheme_name: str = "CPVF",
    jobs: int = 1,
    trace_every: Optional[int] = None,
) -> List[Fig3Row]:
    """Run the three Figure 3 scenarios (CPVF by default)."""
    records = SweepRunner(jobs=jobs).run(
        sweep_fig3(scale, seed=seed, scheme_name=scheme_name, trace_every=trace_every)
    )
    return rows_fig3(records)


def format_fig3(rows: List[Fig3Row], title: str = "Figure 3 (CPVF)") -> str:
    """Render the rows as an aligned text table."""
    lines = [title, "-" * len(title)]
    header = (
        f"{'case':<5s}{'rc':>6s}{'rs':>6s}{'obstacles':>11s}"
        f"{'coverage':>10s}{'paper':>8s}{'conn':>6s}{'avg move (m)':>14s}"
    )
    lines.append(header)
    for row in rows:
        lines.append(
            f"{row.scenario:<5s}{row.communication_range:>6.0f}{row.sensing_range:>6.0f}"
            f"{str(row.with_obstacles):>11s}{100 * row.coverage:>9.1f}%"
            f"{100 * row.paper_coverage:>7.1f}%{str(row.connected):>6s}"
            f"{row.average_moving_distance:>14.1f}"
        )
    return "\n".join(lines)


def format_fig3_records(
    records: Sequence[RunRecord], title: str = "Figure 3 (CPVF)"
) -> str:
    """Full record-level report: the table plus any coverage time series."""
    report = format_fig3(rows_fig3(records), title=title)
    traces = format_coverage_traces(
        records, label=lambda r: f"{r.scheme} ({r.tag('scenario')})"
    )
    return report + ("\n" + traces if traces else "")
