"""Run every experiment and print the paper's tables and figures.

This module is the command-line face of the reproduction.  Every
experiment is a declarative :class:`~repro.api.specs.SweepSpec` executed
through the process-sharded :class:`~repro.api.sweep.SweepRunner`::

    python -m repro.experiments.runner --list
    python -m repro.experiments.runner --scale bench --jobs 8
    python -m repro.experiments.runner --scale full --only fig3 fig8 \\
        --trace-every 1 --jobs 8 --out results/

``--jobs N`` shards the sweep's independent runs over ``N`` worker
processes; records are merged deterministically, so ``--jobs 8`` output is
identical to the serial run.  ``--trace-every K`` records a metrics trace
every ``K`` periods (Fig 3/8 render it as a coverage time series, and the
traces are kept in the records).  ``--out DIR`` persists one JSON artifact
per experiment (the full typed records plus the formatted report); load
them back with :meth:`repro.api.RunRecord.from_dict`::

    import json
    from repro.api import RunRecord

    payload = json.load(open("results/fig3.json"))
    records = [RunRecord.from_dict(r) for r in payload["records"]]

At full scale a complete sweep takes hours; the default ``bench`` scale
keeps the sweep's shape (relative ordering of schemes, crossover points)
while finishing on a laptop.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..api import RunRecord, SweepRunner, SweepSpec, thaw_params
from ..obs import TelemetrySummary
from ..obs.report import format_summary, write_record_trace
from .common import BENCH_SCALE, FULL_SCALE, SMOKE_SCALE, ExperimentScale
from .degradation import format_degradation, rows_degradation, sweep_degradation
from .fig3 import format_fig3_records, sweep_fig3
from .fig8 import format_fig8_records, sweep_fig8
from .fig9 import format_fig9, rows_fig9, sweep_fig9
from .fig10 import format_fig10, rows_fig10, sweep_fig10
from .fig11 import format_fig11, rows_fig11, sweep_fig11
from .fig12 import format_fig12, rows_fig12, sweep_fig12
from .fig13 import format_fig13, summary_fig13, sweep_fig13
from .gallery import format_gallery, rows_gallery, sweep_gallery
from .lifecycle import format_lifecycle, rows_lifecycle, sweep_lifecycle
from .table1 import format_table1, rows_table1, sweep_table1

__all__ = ["Experiment", "EXPERIMENTS", "run_experiment", "run_experiment_records", "main"]


@dataclass(frozen=True)
class Experiment:
    """One registered experiment: a sweep builder plus a record presenter."""

    name: str
    #: ``(scale, seed, trace_every) -> SweepSpec``.
    build: Callable[[ExperimentScale, int, Optional[int]], SweepSpec]
    #: ``records -> formatted report``.
    present: Callable[[Sequence[RunRecord]], str]


#: Experiment name -> declarative sweep + presenter.
EXPERIMENTS: Dict[str, Experiment] = {
    exp.name: exp
    for exp in (
        Experiment(
            "fig3",
            lambda scale, seed, trace: sweep_fig3(scale, seed=seed, trace_every=trace),
            format_fig3_records,
        ),
        Experiment(
            "fig8",
            lambda scale, seed, trace: sweep_fig8(scale, seed=seed, trace_every=trace),
            format_fig8_records,
        ),
        Experiment(
            "fig9",
            lambda scale, seed, trace: sweep_fig9(scale, seed=seed, trace_every=trace),
            lambda records: format_fig9(rows_fig9(records)),
        ),
        Experiment(
            "fig10",
            lambda scale, seed, trace: sweep_fig10(scale, seed=seed, trace_every=trace),
            lambda records: format_fig10(rows_fig10(records)),
        ),
        Experiment(
            "fig11",
            lambda scale, seed, trace: sweep_fig11(scale, seed=seed, trace_every=trace),
            lambda records: format_fig11(rows_fig11(records)),
        ),
        Experiment(
            "fig12",
            lambda scale, seed, trace: sweep_fig12(scale, seed=seed, trace_every=trace),
            lambda records: format_fig12(rows_fig12(records)),
        ),
        Experiment(
            "fig13",
            lambda scale, seed, trace: sweep_fig13(scale, seed=seed, trace_every=trace),
            lambda records: format_fig13(summary_fig13(records)),
        ),
        Experiment(
            "table1",
            lambda scale, seed, trace: sweep_table1(scale, seed=seed, trace_every=trace),
            lambda records: format_table1(rows_table1(records)),
        ),
        Experiment(
            "gallery",
            lambda scale, seed, trace: sweep_gallery(scale, seed=seed, trace_every=trace),
            lambda records: format_gallery(rows_gallery(records)),
        ),
        Experiment(
            "lifecycle",
            lambda scale, seed, trace: sweep_lifecycle(scale, seed=seed, trace_every=trace),
            lambda records: format_lifecycle(rows_lifecycle(records)),
        ),
        Experiment(
            "degradation",
            lambda scale, seed, trace: sweep_degradation(scale, seed=seed, trace_every=trace),
            lambda records: format_degradation(rows_degradation(records)),
        ),
    )
}

_SCALES = {"full": FULL_SCALE, "bench": BENCH_SCALE, "smoke": SMOKE_SCALE}


def run_experiment_records(
    name: str,
    scale: ExperimentScale,
    jobs: int = 1,
    seed: int = 1,
    trace_every: Optional[int] = None,
    cpvf_mode: Optional[str] = None,
    store=None,
    resume: bool = False,
    profile: bool = False,
) -> Tuple[List[RunRecord], str]:
    """Run one experiment; return its records and formatted report.

    ``cpvf_mode`` selects the CPVF execution strategy (``sequential`` /
    ``vectorized`` / ``batched``, see ``docs/performance.md``) for every
    CPVF run in the sweep; other schemes are untouched.

    ``profile`` turns on telemetry for every run: each record carries a
    :class:`~repro.obs.TelemetrySummary` (phase times + counters), which
    ``main`` aggregates into a per-experiment breakdown.

    ``store`` (a path or :class:`~repro.service.store.RunStore`) binds the
    sweep to a content-addressed run store: completed cells are written
    through as they finish, and with ``resume=True`` cells already in the
    store — from a killed run of this experiment, or from *any* other
    sweep sharing cells — are served without recompute.  See
    ``docs/service.md``.
    """
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}")
    experiment = EXPERIMENTS[name]
    sweep = experiment.build(scale, seed, trace_every)
    if cpvf_mode is not None:
        from ..core import CPVF_MODES

        if cpvf_mode not in CPVF_MODES:
            raise ValueError(
                f"unknown CPVF mode {cpvf_mode!r}; choose from {list(CPVF_MODES)}"
            )
        sweep = SweepSpec(
            name=sweep.name,
            runs=tuple(
                run.replace(
                    scheme_params={
                        **thaw_params(run.scheme_params), "mode": cpvf_mode,
                    }
                )
                if run.scheme == "CPVF"
                else run
                for run in sweep.runs
            ),
        )
    if profile:
        sweep = SweepSpec(
            name=sweep.name,
            runs=tuple(run.replace(profile=True) for run in sweep.runs),
        )
    runner = SweepRunner(jobs=jobs, store=store, reuse=resume)
    records = runner.run(sweep)
    if store is not None and runner.last_cache is not None:
        cache = runner.last_cache
        print(
            f"[{name}: {cache['hits']}/{cache['cells']} cells served from "
            f"the store, {cache['computed']} computed]",
            file=sys.stderr,
        )
    return records, experiment.present(records)


def run_experiment(
    name: str,
    scale: ExperimentScale,
    jobs: int = 1,
    seed: int = 1,
    trace_every: Optional[int] = None,
) -> str:
    """Run one experiment by name and return its formatted report."""
    _, report = run_experiment_records(
        name, scale, jobs=jobs, seed=seed, trace_every=trace_every
    )
    return report


def profile_summary(records: Sequence[RunRecord]) -> TelemetrySummary:
    """The merged telemetry of every profiled record in a sweep."""
    merged = TelemetrySummary()
    for record in records:
        if record.telemetry is not None:
            merged = merged.merge(record.telemetry)
    return merged


def _write_artifact(
    out_dir: Path,
    name: str,
    scale_name: str,
    jobs: int,
    seed: int,
    trace_every: Optional[int],
    records: Sequence[RunRecord],
    report: str,
) -> Path:
    """Persist one experiment's records + report as a JSON artifact."""
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{name}.json"
    payload = {
        "experiment": name,
        "scale": scale_name,
        "jobs": jobs,
        "seed": seed,
        "trace_every": trace_every,
        "records": [record.to_dict() for record in records],
        "report": report,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def main(argv: Sequence[str] | None = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="bench",
        help="experiment scale: smoke (seconds), bench (minutes), full (paper)",
    )
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help="subset of experiments to run (default: all)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes to shard each sweep over (default: 1)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=1,
        help="base random seed (per-repetition seeds are spawned from it)",
    )
    parser.add_argument(
        "--trace-every",
        type=int,
        default=None,
        metavar="K",
        help="record a metrics trace every K periods (1 = per-period series)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="DIR",
        help="write one JSON artifact per experiment (records + report)",
    )
    parser.add_argument(
        "--store",
        type=Path,
        default=None,
        metavar="DIR",
        help=(
            "content-addressed run store: completed cells are persisted "
            "as they finish (see docs/service.md)"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "serve cells already present in --store without recompute "
            "(resume a killed sweep / reuse overlapping sweeps)"
        ),
    )
    parser.add_argument(
        "--cpvf-mode",
        choices=["sequential", "vectorized", "batched"],
        default=None,
        help=(
            "CPVF execution strategy for every CPVF run (see "
            "docs/performance.md); default keeps the scheme's own default"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "collect telemetry for every run and print the aggregated "
            "per-phase time breakdown after each experiment (with --out, "
            "also export a <name>_trace.jsonl readable by "
            "`python -m repro.obs report`)"
        ),
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list the available experiments and exit",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.trace_every is not None and args.trace_every < 1:
        parser.error("--trace-every must be >= 1")
    if args.resume and args.store is None:
        parser.error("--resume requires --store DIR")

    if args.list:
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    scale = _SCALES[args.scale]
    names: List[str] = args.only if args.only else sorted(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiments {unknown}; choose from {sorted(EXPERIMENTS)}"
        )
    for name in names:
        records, report = run_experiment_records(
            name,
            scale,
            jobs=args.jobs,
            seed=args.seed,
            trace_every=args.trace_every,
            cpvf_mode=args.cpvf_mode,
            store=args.store,
            resume=args.resume,
            profile=args.profile,
        )
        print(report)
        if args.profile:
            print()
            print(
                format_summary(
                    profile_summary(records), title=f"{name}: profile"
                )
            )
        if args.out is not None:
            path = _write_artifact(
                args.out,
                name,
                args.scale,
                args.jobs,
                args.seed,
                args.trace_every,
                records,
                report,
            )
            print(f"[wrote {path}]")
            if args.profile:
                trace_path = args.out / f"{name}_trace.jsonl"
                with open(trace_path, "w", encoding="utf-8") as handle:
                    write_record_trace(handle, records)
                print(f"[wrote {trace_path}]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
