"""Run every experiment and print the paper's tables and figures.

This module is the command-line face of the reproduction::

    python -m repro.experiments.runner --scale bench
    python -m repro.experiments.runner --scale full --only fig3 fig8

At full scale a complete sweep takes hours; the default ``bench`` scale
keeps the sweep's shape (relative ordering of schemes, crossover points)
while finishing on a laptop.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Sequence

from .common import BENCH_SCALE, FULL_SCALE, SMOKE_SCALE, ExperimentScale
from .fig3 import format_fig3, run_fig3
from .fig8 import format_fig8, run_fig8
from .fig9 import format_fig9, run_fig9
from .fig10 import format_fig10, run_fig10
from .fig11 import format_fig11, run_fig11
from .fig12 import format_fig12, run_fig12
from .fig13 import format_fig13, run_fig13
from .table1 import format_table1, run_table1

__all__ = ["EXPERIMENTS", "run_experiment", "main"]

#: Experiment name -> (runner, formatter).
EXPERIMENTS: Dict[str, Callable[[ExperimentScale], str]] = {
    "fig3": lambda scale: format_fig3(run_fig3(scale)),
    "fig8": lambda scale: format_fig8(run_fig8(scale)),
    "fig9": lambda scale: format_fig9(run_fig9(scale)),
    "fig10": lambda scale: format_fig10(run_fig10(scale)),
    "fig11": lambda scale: format_fig11(run_fig11(scale)),
    "fig12": lambda scale: format_fig12(run_fig12(scale)),
    "fig13": lambda scale: format_fig13(run_fig13(scale)),
    "table1": lambda scale: format_table1(run_table1(scale)),
}

_SCALES = {"full": FULL_SCALE, "bench": BENCH_SCALE, "smoke": SMOKE_SCALE}


def run_experiment(name: str, scale: ExperimentScale) -> str:
    """Run one experiment by name and return its formatted report."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[name](scale)


def main(argv: Sequence[str] | None = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="bench",
        help="experiment scale: smoke (seconds), bench (minutes), full (paper)",
    )
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help="subset of experiments to run (default: all)",
    )
    args = parser.parse_args(argv)
    scale = _SCALES[args.scale]
    names: List[str] = args.only if args.only else sorted(EXPERIMENTS)
    for name in names:
        print(run_experiment(name, scale))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
