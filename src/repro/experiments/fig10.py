"""Figure 10: coverage of FLOOR, VOR and Minimax versus ``rc / rs``.

With ``rs = 60 m`` and ``rc / rs`` swept from 0.8 to 4, the paper observes:

* VOR and Minimax leave the network disconnected whenever ``rc / rs <= 2``;
* they only construct all-correct Voronoi cells for ``rc / rs >= 3``
  (VOR) / ``>= 4`` (Minimax), and their coverage suffers below that;
* once ``rc / rs`` is large (>= 2.5) the VD schemes perform well and can
  slightly exceed FLOOR because they ignore the connectivity constraint.

The VD baselines run through the same registry as FLOOR: their adapter
handles the explosion dispersal and the Voronoi rounds, and reports the
cell-correctness check as a record extra (``check_voronoi``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..api import RunRecord, RunSpec, SweepRunner, SweepSpec
from .common import ExperimentScale, FULL_SCALE, make_scenario

__all__ = [
    "Fig10Row",
    "DEFAULT_RATIOS",
    "sweep_fig10",
    "rows_fig10",
    "run_fig10",
    "format_fig10",
]

#: ``rc / rs`` ratios swept by the figure.
DEFAULT_RATIOS = (0.8, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0)


@dataclass(frozen=True)
class Fig10Row:
    """Result of one scheme at one ``rc / rs`` ratio."""

    scheme: str
    ratio: float
    communication_range: float
    sensing_range: float
    coverage: float
    connected: bool
    all_voronoi_cells_correct: bool


def sweep_fig10(
    scale: ExperimentScale = FULL_SCALE,
    ratios: Sequence[float] | None = None,
    sensing_range: float = 60.0,
    vd_rounds: int = 10,
    seed: int = 1,
    include_floor: bool = True,
    trace_every: Optional[int] = None,
) -> SweepSpec:
    """The declarative Figure 10 sweep."""
    runs = []
    for ratio in list(ratios or DEFAULT_RATIOS):
        scenario = make_scenario(
            scale,
            communication_range=ratio * sensing_range,
            sensing_range=sensing_range,
            seed=seed,
        )
        if include_floor:
            runs.append(
                RunSpec(
                    scenario=scenario,
                    scheme="FLOOR",
                    trace_every=trace_every,
                    tags={"ratio": ratio},
                )
            )
        for vd_scheme in ("VOR", "Minimax"):
            runs.append(
                RunSpec(
                    scenario=scenario,
                    scheme=vd_scheme,
                    scheme_params={"rounds": vd_rounds, "check_voronoi": True},
                    tags={"ratio": ratio},
                )
            )
    return SweepSpec(name="fig10", runs=tuple(runs))


def rows_fig10(records: Sequence[RunRecord]) -> List[Fig10Row]:
    """Figure 10 rows from executed sweep records."""
    return [
        Fig10Row(
            scheme=record.scheme,
            ratio=record.tag("ratio"),
            communication_range=record.scenario.communication_range,
            sensing_range=record.scenario.sensing_range,
            coverage=record.coverage,
            connected=record.connected,
            all_voronoi_cells_correct=record.extra(
                "all_voronoi_cells_correct", True
            ),
        )
        for record in records
    ]


def run_fig10(
    scale: ExperimentScale = FULL_SCALE,
    ratios: Sequence[float] | None = None,
    sensing_range: float = 60.0,
    vd_rounds: int = 10,
    seed: int = 1,
    include_floor: bool = True,
    jobs: int = 1,
) -> List[Fig10Row]:
    """Run the Figure 10 sweep (optionally sharded over ``jobs`` processes)."""
    records = SweepRunner(jobs=jobs).run(
        sweep_fig10(
            scale,
            ratios=ratios,
            sensing_range=sensing_range,
            vd_rounds=vd_rounds,
            seed=seed,
            include_floor=include_floor,
        )
    )
    return rows_fig10(records)


def format_fig10(rows: List[Fig10Row]) -> str:
    """Render the sweep as an aligned text table."""
    lines = ["Figure 10 (coverage vs. rc/rs, rs = 60 m)", "-" * 42]
    lines.append(
        f"{'rc/rs':>6s} {'scheme':<9s} {'coverage':>9s} {'connected':>10s} {'correct VD':>11s}"
    )
    for row in sorted(rows, key=lambda r: (r.ratio, r.scheme)):
        lines.append(
            f"{row.ratio:>6.1f} {row.scheme:<9s} {100 * row.coverage:>8.1f}%"
            f" {str(row.connected):>10s} {str(row.all_voronoi_cells_correct):>11s}"
        )
    return "\n".join(lines)
