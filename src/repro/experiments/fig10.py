"""Figure 10: coverage of FLOOR, VOR and Minimax versus ``rc / rs``.

With ``rs = 60 m`` and ``rc / rs`` swept from 0.8 to 4, the paper observes:

* VOR and Minimax leave the network disconnected whenever ``rc / rs <= 2``;
* they only construct all-correct Voronoi cells for ``rc / rs >= 3``
  (VOR) / ``>= 4`` (Minimax), and their coverage suffers below that;
* once ``rc / rs`` is large (>= 2.5) the VD schemes perform well and can
  slightly exceed FLOOR because they ignore the connectivity constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import List, Sequence

from ..baselines import MinimaxScheme, VorScheme, explode
from ..field import clustered_initial_positions, obstacle_free_field
from ..metrics import positions_are_connected
from ..voronoi import diagram_is_correct
from .common import ExperimentScale, FULL_SCALE, run_scheme

__all__ = ["Fig10Row", "DEFAULT_RATIOS", "run_fig10", "format_fig10"]

#: ``rc / rs`` ratios swept by the figure.
DEFAULT_RATIOS = (0.8, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0)


@dataclass(frozen=True)
class Fig10Row:
    """Result of one scheme at one ``rc / rs`` ratio."""

    scheme: str
    ratio: float
    communication_range: float
    sensing_range: float
    coverage: float
    connected: bool
    all_voronoi_cells_correct: bool


def run_fig10(
    scale: ExperimentScale = FULL_SCALE,
    ratios: Sequence[float] | None = None,
    sensing_range: float = 60.0,
    vd_rounds: int = 10,
    seed: int = 1,
    include_floor: bool = True,
) -> List[Fig10Row]:
    """Run the Figure 10 sweep."""
    ratios = list(ratios or DEFAULT_RATIOS)
    field = obstacle_free_field(scale.field_size)
    rows: List[Fig10Row] = []

    for ratio in ratios:
        rc = ratio * sensing_range

        if include_floor:
            floor_result = run_scheme(
                "FLOOR",
                scale,
                communication_range=rc,
                sensing_range=sensing_range,
                seed=seed,
                field=field,
            )
            floor_world = floor_result.world
            floor_positions = floor_world.positions() if floor_world else []
            rows.append(
                Fig10Row(
                    scheme="FLOOR",
                    ratio=ratio,
                    communication_range=rc,
                    sensing_range=sensing_range,
                    coverage=floor_result.final_coverage,
                    connected=floor_result.connected,
                    all_voronoi_cells_correct=True,
                )
            )

        # VOR and Minimax: explosion from the clustered start, then rounds.
        rng = Random(seed)
        initial = clustered_initial_positions(
            scale.sensor_count, rng, cluster_size=scale.field_size / 2.0, field=field
        )
        exploded = explode(initial, field, rng)
        for scheme_cls in (VorScheme, MinimaxScheme):
            scheme = scheme_cls(field, rc, sensing_range)
            vd_result = scheme.run(exploded.positions, rounds=vd_rounds)
            coverage = scheme.coverage(
                vd_result.final_positions, scale.coverage_resolution
            )
            connected = positions_are_connected(vd_result.final_positions, rc)
            vd_check = diagram_is_correct(vd_result.final_positions, rc, field)
            rows.append(
                Fig10Row(
                    scheme=scheme.name,
                    ratio=ratio,
                    communication_range=rc,
                    sensing_range=sensing_range,
                    coverage=coverage,
                    connected=connected,
                    all_voronoi_cells_correct=vd_check.all_correct,
                )
            )
    return rows


def format_fig10(rows: List[Fig10Row]) -> str:
    """Render the sweep as an aligned text table."""
    lines = ["Figure 10 (coverage vs. rc/rs, rs = 60 m)", "-" * 42]
    lines.append(
        f"{'rc/rs':>6s} {'scheme':<9s} {'coverage':>9s} {'connected':>10s} {'correct VD':>11s}"
    )
    for row in sorted(rows, key=lambda r: (r.ratio, r.scheme)):
        lines.append(
            f"{row.ratio:>6.1f} {row.scheme:<9s} {100 * row.coverage:>8.1f}%"
            f" {str(row.connected):>10s} {str(row.all_voronoi_cells_correct):>11s}"
        )
    return "\n".join(lines)
