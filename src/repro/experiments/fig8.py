"""Figure 8: FLOOR layouts and coverage in the Figure 3 scenarios.

The paper's coverage numbers for FLOOR with 240 sensors after 750 s:

* (a) ``rc = 60 m``, ``rs = 40 m``, obstacle-free field  -> 78.8 %
* (b) ``rc = 30 m``, ``rs = 40 m``, obstacle-free field  -> 46.2 %
* (c) ``rc = 60 m``, ``rs = 40 m``, two-obstacle field   -> 72.5 %

The qualitative claims being reproduced: FLOOR beats CPVF in every
scenario, degrades far more gracefully when ``rc < rs`` (floor separation
removes the vertical sensing overlap) and has no difficulty expanding
coverage past obstacles.

Declaratively this is the Figure 3 sweep with the FLOOR scheme and FLOOR's
paper values; see :mod:`repro.experiments.fig3`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..api import RunRecord, SweepRunner, SweepSpec
from .common import ExperimentScale, FULL_SCALE
from .fig3 import Fig3Row, format_fig3_records, rows_fig3, sweep_fig3

__all__ = [
    "FIG8_PAPER_COVERAGE",
    "sweep_fig8",
    "rows_fig8",
    "run_fig8",
    "format_fig8",
    "format_fig8_records",
]

#: Paper coverage values for FLOOR, keyed by scenario label.
FIG8_PAPER_COVERAGE = {"a": 0.788, "b": 0.462, "c": 0.725}


def sweep_fig8(
    scale: ExperimentScale = FULL_SCALE,
    seed: int = 1,
    trace_every: Optional[int] = None,
) -> SweepSpec:
    """The declarative Figure 8 sweep: the Fig 3 scenarios under FLOOR."""
    base = sweep_fig3(
        scale,
        seed=seed,
        scheme_name="FLOOR",
        trace_every=trace_every,
        paper_coverage=FIG8_PAPER_COVERAGE,
    )
    return SweepSpec(name="fig8", runs=base.runs)


def rows_fig8(records: Sequence[RunRecord]) -> List[Fig3Row]:
    """Figure 8 rows from executed sweep records."""
    return rows_fig3(records)


def run_fig8(
    scale: ExperimentScale = FULL_SCALE,
    seed: int = 1,
    jobs: int = 1,
    trace_every: Optional[int] = None,
) -> List[Fig3Row]:
    """Run the three Figure 8 scenarios with FLOOR."""
    records = SweepRunner(jobs=jobs).run(
        sweep_fig8(scale, seed=seed, trace_every=trace_every)
    )
    return rows_fig8(records)


def format_fig8(rows: List[Fig3Row]) -> str:
    """Render the FLOOR rows as an aligned text table."""
    from .fig3 import format_fig3

    return format_fig3(rows, title="Figure 8 (FLOOR)")


def format_fig8_records(records: Sequence[RunRecord]) -> str:
    """Full record-level report: the table plus any coverage time series."""
    return format_fig3_records(records, title="Figure 8 (FLOOR)")
