"""Figure 8: FLOOR layouts and coverage in the Figure 3 scenarios.

The paper's coverage numbers for FLOOR with 240 sensors after 750 s:

* (a) ``rc = 60 m``, ``rs = 40 m``, obstacle-free field  -> 78.8 %
* (b) ``rc = 30 m``, ``rs = 40 m``, obstacle-free field  -> 46.2 %
* (c) ``rc = 60 m``, ``rs = 40 m``, two-obstacle field   -> 72.5 %

The qualitative claims being reproduced: FLOOR beats CPVF in every
scenario, degrades far more gracefully when ``rc < rs`` (floor separation
removes the vertical sensing overlap) and has no difficulty expanding
coverage past obstacles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .common import ExperimentScale, FULL_SCALE
from .fig3 import Fig3Row, run_fig3

__all__ = ["FIG8_PAPER_COVERAGE", "run_fig8", "format_fig8"]

#: Paper coverage values for FLOOR, keyed by scenario label.
FIG8_PAPER_COVERAGE = {"a": 0.788, "b": 0.462, "c": 0.725}


def run_fig8(scale: ExperimentScale = FULL_SCALE, seed: int = 1) -> List[Fig3Row]:
    """Run the three Figure 8 scenarios with FLOOR."""
    rows = run_fig3(scale, seed=seed, scheme_name="FLOOR")
    return [
        Fig3Row(
            scenario=row.scenario,
            communication_range=row.communication_range,
            sensing_range=row.sensing_range,
            with_obstacles=row.with_obstacles,
            coverage=row.coverage,
            paper_coverage=FIG8_PAPER_COVERAGE[row.scenario],
            connected=row.connected,
            average_moving_distance=row.average_moving_distance,
        )
        for row in rows
    ]


def format_fig8(rows: List[Fig3Row]) -> str:
    """Render the FLOOR rows as an aligned text table."""
    from .fig3 import format_fig3

    return format_fig3(rows, title="Figure 8 (FLOOR)")
