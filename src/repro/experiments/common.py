"""Shared infrastructure for the experiment reproductions.

Every experiment module in this package reproduces one table or figure of
the paper.  They all share the canonical setting of Section 4.3 / 6:

* field: 1000 x 1000 m, base station at the origin;
* sensors: 240, initially clustered uniformly at random in the lower-left
  500 x 500 m quadrant;
* kinematics: maximum speed 2 m/s, period 1 s, horizon 750 s;
* ranges: ``rc`` and ``rs`` between 30 and 60 m.

A full-scale run of a single scheme takes on the order of a minute of CPU
time, and several experiments sweep dozens of configurations, so every
experiment accepts an :class:`ExperimentScale` that shrinks the field,
population and horizon proportionally.  ``SMOKE_SCALE`` (used by the test
suite) and ``BENCH_SCALE`` (used by the pytest-benchmark harness) keep the
geometry ratios of the paper while finishing quickly; ``FULL_SCALE``
reproduces the paper's exact parameters.

The experiment modules themselves are declarative: each builds a
:class:`~repro.api.specs.SweepSpec` (via :func:`make_scenario` and the
scheme registry) and executes it through the process-sharded
:class:`~repro.api.sweep.SweepRunner`.  The helpers below also keep the
small imperative surface (``make_config`` / ``make_world`` /
``run_scheme``) for scripts and tests that want a single run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..api import (
    PeriodSchemeAdapter,
    RunRecord,
    ScenarioSpec,
    scheme_registry,
)
from ..field import Field
from ..sim import SimulationConfig, SimulationEngine, SimulationResult, World

__all__ = [
    "ExperimentScale",
    "FULL_SCALE",
    "BENCH_SCALE",
    "SMOKE_SCALE",
    "make_config",
    "make_scenario",
    "make_world",
    "run_scheme",
    "scheme_factory",
    "format_coverage_traces",
]


@dataclass(frozen=True)
class ExperimentScale:
    """Scaling knobs applied to the paper's canonical setting."""

    #: Side length of the square field in metres.
    field_size: float = 1000.0
    #: Default number of sensors (experiments may sweep around it).
    sensor_count: int = 240
    #: Simulation horizon in seconds.
    duration: float = 750.0
    #: Coverage-grid resolution in metres.
    coverage_resolution: float = 10.0
    #: Number of repetitions for experiments that aggregate over runs.
    repetitions: int = 300

    def scaled_count(self, full_scale_count: int) -> int:
        """Scale a sensor count from the paper proportionally to this scale."""
        factor = self.sensor_count / 240.0
        return max(4, int(round(full_scale_count * factor)))


#: The paper's exact parameters.
FULL_SCALE = ExperimentScale()

#: Laptop-friendly scale used by the pytest-benchmark harness.
BENCH_SCALE = ExperimentScale(
    field_size=500.0,
    sensor_count=70,
    duration=250.0,
    coverage_resolution=12.5,
    repetitions=8,
)

#: Very small scale used by the test suite for end-to-end smoke tests.
SMOKE_SCALE = ExperimentScale(
    field_size=300.0,
    sensor_count=24,
    duration=80.0,
    coverage_resolution=15.0,
    repetitions=2,
)


def make_config(
    scale: ExperimentScale,
    communication_range: float = 60.0,
    sensing_range: float = 40.0,
    sensor_count: Optional[int] = None,
    seed: int = 1,
    **overrides,
) -> SimulationConfig:
    """A :class:`SimulationConfig` for one experiment run."""
    return SimulationConfig(
        sensor_count=sensor_count if sensor_count is not None else scale.sensor_count,
        communication_range=communication_range,
        sensing_range=sensing_range,
        duration=scale.duration,
        coverage_resolution=scale.coverage_resolution,
        seed=seed,
        **overrides,
    )


def make_scenario(
    scale: ExperimentScale,
    communication_range: float = 60.0,
    sensing_range: float = 40.0,
    sensor_count: Optional[int] = None,
    seed: int = 1,
    layout: str = "obstacle-free",
    **overrides,
) -> ScenarioSpec:
    """A :class:`ScenarioSpec` on the canonical setting at this scale.

    ``overrides`` pass through to the spec (``layout_params``,
    ``placement``, ``invitation_ttl``, ``oscillation_delta``, ...).
    """
    return ScenarioSpec(
        field_size=scale.field_size,
        layout=layout,
        sensor_count=(
            sensor_count if sensor_count is not None else scale.sensor_count
        ),
        communication_range=communication_range,
        sensing_range=sensing_range,
        duration=scale.duration,
        coverage_resolution=scale.coverage_resolution,
        seed=seed,
        **overrides,
    )


def make_world(
    config: SimulationConfig,
    scale: ExperimentScale,
    field: Optional[Field] = None,
    with_obstacles: bool = False,
) -> World:
    """Build a world on the canonical field (obstacle-free or two-obstacle).

    Sensors start clustered in the lower-left quadrant of the scaled field
    (unless the configuration requests a uniform start); the placement is
    drawn exactly once, by :meth:`World.create`, from the world's own RNG
    stream — the cluster square already scales with the field.
    """
    if field is None:
        from ..field import obstacle_free_field, two_obstacle_field

        field = (
            two_obstacle_field(scale.field_size)
            if with_obstacles
            else obstacle_free_field(scale.field_size)
        )
    return World.create(config, field)


def scheme_factory(name: str, config: SimulationConfig) -> Callable[[], object]:
    """A factory for a period-based scheme instance by registered name.

    Only engine-driven schemes (CPVF, FLOOR, ...) can be instantiated this
    way; round-based and analytic baselines run through
    :func:`repro.api.execute_run` instead.  Unknown or non-period names
    raise :class:`ValueError` listing the period-based schemes available.
    """
    try:
        adapter = scheme_registry.get(name)
    except KeyError:
        adapter = None
    if not isinstance(adapter, PeriodSchemeAdapter):
        available = sorted(
            n
            for n in scheme_registry.names()
            if isinstance(scheme_registry.get(n), PeriodSchemeAdapter)
        )
        raise ValueError(
            f"unknown scheme name: {name!r}; period-based schemes: {available}"
        )
    return lambda: adapter.build_scheme(config, {})


def run_scheme(
    scheme_name: str,
    scale: ExperimentScale,
    communication_range: float = 60.0,
    sensing_range: float = 40.0,
    sensor_count: Optional[int] = None,
    with_obstacles: bool = False,
    field: Optional[Field] = None,
    seed: int = 1,
    **config_overrides,
) -> SimulationResult:
    """Run one period-based scheme on the canonical setting.

    A convenience wrapper for scripts and tests that want a single
    simulation with the full :class:`SimulationResult` (including the
    world).  Experiments run grids of these through
    :class:`~repro.api.sweep.SweepRunner` instead.
    """
    config = make_config(
        scale,
        communication_range=communication_range,
        sensing_range=sensing_range,
        sensor_count=sensor_count,
        seed=seed,
        **config_overrides,
    )
    world = make_world(config, scale, field=field, with_obstacles=with_obstacles)
    scheme = scheme_factory(scheme_name, config)()
    engine = SimulationEngine(world, scheme, keep_world=True)
    return engine.run()


def format_coverage_traces(
    records: Sequence[RunRecord],
    label: Callable[[RunRecord], str] = lambda r: r.scheme,
    max_points: int = 12,
) -> str:
    """Render the per-period coverage time series of traced records.

    Returns an empty string when no record carries a trace (i.e. the sweep
    ran without ``trace_every``), so formatters can append it blindly.
    """
    traced = [r for r in records if r.trace]
    if not traced:
        return ""
    lines = ["coverage over time (traced periods)"]
    for record in traced:
        points = list(record.trace)
        if len(points) > max_points:
            stride = max(1, len(points) // max_points)
            sampled = points[::stride]
            if sampled[-1] is not points[-1]:
                sampled.append(points[-1])
            points = sampled
        series = " ".join(
            f"{p.time:.0f}s:{100 * p.coverage:.1f}%" for p in points
        )
        lines.append(f"  {label(record):<12s} {series}")
    return "\n".join(lines)
