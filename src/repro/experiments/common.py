"""Shared infrastructure for the experiment reproductions.

Every experiment module in this package reproduces one table or figure of
the paper.  They all share the canonical setting of Section 4.3 / 6:

* field: 1000 x 1000 m, base station at the origin;
* sensors: 240, initially clustered uniformly at random in the lower-left
  500 x 500 m quadrant;
* kinematics: maximum speed 2 m/s, period 1 s, horizon 750 s;
* ranges: ``rc`` and ``rs`` between 30 and 60 m.

A full-scale run of a single scheme takes on the order of a minute of CPU
time, and several experiments sweep dozens of configurations, so every
experiment accepts an :class:`ExperimentScale` that shrinks the field,
population and horizon proportionally.  ``SMOKE_SCALE`` (used by the test
suite) and ``BENCH_SCALE`` (used by the pytest-benchmark harness) keep the
geometry ratios of the paper while finishing quickly; ``FULL_SCALE``
reproduces the paper's exact parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple

from ..core import CPVFScheme, FloorScheme
from ..field import (
    Field,
    clustered_initial_positions,
    obstacle_free_field,
    two_obstacle_field,
)
from ..geometry import Vec2
from ..sim import SimulationConfig, SimulationEngine, SimulationResult, World

__all__ = [
    "ExperimentScale",
    "FULL_SCALE",
    "BENCH_SCALE",
    "SMOKE_SCALE",
    "make_config",
    "make_world",
    "run_scheme",
    "scheme_factory",
]


@dataclass(frozen=True)
class ExperimentScale:
    """Scaling knobs applied to the paper's canonical setting."""

    #: Side length of the square field in metres.
    field_size: float = 1000.0
    #: Default number of sensors (experiments may sweep around it).
    sensor_count: int = 240
    #: Simulation horizon in seconds.
    duration: float = 750.0
    #: Coverage-grid resolution in metres.
    coverage_resolution: float = 10.0
    #: Number of repetitions for experiments that aggregate over runs.
    repetitions: int = 300

    def scaled_count(self, full_scale_count: int) -> int:
        """Scale a sensor count from the paper proportionally to this scale."""
        factor = self.sensor_count / 240.0
        return max(4, int(round(full_scale_count * factor)))


#: The paper's exact parameters.
FULL_SCALE = ExperimentScale()

#: Laptop-friendly scale used by the pytest-benchmark harness.
BENCH_SCALE = ExperimentScale(
    field_size=500.0,
    sensor_count=70,
    duration=250.0,
    coverage_resolution=12.5,
    repetitions=8,
)

#: Very small scale used by the test suite for end-to-end smoke tests.
SMOKE_SCALE = ExperimentScale(
    field_size=300.0,
    sensor_count=24,
    duration=80.0,
    coverage_resolution=15.0,
    repetitions=2,
)


def make_config(
    scale: ExperimentScale,
    communication_range: float = 60.0,
    sensing_range: float = 40.0,
    sensor_count: Optional[int] = None,
    seed: int = 1,
    **overrides,
) -> SimulationConfig:
    """A :class:`SimulationConfig` for one experiment run."""
    return SimulationConfig(
        sensor_count=sensor_count if sensor_count is not None else scale.sensor_count,
        communication_range=communication_range,
        sensing_range=sensing_range,
        duration=scale.duration,
        coverage_resolution=scale.coverage_resolution,
        seed=seed,
        **overrides,
    )


def make_world(
    config: SimulationConfig,
    scale: ExperimentScale,
    field: Optional[Field] = None,
    with_obstacles: bool = False,
) -> World:
    """Build a world on the canonical field (obstacle-free or two-obstacle).

    Sensors start clustered in the lower-left quadrant of the scaled field,
    unless the configuration requests a uniform start.
    """
    if field is None:
        field = (
            two_obstacle_field(scale.field_size)
            if with_obstacles
            else obstacle_free_field(scale.field_size)
        )
    world = World.create(config, field, initial_positions=None)
    if config.clustered_start:
        # World.create already used the cluster square of side 500 m; redo
        # the placement with the scaled cluster (half the scaled field).
        import random as _random

        rng = _random.Random(config.seed)
        positions = clustered_initial_positions(
            config.sensor_count,
            rng,
            cluster_size=scale.field_size / 2.0,
            field=field,
        )
        for sensor, position in zip(world.sensors, positions):
            sensor.position = position
    return world


def scheme_factory(name: str, config: SimulationConfig) -> Callable[[], object]:
    """A factory for a scheme instance by name ("CPVF" or "FLOOR")."""
    normalized = name.strip().upper()
    if normalized == "CPVF":
        return lambda: CPVFScheme(
            oscillation_delta=config.oscillation_delta,
            oscillation_mode=config.oscillation_mode,
        )
    if normalized == "FLOOR":
        return lambda: FloorScheme(invitation_ttl=config.invitation_ttl)
    raise ValueError(f"unknown scheme name: {name!r}")


def run_scheme(
    scheme_name: str,
    scale: ExperimentScale,
    communication_range: float = 60.0,
    sensing_range: float = 40.0,
    sensor_count: Optional[int] = None,
    with_obstacles: bool = False,
    field: Optional[Field] = None,
    seed: int = 1,
    **config_overrides,
) -> SimulationResult:
    """Run one scheme on the canonical setting and return its result.

    The returned result keeps a reference to the simulated world so callers
    can inspect final positions (e.g. for the Fig 11 Hungarian bounds).
    """
    config = make_config(
        scale,
        communication_range=communication_range,
        sensing_range=sensing_range,
        sensor_count=sensor_count,
        seed=seed,
        **config_overrides,
    )
    world = make_world(config, scale, field=field, with_obstacles=with_obstacles)
    scheme = scheme_factory(scheme_name, config)()
    engine = SimulationEngine(world, scheme, keep_world=True)
    return engine.run()
