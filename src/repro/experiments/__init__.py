"""Reproductions of every table and figure in the paper's evaluation.

Every experiment is declared as a grid of independent runs and executed
through the declarative experiment API (:mod:`repro.api`, re-exported
here):

* a frozen :class:`ScenarioSpec` describes one setting — field layout by
  registered name, initial placement, ranges, kinematics, seed — and
  builds a ready-to-run world in one pass;
* a :class:`RunSpec` pairs a scenario with a registered scheme name
  (period-based CPVF/FLOOR, round-based VOR/Minimax and analytic
  OPT/OPT-Hungarian all share one adapter interface);
* a :class:`SweepSpec` names a tuple of runs, and :class:`SweepRunner`
  executes it — serially or sharded over worker processes — yielding
  typed, JSON-serializable :class:`RunRecord` objects that are identical
  whatever the job count.

Run a single scheme::

    from repro.experiments import SMOKE_SCALE, make_scenario
    from repro.experiments import RunSpec, execute_run

    scenario = make_scenario(SMOKE_SCALE, communication_range=60.0, seed=7)
    record = execute_run(RunSpec(scenario=scenario, scheme="FLOOR"))
    print(f"coverage: {record.coverage:.1%}")

Run a figure's sweep on eight processes, with per-period coverage traces::

    from repro.experiments import BENCH_SCALE, SweepRunner
    from repro.experiments.fig3 import sweep_fig3, rows_fig3, format_fig3

    records = SweepRunner(jobs=8).run(sweep_fig3(BENCH_SCALE, trace_every=1))
    print(format_fig3(rows_fig3(records)))
    print(records[0].trace[:3])   # (time, coverage, ...) per period

Declare a custom sweep::

    from repro.experiments import ScenarioSpec, SweepSpec, SweepRunner

    sweep = SweepSpec.grid(
        "coverage-vs-rc",
        ScenarioSpec(field_size=500.0, sensor_count=70, duration=250.0),
        schemes=("CPVF", "FLOOR"),
        axes={"communication_range": [30.0, 45.0, 60.0]},
        repetitions=4,     # per-repetition seeds are spawned deterministically
    )
    records = SweepRunner(jobs=4).run(sweep)

The command line (see :mod:`repro.experiments.runner`)::

    python -m repro.experiments.runner --list
    python -m repro.experiments.runner --scale smoke --only fig3 \\
        --jobs 2 --trace-every 1 --out results/
"""

from ..api import (
    RunRecord,
    RunSpec,
    ScenarioSpec,
    SweepRunner,
    SweepSpec,
    TracePoint,
    derive_seed,
    execute_run,
    layout_registry,
    placement_registry,
    register_layout,
    register_placement,
    register_scheme,
    scheme_registry,
    spawn_seeds,
)
from .common import (
    BENCH_SCALE,
    FULL_SCALE,
    SMOKE_SCALE,
    ExperimentScale,
    format_coverage_traces,
    make_config,
    make_scenario,
    make_world,
    run_scheme,
)
from .degradation import (
    DegradationRow,
    format_degradation,
    rows_degradation,
    run_degradation,
    sweep_degradation,
)
from .fig3 import Fig3Row, format_fig3, rows_fig3, run_fig3, sweep_fig3
from .fig8 import format_fig8, rows_fig8, run_fig8, sweep_fig8
from .fig9 import Fig9Row, format_fig9, rows_fig9, run_fig9, sweep_fig9
from .fig10 import Fig10Row, format_fig10, rows_fig10, run_fig10, sweep_fig10
from .fig11 import Fig11Row, format_fig11, rows_fig11, run_fig11, sweep_fig11
from .fig12 import Fig12Row, format_fig12, rows_fig12, run_fig12, sweep_fig12
from .fig13 import (
    Fig13Run,
    Fig13Summary,
    format_fig13,
    run_fig13,
    summary_fig13,
    sweep_fig13,
)
from .lifecycle import (
    LifecycleRow,
    format_lifecycle,
    lifecycle_events,
    rows_lifecycle,
    run_lifecycle,
    sweep_lifecycle,
)
from .table1 import (
    Table1Row,
    format_table1,
    rows_table1,
    run_table1,
    sweep_table1,
)
from .runner import EXPERIMENTS, Experiment, run_experiment, run_experiment_records

__all__ = [
    # Declarative API (repro.api re-exports)
    "ScenarioSpec",
    "RunSpec",
    "RunRecord",
    "SweepSpec",
    "SweepRunner",
    "TracePoint",
    "execute_run",
    "derive_seed",
    "spawn_seeds",
    "scheme_registry",
    "layout_registry",
    "placement_registry",
    "register_scheme",
    "register_layout",
    "register_placement",
    # Scales and canonical-setting helpers
    "BENCH_SCALE",
    "FULL_SCALE",
    "SMOKE_SCALE",
    "ExperimentScale",
    "make_config",
    "make_scenario",
    "make_world",
    "run_scheme",
    "format_coverage_traces",
    # Figures and tables
    "Fig3Row",
    "sweep_fig3",
    "rows_fig3",
    "run_fig3",
    "format_fig3",
    "sweep_fig8",
    "rows_fig8",
    "run_fig8",
    "format_fig8",
    "Fig9Row",
    "sweep_fig9",
    "rows_fig9",
    "run_fig9",
    "format_fig9",
    "Fig10Row",
    "sweep_fig10",
    "rows_fig10",
    "run_fig10",
    "format_fig10",
    "Fig11Row",
    "sweep_fig11",
    "rows_fig11",
    "run_fig11",
    "format_fig11",
    "Fig12Row",
    "sweep_fig12",
    "rows_fig12",
    "run_fig12",
    "format_fig12",
    "Fig13Run",
    "Fig13Summary",
    "sweep_fig13",
    "summary_fig13",
    "run_fig13",
    "format_fig13",
    "Table1Row",
    "sweep_table1",
    "rows_table1",
    "run_table1",
    "format_table1",
    "LifecycleRow",
    "lifecycle_events",
    "sweep_lifecycle",
    "rows_lifecycle",
    "run_lifecycle",
    "format_lifecycle",
    "DegradationRow",
    "sweep_degradation",
    "rows_degradation",
    "run_degradation",
    "format_degradation",
    # Runner
    "Experiment",
    "EXPERIMENTS",
    "run_experiment",
    "run_experiment_records",
]
