"""Reproductions of every table and figure in the paper's evaluation."""

from .common import (
    BENCH_SCALE,
    FULL_SCALE,
    SMOKE_SCALE,
    ExperimentScale,
    make_config,
    make_world,
    run_scheme,
)
from .fig3 import Fig3Row, run_fig3, format_fig3
from .fig8 import run_fig8, format_fig8
from .fig9 import Fig9Row, run_fig9, format_fig9
from .fig10 import Fig10Row, run_fig10, format_fig10
from .fig11 import Fig11Row, run_fig11, format_fig11
from .fig12 import Fig12Row, run_fig12, format_fig12
from .fig13 import Fig13Run, Fig13Summary, run_fig13, format_fig13
from .table1 import Table1Row, run_table1, format_table1
from .runner import EXPERIMENTS, run_experiment

__all__ = [
    "BENCH_SCALE",
    "FULL_SCALE",
    "SMOKE_SCALE",
    "ExperimentScale",
    "make_config",
    "make_world",
    "run_scheme",
    "Fig3Row",
    "run_fig3",
    "format_fig3",
    "run_fig8",
    "format_fig8",
    "Fig9Row",
    "run_fig9",
    "format_fig9",
    "Fig10Row",
    "run_fig10",
    "format_fig10",
    "Fig11Row",
    "run_fig11",
    "format_fig11",
    "Fig12Row",
    "run_fig12",
    "format_fig12",
    "Fig13Run",
    "Fig13Summary",
    "run_fig13",
    "format_fig13",
    "Table1Row",
    "run_table1",
    "format_table1",
    "EXPERIMENTS",
    "run_experiment",
]
