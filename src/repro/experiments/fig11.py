"""Figure 11: average moving distance of six schemes.

The paper compares the average per-sensor moving distance, starting from the
clustered initial distribution, of:

1. CPVF;
2. FLOOR;
3. VOR  (charged the minimum-cost explosion plus 10 VD rounds);
4. Minimax (likewise);
5. "OPT-Hungarian": the minimum total distance required to reach the OPT
   strip pattern, computed by the Hungarian algorithm;
6. "FLOOR-Hungarian": the minimum total distance required to reach FLOOR's
   own final layout — the lower bound FLOOR is measured against.

The qualitative claims being reproduced: FLOOR moves far less than VOR and
Minimax (whose explosion dominates); CPVF needs roughly twice FLOOR's
distance because of oscillation; and FLOOR sits a modest factor (the paper
reports 15.6-38 %) above the Hungarian bound for its own layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import List, Optional

from ..assignment import minimum_distance_matching
from ..baselines import MinimaxScheme, OptStripPattern, VorScheme, explode
from ..field import clustered_initial_positions, obstacle_free_field
from .common import ExperimentScale, FULL_SCALE, run_scheme

__all__ = ["Fig11Row", "run_fig11", "format_fig11"]


@dataclass(frozen=True)
class Fig11Row:
    """Average moving distance of one scheme."""

    scheme: str
    average_moving_distance: float
    coverage: Optional[float]


def run_fig11(
    scale: ExperimentScale = FULL_SCALE,
    communication_range: float = 60.0,
    sensing_range: float = 40.0,
    vd_rounds: int = 10,
    seed: int = 1,
) -> List[Fig11Row]:
    """Run the Figure 11 comparison."""
    field = obstacle_free_field(scale.field_size)
    rows: List[Fig11Row] = []

    rng = Random(seed)
    initial = clustered_initial_positions(
        scale.sensor_count, rng, cluster_size=scale.field_size / 2.0, field=field
    )
    initial_tuples = [p.as_tuple() for p in initial]

    # 1-2. CPVF and FLOOR (simulated).
    floor_layout = None
    for scheme_name in ("CPVF", "FLOOR"):
        result = run_scheme(
            scheme_name,
            scale,
            communication_range=communication_range,
            sensing_range=sensing_range,
            seed=seed,
            field=field,
        )
        rows.append(
            Fig11Row(
                scheme=scheme_name,
                average_moving_distance=result.average_moving_distance,
                coverage=result.final_coverage,
            )
        )
        if scheme_name == "FLOOR" and result.world is not None:
            floor_layout = result.world.positions()

    # 3-4. VOR and Minimax: minimum-cost explosion plus the VD rounds.
    exploded = explode(initial, field, Random(seed))
    for scheme_cls in (VorScheme, MinimaxScheme):
        scheme = scheme_cls(field, communication_range, sensing_range)
        vd_result = scheme.run(exploded.positions, rounds=vd_rounds)
        per_sensor = [
            explosion + rounds_distance
            for explosion, rounds_distance in zip(
                exploded.per_sensor_distance, vd_result.per_sensor_distance
            )
        ]
        rows.append(
            Fig11Row(
                scheme=scheme.name,
                average_moving_distance=sum(per_sensor) / len(per_sensor),
                coverage=scheme.coverage(
                    vd_result.final_positions, scale.coverage_resolution
                ),
            )
        )

    # 5. Hungarian lower bound to reach the OPT pattern.
    pattern = OptStripPattern(field, communication_range, sensing_range)
    opt_targets = pattern.positions_for_count(scale.sensor_count)
    _, opt_total = minimum_distance_matching(
        initial_tuples, [p.as_tuple() for p in opt_targets]
    )
    rows.append(
        Fig11Row(
            scheme="OPT-Hungarian",
            average_moving_distance=opt_total / scale.sensor_count,
            coverage=field.coverage_fraction(
                opt_targets, sensing_range, scale.coverage_resolution
            ),
        )
    )

    # 6. Hungarian lower bound to reach FLOOR's own final layout.
    if floor_layout is not None:
        _, floor_total = minimum_distance_matching(
            initial_tuples, [p.as_tuple() for p in floor_layout]
        )
        rows.append(
            Fig11Row(
                scheme="FLOOR-Hungarian",
                average_moving_distance=floor_total / scale.sensor_count,
                coverage=field.coverage_fraction(
                    floor_layout, sensing_range, scale.coverage_resolution
                ),
            )
        )
    return rows


def format_fig11(rows: List[Fig11Row]) -> str:
    """Render the comparison as an aligned text table."""
    lines = ["Figure 11 (average moving distance)", "-" * 36]
    lines.append(f"{'scheme':<16s} {'avg distance (m)':>17s} {'coverage':>10s}")
    for row in rows:
        coverage = f"{100 * row.coverage:.1f}%" if row.coverage is not None else "-"
        lines.append(
            f"{row.scheme:<16s} {row.average_moving_distance:>17.1f} {coverage:>10s}"
        )
    return "\n".join(lines)
