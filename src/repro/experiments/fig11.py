"""Figure 11: average moving distance of six schemes.

The paper compares the average per-sensor moving distance, starting from the
clustered initial distribution, of:

1. CPVF;
2. FLOOR;
3. VOR  (charged the minimum-cost explosion plus 10 VD rounds);
4. Minimax (likewise);
5. "OPT-Hungarian": the minimum total distance required to reach the OPT
   strip pattern, computed by the Hungarian algorithm;
6. "FLOOR-Hungarian": the minimum total distance required to reach FLOOR's
   own final layout — the lower bound FLOOR is measured against.

The qualitative claims being reproduced: FLOOR moves far less than VOR and
Minimax (whose explosion dominates); CPVF needs roughly twice FLOOR's
distance because of oscillation; and FLOOR sits a modest factor (the paper
reports 15.6-38 %) above the Hungarian bound for its own layout.

Five of the six schemes are one sweep (CPVF, FLOOR, VOR, Minimax and the
analytic OPT-Hungarian all run through the scheme registry); the
FLOOR-Hungarian bound is derived afterwards from the FLOOR record's final
positions (``keep_positions=True``) and the scenario's deterministic
initial placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..api import RunRecord, RunSpec, SweepRunner, SweepSpec
from ..api.schemes import hungarian_bound
from ..geometry import Vec2
from .common import ExperimentScale, FULL_SCALE, make_scenario

__all__ = ["Fig11Row", "sweep_fig11", "rows_fig11", "run_fig11", "format_fig11"]


@dataclass(frozen=True)
class Fig11Row:
    """Average moving distance of one scheme."""

    scheme: str
    average_moving_distance: float
    coverage: Optional[float]


def sweep_fig11(
    scale: ExperimentScale = FULL_SCALE,
    communication_range: float = 60.0,
    sensing_range: float = 40.0,
    vd_rounds: int = 10,
    seed: int = 1,
    trace_every: Optional[int] = None,
) -> SweepSpec:
    """The declarative Figure 11 sweep (five registered schemes)."""
    scenario = make_scenario(
        scale,
        communication_range=communication_range,
        sensing_range=sensing_range,
        seed=seed,
    )
    vd_params = {"rounds": vd_rounds}
    runs = (
        RunSpec(scenario=scenario, scheme="CPVF", trace_every=trace_every),
        # FLOOR keeps its final layout so the FLOOR-Hungarian lower bound
        # can be derived from the record afterwards.
        RunSpec(
            scenario=scenario,
            scheme="FLOOR",
            trace_every=trace_every,
            keep_positions=True,
        ),
        RunSpec(scenario=scenario, scheme="VOR", scheme_params=vd_params),
        RunSpec(scenario=scenario, scheme="Minimax", scheme_params=vd_params),
        RunSpec(scenario=scenario, scheme="OPT-Hungarian"),
    )
    return SweepSpec(name="fig11", runs=runs)


def rows_fig11(records: Sequence[RunRecord]) -> List[Fig11Row]:
    """Figure 11 rows, with the derived FLOOR-Hungarian bound appended."""
    rows = [
        Fig11Row(
            scheme=record.scheme,
            average_moving_distance=record.average_moving_distance,
            coverage=record.coverage,
        )
        for record in records
    ]
    floor_record = next(
        (r for r in records if r.scheme == "FLOOR" and r.final_positions), None
    )
    if floor_record is not None:
        scenario = floor_record.scenario
        layout = [Vec2(x, y) for x, y in floor_record.final_positions]
        average, coverage = hungarian_bound(scenario, layout)
        rows.append(
            Fig11Row(
                scheme="FLOOR-Hungarian",
                average_moving_distance=average,
                coverage=coverage,
            )
        )
    return rows


def run_fig11(
    scale: ExperimentScale = FULL_SCALE,
    communication_range: float = 60.0,
    sensing_range: float = 40.0,
    vd_rounds: int = 10,
    seed: int = 1,
    jobs: int = 1,
) -> List[Fig11Row]:
    """Run the Figure 11 comparison (optionally sharded over ``jobs``)."""
    records = SweepRunner(jobs=jobs).run(
        sweep_fig11(
            scale,
            communication_range=communication_range,
            sensing_range=sensing_range,
            vd_rounds=vd_rounds,
            seed=seed,
        )
    )
    return rows_fig11(records)


def format_fig11(rows: List[Fig11Row]) -> str:
    """Render the comparison as an aligned text table."""
    lines = ["Figure 11 (average moving distance)", "-" * 36]
    lines.append(f"{'scheme':<16s} {'avg distance (m)':>17s} {'coverage':>10s}")
    for row in rows:
        coverage = f"{100 * row.coverage:.1f}%" if row.coverage is not None else "-"
        lines.append(
            f"{row.scheme:<16s} {row.average_moving_distance:>17.1f} {coverage:>10s}"
        )
    return "\n".join(lines)
