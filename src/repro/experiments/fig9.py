"""Figure 9: coverage of CPVF, FLOOR and OPT versus the number of sensors.

The paper sweeps the sensor count (120 to 300) for several ``(rc, rs)``
combinations and shows that:

* FLOOR outperforms CPVF everywhere, most markedly when ``rc / rs`` is
  small (e.g. with ``rc = 20``, ``rs = 60`` CPVF reaches less than half of
  FLOOR's coverage);
* FLOOR approaches the centralised OPT pattern as ``rc`` and the sensor
  count grow (within a few percentage points for ``rc = rs = 60`` and more
  than 200 sensors);
* beyond roughly 300 sensors coverage saturates.

The sweep is declared by :func:`sweep_fig9` — one run per
``(rc, rs) x N x scheme`` point, with OPT riding along as a registered
analytic scheme — and executes through the process-sharded
:class:`~repro.api.sweep.SweepRunner`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..api import RunRecord, RunSpec, SweepRunner, SweepSpec
from .common import ExperimentScale, FULL_SCALE, make_scenario

__all__ = [
    "Fig9Row",
    "DEFAULT_RANGE_PAIRS",
    "DEFAULT_SENSOR_COUNTS",
    "sweep_fig9",
    "rows_fig9",
    "run_fig9",
    "format_fig9",
]

#: ``(rc, rs)`` pairs swept in the figure.
DEFAULT_RANGE_PAIRS: Tuple[Tuple[float, float], ...] = (
    (20.0, 60.0),
    (40.0, 60.0),
    (60.0, 60.0),
)

#: Sensor counts swept in the figure (paper scale).
DEFAULT_SENSOR_COUNTS: Tuple[int, ...] = (120, 160, 200, 240, 300)


@dataclass(frozen=True)
class Fig9Row:
    """Coverage of one scheme at one sweep point."""

    scheme: str
    sensor_count: int
    communication_range: float
    sensing_range: float
    coverage: float


def sweep_fig9(
    scale: ExperimentScale = FULL_SCALE,
    sensor_counts: Sequence[int] | None = None,
    range_pairs: Sequence[Tuple[float, float]] | None = None,
    schemes: Sequence[str] = ("CPVF", "FLOOR"),
    seed: int = 1,
    trace_every: Optional[int] = None,
) -> SweepSpec:
    """The declarative Figure 9 sweep.

    Sensor counts are interpreted at paper scale and shrunk proportionally
    for smaller :class:`ExperimentScale` settings, so the relative sweep
    shape is preserved.  The OPT pattern is appended at every sweep point
    as an analytic (no-simulation) scheme.
    """
    counts = list(sensor_counts or DEFAULT_SENSOR_COUNTS)
    pairs = list(range_pairs or DEFAULT_RANGE_PAIRS)
    runs = []
    for rc, rs in pairs:
        for paper_count in counts:
            scenario = make_scenario(
                scale,
                communication_range=rc,
                sensing_range=rs,
                sensor_count=scale.scaled_count(paper_count),
                seed=seed,
            )
            for scheme in (*schemes, "OPT"):
                runs.append(
                    RunSpec(
                        scenario=scenario,
                        scheme=scheme,
                        trace_every=trace_every if scheme != "OPT" else None,
                        tags={"paper_count": paper_count},
                    )
                )
    return SweepSpec(name="fig9", runs=tuple(runs))


def rows_fig9(records: Sequence[RunRecord]) -> List[Fig9Row]:
    """Figure 9 rows from executed sweep records."""
    return [
        Fig9Row(
            scheme=record.scheme,
            sensor_count=record.tag("paper_count"),
            communication_range=record.scenario.communication_range,
            sensing_range=record.scenario.sensing_range,
            coverage=record.coverage,
        )
        for record in records
    ]


def run_fig9(
    scale: ExperimentScale = FULL_SCALE,
    sensor_counts: Sequence[int] | None = None,
    range_pairs: Sequence[Tuple[float, float]] | None = None,
    schemes: Sequence[str] = ("CPVF", "FLOOR"),
    seed: int = 1,
    jobs: int = 1,
) -> List[Fig9Row]:
    """Run the Figure 9 sweep (optionally sharded over ``jobs`` processes)."""
    records = SweepRunner(jobs=jobs).run(
        sweep_fig9(
            scale,
            sensor_counts=sensor_counts,
            range_pairs=range_pairs,
            schemes=schemes,
            seed=seed,
        )
    )
    return rows_fig9(records)


def format_fig9(rows: List[Fig9Row]) -> str:
    """Render the sweep as an aligned text table grouped by range pair."""
    lines = ["Figure 9 (coverage vs. number of sensors)", "-" * 42]
    pairs = sorted({(r.communication_range, r.sensing_range) for r in rows})
    for rc, rs in pairs:
        lines.append(f"rc = {rc:.0f} m, rs = {rs:.0f} m")
        lines.append(f"  {'N':>5s} {'scheme':<8s} {'coverage':>9s}")
        subset = [
            r
            for r in rows
            if r.communication_range == rc and r.sensing_range == rs
        ]
        for row in sorted(subset, key=lambda r: (r.sensor_count, r.scheme)):
            lines.append(
                f"  {row.sensor_count:>5d} {row.scheme:<8s} {100 * row.coverage:>8.1f}%"
            )
    return "\n".join(lines)
