"""Gallery: CPVF vs FLOOR vs VOR across the curated scenario suite.

The paper's figures fix one or two fields; the gallery opens the workload
space by sweeping the schemes over every scenario in
:data:`repro.scenarios.DEFAULT_SUITE` — mazes, multi-room floorplans,
spiral corridors and random clutter under hotspot, perimeter, lattice and
multi-cluster starts.  One run per scenario x scheme, executed like every
other experiment through the process-sharded
:class:`~repro.api.sweep.SweepRunner`, so records are identical whether
the sweep runs serially or sharded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..api import RunRecord, RunSpec, SweepRunner, SweepSpec
from ..scenarios import DEFAULT_SUITE
from .common import ExperimentScale, FULL_SCALE

__all__ = [
    "GalleryRow",
    "DEFAULT_GALLERY_SCHEMES",
    "sweep_gallery",
    "rows_gallery",
    "run_gallery",
    "format_gallery",
]

#: Schemes compared across the suite (VOR is the connectivity-ignorant
#: baseline, as in Figs 10/11).
DEFAULT_GALLERY_SCHEMES = ("CPVF", "FLOOR", "VOR")


@dataclass(frozen=True)
class GalleryRow:
    """One scheme's outcome on one suite scenario."""

    scenario: str
    layout: str
    placement: str
    scheme: str
    coverage: float
    average_moving_distance: float
    total_messages: int
    connected: bool


def sweep_gallery(
    scale: ExperimentScale = FULL_SCALE,
    schemes: Sequence[str] = DEFAULT_GALLERY_SCHEMES,
    scenarios: Optional[Sequence[str]] = None,
    seed: int = 1,
    trace_every: Optional[int] = None,
) -> SweepSpec:
    """The declarative gallery sweep (optionally a named scenario subset).

    Suite entries pin their own scenario seeds so every gallery run draws
    the exact curated field/placement; ``seed`` shifts all of them
    together (``seed=1`` leaves the curated scenarios untouched).
    """
    runs: List[RunSpec] = []
    for entry, scenario in DEFAULT_SUITE.specs(scale, names=scenarios):
        if seed != 1:
            scenario = scenario.replace(seed=scenario.seed + seed - 1)
        for scheme in schemes:
            runs.append(
                RunSpec(
                    scenario=scenario,
                    scheme=scheme,
                    trace_every=trace_every if scheme != "VOR" else None,
                    tags={
                        "scenario": entry.name,
                        "layout": entry.layout,
                        "placement": entry.placement,
                    },
                )
            )
    return SweepSpec(name="gallery", runs=tuple(runs))


def rows_gallery(records: Sequence[RunRecord]) -> List[GalleryRow]:
    """Gallery rows from executed sweep records."""
    return [
        GalleryRow(
            scenario=record.tag("scenario"),
            layout=record.tag("layout"),
            placement=record.tag("placement"),
            scheme=record.scheme,
            coverage=record.coverage,
            average_moving_distance=record.average_moving_distance,
            total_messages=record.total_messages,
            connected=record.connected,
        )
        for record in records
    ]


def run_gallery(
    scale: ExperimentScale = FULL_SCALE,
    schemes: Sequence[str] = DEFAULT_GALLERY_SCHEMES,
    scenarios: Optional[Sequence[str]] = None,
    seed: int = 1,
    jobs: int = 1,
) -> List[GalleryRow]:
    """Run the gallery sweep (optionally sharded over ``jobs`` processes)."""
    records = SweepRunner(jobs=jobs).run(
        sweep_gallery(scale, schemes=schemes, scenarios=scenarios, seed=seed)
    )
    return rows_gallery(records)


def format_gallery(rows: List[GalleryRow]) -> str:
    """Render the gallery as a per-scenario comparison table."""
    lines = [
        "Gallery (schemes across the curated scenario suite)",
        "-" * 51,
    ]
    scenarios: List[str] = []
    for row in rows:
        if row.scenario not in scenarios:
            scenarios.append(row.scenario)
    for name in scenarios:
        subset = [r for r in rows if r.scenario == name]
        first = subset[0]
        lines.append(f"{name} ({first.layout} + {first.placement})")
        lines.append(
            f"  {'scheme':<8s} {'coverage':>9s} {'avg dist':>9s} "
            f"{'messages':>9s} {'connected':>9s}"
        )
        for row in subset:
            lines.append(
                f"  {row.scheme:<8s} {100 * row.coverage:>8.1f}% "
                f"{row.average_moving_distance:>8.1f}m "
                f"{row.total_messages:>9d} {'yes' if row.connected else 'no':>9s}"
            )
    return "\n".join(lines)
