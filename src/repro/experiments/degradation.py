"""Degradation: scheme robustness under packet loss and stale state.

The paper's evaluation assumes a perfect network; this experiment opens
the network-condition axis.  A grid of loss rates (0-20% per message)
crossed with neighbor-table staleness runs CPVF, FLOOR and the
degradation-oblivious VOR baseline on the same derived-seed scenarios,
and every degraded cell is reported relative to its own scheme's
perfect-network baseline: coverage ratio, message overhead (retransmitted
traffic) and convergence.  The perfect cell (loss 0, staleness 0) runs
with no :class:`~repro.network.NetworkSpec` at all, so its records are
byte-identical to the structural reproduction.

Loss/latency draws come from per-``(seed, period, message)`` derived
streams inside :class:`~repro.network.UnreliableNetwork`, never from the
world's RNG, so the sweep's records are identical whether it runs
serially or sharded over worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..api import RunRecord, RunSpec, SweepRunner, SweepSpec, derive_seed
from ..network import NetworkSpec
from .common import ExperimentScale, FULL_SCALE, make_scenario

__all__ = [
    "DegradationRow",
    "DEFAULT_DEGRADATION_SCHEMES",
    "DEGRADATION_LOSSES",
    "DEGRADATION_STALENESS",
    "sweep_degradation",
    "rows_degradation",
    "run_degradation",
    "format_degradation",
]

#: Schemes compared under degradation (VOR ignores the network model and
#: serves as the oblivious baseline).
DEFAULT_DEGRADATION_SCHEMES = ("CPVF", "FLOOR", "VOR")

#: Per-message loss probabilities swept (0 is the perfect baseline).
DEGRADATION_LOSSES = (0.0, 0.01, 0.05, 0.1, 0.2)

#: Neighbor-table refresh intervals in periods (0 = live reads).
DEGRADATION_STALENESS = (0, 5)

#: Repetition cap: a few derived seeds per cell, like the lifecycle sweep.
_MAX_REPETITIONS = 3


def _cell_network(loss: float, staleness: int) -> Optional[NetworkSpec]:
    """The network spec of one grid cell (``None`` for the perfect cell).

    The perfect cell deliberately carries no spec at all so its records
    (and run fingerprints) coincide with the structural reproduction's.
    """
    if loss == 0.0 and staleness == 0:
        return None
    return NetworkSpec(model="unreliable", loss=loss, staleness=staleness)


@dataclass(frozen=True)
class DegradationRow:
    """One scheme's seed-averaged outcome in one (loss, staleness) cell."""

    loss: float
    staleness: int
    scheme: str
    #: Mean final coverage across repetitions.
    coverage: float
    #: Coverage relative to the same scheme's perfect-network cell.
    coverage_ratio: float
    #: Mean transmissions per run.
    messages: float
    #: Message traffic relative to the perfect-network cell (>= 1 under
    #: loss: retransmissions and timed-out attempts are still charged).
    message_overhead: float
    #: Fraction of repetitions that converged before the horizon.
    converged_fraction: float
    #: Mean convergence period over the repetitions that converged.
    mean_converged_at: float


def sweep_degradation(
    scale: ExperimentScale = FULL_SCALE,
    schemes: Sequence[str] = DEFAULT_DEGRADATION_SCHEMES,
    losses: Sequence[float] = DEGRADATION_LOSSES,
    staleness_levels: Sequence[int] = DEGRADATION_STALENESS,
    seed: int = 1,
    trace_every: Optional[int] = None,
) -> SweepSpec:
    """The declarative loss x staleness degradation grid.

    Every cell of the grid reuses the same derived-seed scenarios, so the
    per-cell ratios in :func:`rows_degradation` compare paired runs.
    """
    repetitions = max(1, min(scale.repetitions, _MAX_REPETITIONS))
    scenarios = [
        make_scenario(scale, seed=derive_seed(seed, "degradation", rep))
        for rep in range(repetitions)
    ]
    runs: List[RunSpec] = []
    for staleness in staleness_levels:
        for loss in losses:
            network = _cell_network(loss, staleness)
            for rep, scenario in enumerate(scenarios):
                for scheme in schemes:
                    runs.append(
                        RunSpec(
                            scenario=scenario,
                            scheme=scheme,
                            trace_every=trace_every if scheme != "VOR" else None,
                            network=network,
                            tags={
                                "loss": loss,
                                "staleness": staleness,
                                "rep": rep,
                            },
                        )
                    )
    return SweepSpec(name="degradation", runs=tuple(runs))


def rows_degradation(records: Sequence[RunRecord]) -> List[DegradationRow]:
    """Seed-averaged degradation rows from executed sweep records."""
    order: List[Tuple[float, int, str]] = []
    groups: Dict[Tuple[float, int, str], List[RunRecord]] = {}
    for record in records:
        key = (record.tag("loss"), record.tag("staleness"), record.scheme)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(record)

    def _mean_coverage(key: Tuple[float, int, str]) -> float:
        group = groups[key]
        return sum(r.coverage for r in group) / len(group)

    def _mean_messages(key: Tuple[float, int, str]) -> float:
        group = groups[key]
        return sum(r.total_messages for r in group) / len(group)

    rows: List[DegradationRow] = []
    for loss, staleness, scheme in order:
        group = groups[(loss, staleness, scheme)]
        baseline_key = (0.0, 0, scheme)
        base_coverage = (
            _mean_coverage(baseline_key) if baseline_key in groups else 0.0
        )
        base_messages = (
            _mean_messages(baseline_key) if baseline_key in groups else 0.0
        )
        coverage = _mean_coverage((loss, staleness, scheme))
        messages = _mean_messages((loss, staleness, scheme))
        converged = [
            r.converged_at for r in group if r.converged_at is not None
        ]
        rows.append(
            DegradationRow(
                loss=loss,
                staleness=staleness,
                scheme=scheme,
                coverage=coverage,
                coverage_ratio=(
                    coverage / base_coverage if base_coverage > 0 else 0.0
                ),
                messages=messages,
                message_overhead=(
                    messages / base_messages if base_messages > 0 else 0.0
                ),
                converged_fraction=len(converged) / len(group),
                mean_converged_at=(
                    sum(converged) / len(converged)
                    if converged
                    else float("nan")
                ),
            )
        )
    return rows


def run_degradation(
    scale: ExperimentScale = FULL_SCALE,
    schemes: Sequence[str] = DEFAULT_DEGRADATION_SCHEMES,
    losses: Sequence[float] = DEGRADATION_LOSSES,
    staleness_levels: Sequence[int] = DEGRADATION_STALENESS,
    seed: int = 1,
    jobs: int = 1,
) -> List[DegradationRow]:
    """Run the degradation grid (optionally sharded over ``jobs``)."""
    records = SweepRunner(jobs=jobs).run(
        sweep_degradation(
            scale,
            schemes=schemes,
            losses=losses,
            staleness_levels=staleness_levels,
            seed=seed,
        )
    )
    return rows_degradation(records)


def format_degradation(rows: List[DegradationRow]) -> str:
    """Render the degradation grid as a per-staleness table."""
    lines = [
        "Degradation (coverage under packet loss and stale state)",
        "-" * 56,
    ]
    staleness_levels: List[int] = []
    for row in rows:
        if row.staleness not in staleness_levels:
            staleness_levels.append(row.staleness)
    for staleness in staleness_levels:
        subset = [r for r in rows if r.staleness == staleness]
        label = (
            "live neighbor tables"
            if staleness <= 1
            else f"neighbor tables refreshed every {staleness} periods"
        )
        lines.append(f"staleness {staleness} ({label})")
        lines.append(
            f"  {'loss':>5s} {'scheme':<8s} {'coverage':>9s} "
            f"{'vs perfect':>10s} {'messages':>9s} {'overhead':>9s} "
            f"{'converged':>9s}"
        )
        for row in subset:
            conv = (
                f"{row.mean_converged_at:>7.0f}p"
                if row.mean_converged_at == row.mean_converged_at
                else f"{'-':>8s}"
            )
            lines.append(
                f"  {100 * row.loss:>4.0f}% {row.scheme:<8s} "
                f"{100 * row.coverage:>8.1f}% {100 * row.coverage_ratio:>9.1f}% "
                f"{row.messages:>9.0f} {row.message_overhead:>8.2f}x {conv}"
            )
    return "\n".join(lines)
