"""Table 1: FLOOR's protocol message overhead.

The paper counts the protocol messages FLOOR transmits during a 750-second
deployment for network sizes ``N`` of 120, 160, 200 and 240, with the
invitation random-walk TTL set to 0.1, 0.2, 0.3 and 0.4 times ``N``, in the
obstacle-free and two-obstacle environments.  The reported quantities are
the total number of transmissions (in thousands) and the per-node average;
overhead grows roughly linearly with the TTL and mildly with ``N``, and the
per-node load stays within a few messages per second.

The sweep is the full ``environment x N x TTL`` grid of FLOOR runs; the
TTL is part of each scenario spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..api import RunRecord, RunSpec, SweepRunner, SweepSpec
from .common import ExperimentScale, FULL_SCALE, make_scenario

__all__ = [
    "Table1Row",
    "DEFAULT_TTL_FRACTIONS",
    "DEFAULT_SENSOR_COUNTS",
    "sweep_table1",
    "rows_table1",
    "run_table1",
    "format_table1",
]

#: TTL values as fractions of the network size, as in the paper.
DEFAULT_TTL_FRACTIONS = (0.1, 0.2, 0.3, 0.4)

#: Network sizes swept by the table (paper scale).
DEFAULT_SENSOR_COUNTS = (120, 160, 200, 240)


@dataclass(frozen=True)
class Table1Row:
    """Message overhead of one (environment, N, TTL) cell of the table."""

    environment: str
    sensor_count: int
    ttl_fraction: float
    ttl: int
    total_messages: int
    messages_per_node: float


def sweep_table1(
    scale: ExperimentScale = FULL_SCALE,
    sensor_counts: Sequence[int] | None = None,
    ttl_fractions: Sequence[float] | None = None,
    environments: Sequence[str] = ("non-obstacle", "two-obstacle"),
    communication_range: float = 60.0,
    sensing_range: float = 40.0,
    seed: int = 1,
    trace_every: Optional[int] = None,
) -> SweepSpec:
    """The declarative message-overhead sweep."""
    counts = list(sensor_counts or DEFAULT_SENSOR_COUNTS)
    fractions = list(ttl_fractions or DEFAULT_TTL_FRACTIONS)
    runs = []
    for environment in environments:
        layout = (
            "two-obstacle" if environment == "two-obstacle" else "obstacle-free"
        )
        for paper_count in counts:
            count = scale.scaled_count(paper_count)
            for fraction in fractions:
                ttl = max(1, int(round(fraction * count)))
                runs.append(
                    RunSpec(
                        scenario=make_scenario(
                            scale,
                            communication_range=communication_range,
                            sensing_range=sensing_range,
                            sensor_count=count,
                            seed=seed,
                            layout=layout,
                            invitation_ttl=ttl,
                        ),
                        scheme="FLOOR",
                        trace_every=trace_every,
                        tags={
                            "environment": environment,
                            "paper_count": paper_count,
                            "ttl_fraction": fraction,
                        },
                    )
                )
    return SweepSpec(name="table1", runs=tuple(runs))


def rows_table1(records: Sequence[RunRecord]) -> List[Table1Row]:
    """Table 1 rows from executed sweep records."""
    return [
        Table1Row(
            environment=record.tag("environment"),
            sensor_count=record.tag("paper_count"),
            ttl_fraction=record.tag("ttl_fraction"),
            ttl=record.scenario.invitation_ttl,
            total_messages=record.total_messages,
            messages_per_node=record.messages_per_node(),
        )
        for record in records
    ]


def run_table1(
    scale: ExperimentScale = FULL_SCALE,
    sensor_counts: Sequence[int] | None = None,
    ttl_fractions: Sequence[float] | None = None,
    environments: Sequence[str] = ("non-obstacle", "two-obstacle"),
    communication_range: float = 60.0,
    sensing_range: float = 40.0,
    seed: int = 1,
    jobs: int = 1,
) -> List[Table1Row]:
    """Run the message-overhead sweep (optionally sharded)."""
    records = SweepRunner(jobs=jobs).run(
        sweep_table1(
            scale,
            sensor_counts=sensor_counts,
            ttl_fractions=ttl_fractions,
            environments=environments,
            communication_range=communication_range,
            sensing_range=sensing_range,
            seed=seed,
        )
    )
    return rows_table1(records)


def format_table1(rows: List[Table1Row]) -> str:
    """Render the table in the paper's layout (totals in thousands)."""
    lines = ["Table 1 (FLOOR protocol messages, totals x1000 / per node x1000)", "-" * 64]
    environments = sorted({r.environment for r in rows})
    fractions = sorted({r.ttl_fraction for r in rows})
    header = f"{'':>8s}" + "".join(f"{f'TTL={f:.1f}N':>18s}" for f in fractions)
    for environment in environments:
        lines.append(f"{environment} environment")
        lines.append(header)
        counts = sorted({r.sensor_count for r in rows if r.environment == environment})
        for count in counts:
            cells = []
            for fraction in fractions:
                match = [
                    r
                    for r in rows
                    if r.environment == environment
                    and r.sensor_count == count
                    and r.ttl_fraction == fraction
                ]
                if match:
                    row = match[0]
                    cells.append(
                        f"{row.total_messages / 1000:>10.0f} ({row.messages_per_node / 1000:.1f})"
                    )
                else:
                    cells.append(f"{'-':>18s}")
            lines.append(f"N={count:<6d}" + "".join(f"{c:>18s}" for c in cells))
    return "\n".join(lines)
