"""Figure 12: effect of oscillation avoidance on CPVF.

The paper sweeps the oscillation-avoidance factor ``delta`` for the
one-step and two-step avoidance rules and shows the trade-off: smaller
``delta`` (a larger cancellation threshold ``V*T / delta``) reduces the
moving distance but also the coverage, because some of the cancelled steps
would actually have pushed the coverage frontier forward.

The avoidance configuration lives on the scenario
(:attr:`~repro.api.scenario.ScenarioSpec.oscillation_delta` /
``oscillation_mode``), so the sweep is a plain grid of CPVF runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..api import RunRecord, RunSpec, SweepRunner, SweepSpec
from .common import ExperimentScale, FULL_SCALE, make_scenario

__all__ = [
    "Fig12Row",
    "DEFAULT_DELTAS",
    "sweep_fig12",
    "rows_fig12",
    "run_fig12",
    "format_fig12",
]

#: Oscillation-avoidance factors swept by the figure (None = no avoidance).
DEFAULT_DELTAS: Sequence[Optional[float]] = (None, 2.0, 4.0, 8.0, 16.0)


@dataclass(frozen=True)
class Fig12Row:
    """CPVF with one avoidance configuration."""

    mode: str
    delta: Optional[float]
    average_moving_distance: float
    coverage: float


def sweep_fig12(
    scale: ExperimentScale = FULL_SCALE,
    deltas: Sequence[Optional[float]] | None = None,
    modes: Sequence[str] = ("one-step", "two-step"),
    communication_range: float = 60.0,
    sensing_range: float = 40.0,
    seed: int = 1,
    trace_every: Optional[int] = None,
) -> SweepSpec:
    """The declarative oscillation-avoidance sweep."""
    deltas = list(DEFAULT_DELTAS if deltas is None else deltas)
    runs = []
    for mode in modes:
        for delta in deltas:
            runs.append(
                RunSpec(
                    scenario=make_scenario(
                        scale,
                        communication_range=communication_range,
                        sensing_range=sensing_range,
                        seed=seed,
                        oscillation_delta=delta,
                        oscillation_mode=mode,
                    ),
                    scheme="CPVF",
                    trace_every=trace_every,
                    tags={"mode": mode if delta is not None else "none"},
                )
            )
        # The "no avoidance" row is identical for both modes; only keep one.
        if None in deltas:
            deltas = [d for d in deltas if d is not None]
    return SweepSpec(name="fig12", runs=tuple(runs))


def rows_fig12(records: Sequence[RunRecord]) -> List[Fig12Row]:
    """Figure 12 rows from executed sweep records."""
    return [
        Fig12Row(
            mode=record.tag("mode"),
            delta=record.scenario.oscillation_delta,
            average_moving_distance=record.average_moving_distance,
            coverage=record.coverage,
        )
        for record in records
    ]


def run_fig12(
    scale: ExperimentScale = FULL_SCALE,
    deltas: Sequence[Optional[float]] | None = None,
    modes: Sequence[str] = ("one-step", "two-step"),
    communication_range: float = 60.0,
    sensing_range: float = 40.0,
    seed: int = 1,
    jobs: int = 1,
) -> List[Fig12Row]:
    """Run the oscillation-avoidance sweep (optionally sharded)."""
    records = SweepRunner(jobs=jobs).run(
        sweep_fig12(
            scale,
            deltas=deltas,
            modes=modes,
            communication_range=communication_range,
            sensing_range=sensing_range,
            seed=seed,
        )
    )
    return rows_fig12(records)


def format_fig12(rows: List[Fig12Row]) -> str:
    """Render the sweep as an aligned text table."""
    lines = ["Figure 12 (oscillation avoidance for CPVF)", "-" * 43]
    lines.append(
        f"{'mode':<10s} {'delta':>7s} {'avg distance (m)':>17s} {'coverage':>10s}"
    )
    for row in rows:
        delta = f"{row.delta:.1f}" if row.delta is not None else "off"
        lines.append(
            f"{row.mode:<10s} {delta:>7s} {row.average_moving_distance:>17.1f}"
            f" {100 * row.coverage:>9.1f}%"
        )
    return "\n".join(lines)
