"""Figure 13: CPVF versus FLOOR under random rectangular obstacles.

The paper runs 300 random-obstacle deployments (1 to 4 rectangular
obstacles of random size that never partition the field) and reports the
cumulative distribution functions of coverage and average moving distance
for both schemes.  The headline findings: FLOOR's mean coverage is more
than 20 percentage points higher than CPVF's, and its mean moving distance
is less than half of CPVF's.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Dict, List

from ..field import RandomObstacleConfig, generate_random_obstacle_field
from ..metrics import EmpiricalCDF
from .common import ExperimentScale, FULL_SCALE, run_scheme

__all__ = ["Fig13Run", "Fig13Summary", "run_fig13", "format_fig13"]


@dataclass(frozen=True)
class Fig13Run:
    """One random-obstacle deployment of one scheme."""

    run_index: int
    scheme: str
    obstacle_count: int
    coverage: float
    average_moving_distance: float


@dataclass
class Fig13Summary:
    """Aggregate of all random-obstacle runs."""

    runs: List[Fig13Run]

    def _values(self, scheme: str, attribute: str) -> List[float]:
        return [getattr(r, attribute) for r in self.runs if r.scheme == scheme]

    def coverage_cdf(self, scheme: str) -> EmpiricalCDF:
        """Empirical CDF of coverage for one scheme."""
        return EmpiricalCDF(self._values(scheme, "coverage"))

    def distance_cdf(self, scheme: str) -> EmpiricalCDF:
        """Empirical CDF of average moving distance for one scheme."""
        return EmpiricalCDF(self._values(scheme, "average_moving_distance"))

    def mean_coverage(self, scheme: str) -> float:
        """Mean coverage of one scheme over all runs."""
        values = self._values(scheme, "coverage")
        return sum(values) / len(values) if values else 0.0

    def mean_distance(self, scheme: str) -> float:
        """Mean moving distance of one scheme over all runs."""
        values = self._values(scheme, "average_moving_distance")
        return sum(values) / len(values) if values else 0.0


def run_fig13(
    scale: ExperimentScale = FULL_SCALE,
    repetitions: int | None = None,
    communication_range: float = 60.0,
    sensing_range: float = 40.0,
    seed: int = 1,
) -> Fig13Summary:
    """Run the random-obstacle comparison.

    ``repetitions`` defaults to the scale's value (300 at full scale).
    """
    reps = repetitions if repetitions is not None else scale.repetitions
    runs: List[Fig13Run] = []
    obstacle_rng = Random(seed)
    config = RandomObstacleConfig(
        field_size=scale.field_size,
        min_side=0.08 * scale.field_size,
        max_side=0.4 * scale.field_size,
        keep_clear_radius=max(communication_range, 0.06 * scale.field_size),
    )
    for run_index in range(reps):
        field = generate_random_obstacle_field(obstacle_rng, config)
        for scheme_name in ("CPVF", "FLOOR"):
            result = run_scheme(
                scheme_name,
                scale,
                communication_range=communication_range,
                sensing_range=sensing_range,
                seed=seed + run_index,
                field=field,
            )
            runs.append(
                Fig13Run(
                    run_index=run_index,
                    scheme=scheme_name,
                    obstacle_count=len(field.obstacles),
                    coverage=result.final_coverage,
                    average_moving_distance=result.average_moving_distance,
                )
            )
    return Fig13Summary(runs=runs)


def format_fig13(summary: Fig13Summary, cdf_points: int = 6) -> str:
    """Render the comparison, including sampled CDFs, as text."""
    lines = ["Figure 13 (random obstacles: CPVF vs FLOOR)", "-" * 44]
    for scheme in ("CPVF", "FLOOR"):
        lines.append(
            f"{scheme}: mean coverage = {100 * summary.mean_coverage(scheme):.1f}%, "
            f"mean avg distance = {summary.mean_distance(scheme):.1f} m"
        )
    for label, cdf_getter in (
        ("coverage CDF", Fig13Summary.coverage_cdf),
        ("distance CDF", Fig13Summary.distance_cdf),
    ):
        lines.append(label)
        for scheme in ("CPVF", "FLOOR"):
            cdf = cdf_getter(summary, scheme)
            points = ", ".join(
                f"{value:.2f}:{prob:.2f}" for value, prob in cdf.series(cdf_points)
            )
            lines.append(f"  {scheme:<6s} {points}")
    return "\n".join(lines)
