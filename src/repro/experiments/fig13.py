"""Figure 13: CPVF versus FLOOR under random rectangular obstacles.

The paper runs 300 random-obstacle deployments (1 to 4 rectangular
obstacles of random size that never partition the field) and reports the
cumulative distribution functions of coverage and average moving distance
for both schemes.  The headline findings: FLOOR's mean coverage is more
than 20 percentage points higher than CPVF's, and its mean moving distance
is less than half of CPVF's.

Each repetition is one scenario: the random obstacle layout is part of the
scenario spec (the ``random-obstacles`` registered layout, seeded by a
deterministic per-repetition spawn of the base seed), so repetitions are
fully independent and the sweep shards across processes with records
identical to the serial run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..api import RunRecord, RunSpec, SweepRunner, SweepSpec, derive_seed
from ..metrics import EmpiricalCDF
from .common import ExperimentScale, FULL_SCALE, make_scenario

__all__ = [
    "Fig13Run",
    "Fig13Summary",
    "sweep_fig13",
    "summary_fig13",
    "run_fig13",
    "format_fig13",
]


@dataclass(frozen=True)
class Fig13Run:
    """One random-obstacle deployment of one scheme."""

    run_index: int
    scheme: str
    obstacle_count: int
    coverage: float
    average_moving_distance: float


@dataclass
class Fig13Summary:
    """Aggregate of all random-obstacle runs."""

    runs: List[Fig13Run]

    def _values(self, scheme: str, attribute: str) -> List[float]:
        return [getattr(r, attribute) for r in self.runs if r.scheme == scheme]

    def coverage_cdf(self, scheme: str) -> EmpiricalCDF:
        """Empirical CDF of coverage for one scheme."""
        return EmpiricalCDF(self._values(scheme, "coverage"))

    def distance_cdf(self, scheme: str) -> EmpiricalCDF:
        """Empirical CDF of average moving distance for one scheme."""
        return EmpiricalCDF(self._values(scheme, "average_moving_distance"))

    def mean_coverage(self, scheme: str) -> float:
        """Mean coverage of one scheme over all runs."""
        values = self._values(scheme, "coverage")
        return sum(values) / len(values) if values else 0.0

    def mean_distance(self, scheme: str) -> float:
        """Mean moving distance of one scheme over all runs."""
        values = self._values(scheme, "average_moving_distance")
        return sum(values) / len(values) if values else 0.0


def sweep_fig13(
    scale: ExperimentScale = FULL_SCALE,
    repetitions: int | None = None,
    communication_range: float = 60.0,
    sensing_range: float = 40.0,
    seed: int = 1,
    trace_every: Optional[int] = None,
) -> SweepSpec:
    """The declarative random-obstacle sweep.

    ``repetitions`` defaults to the scale's value (300 at full scale).
    Every repetition gets an independent run seed and obstacle-layout seed
    spawned deterministically from ``seed``.
    """
    reps = repetitions if repetitions is not None else scale.repetitions
    runs = []
    for rep in range(reps):
        scenario = make_scenario(
            scale,
            communication_range=communication_range,
            sensing_range=sensing_range,
            seed=derive_seed(seed, rep),
            layout="random-obstacles",
            layout_params={
                "seed": derive_seed(seed, rep, "obstacles"),
                "min_side": 0.08 * scale.field_size,
                "max_side": 0.4 * scale.field_size,
                "keep_clear_radius": max(
                    communication_range, 0.06 * scale.field_size
                ),
            },
        )
        for scheme in ("CPVF", "FLOOR"):
            runs.append(
                RunSpec(
                    scenario=scenario,
                    scheme=scheme,
                    trace_every=trace_every,
                    tags={"rep": rep},
                )
            )
    return SweepSpec(name="fig13", runs=tuple(runs))


def summary_fig13(records: Sequence[RunRecord]) -> Fig13Summary:
    """The Figure 13 aggregate from executed sweep records."""
    return Fig13Summary(
        runs=[
            Fig13Run(
                run_index=record.tag("rep"),
                scheme=record.scheme,
                obstacle_count=record.extra("obstacle_count", 0),
                coverage=record.coverage,
                average_moving_distance=record.average_moving_distance,
            )
            for record in records
        ]
    )


def run_fig13(
    scale: ExperimentScale = FULL_SCALE,
    repetitions: int | None = None,
    communication_range: float = 60.0,
    sensing_range: float = 40.0,
    seed: int = 1,
    jobs: int = 1,
) -> Fig13Summary:
    """Run the random-obstacle comparison (optionally sharded)."""
    records = SweepRunner(jobs=jobs).run(
        sweep_fig13(
            scale,
            repetitions=repetitions,
            communication_range=communication_range,
            sensing_range=sensing_range,
            seed=seed,
        )
    )
    return summary_fig13(records)


def format_fig13(summary: Fig13Summary, cdf_points: int = 6) -> str:
    """Render the comparison, including sampled CDFs, as text."""
    lines = ["Figure 13 (random obstacles: CPVF vs FLOOR)", "-" * 44]
    for scheme in ("CPVF", "FLOOR"):
        lines.append(
            f"{scheme}: mean coverage = {100 * summary.mean_coverage(scheme):.1f}%, "
            f"mean avg distance = {summary.mean_distance(scheme):.1f} m"
        )
    for label, cdf_getter in (
        ("coverage CDF", Fig13Summary.coverage_cdf),
        ("distance CDF", Fig13Summary.distance_cdf),
    ):
        lines.append(label)
        for scheme in ("CPVF", "FLOOR"):
            cdf = cdf_getter(summary, scheme)
            points = ", ".join(
                f"{value:.2f}:{prob:.2f}" for value, prob in cdf.series(cdf_points)
            )
            lines.append(f"  {scheme:<6s} {points}")
    return "\n".join(lines)
