"""The telemetry front end: span timers, counters, gauges, period events.

Instrumented code holds one :class:`Telemetry` and calls::

    with tel.span("cpvf.forces"):
        ...                       # timed phase
    tel.count("cpvf.candidate_pairs", rows.size)
    tel.gauge("floor.relocations_in_flight", len(active))
    tel.record_period(PeriodTrace(...))

The overhead contract: the default is :data:`NULL_TELEMETRY`, whose
``span`` returns a shared no-op context manager and whose ``count`` /
``gauge`` / ``record_period`` are empty methods — uninstrumented-speed
minus one attribute lookup and a call.  Hot loops that would pay even
that (e.g. per-pair work) guard with ``if tel.enabled:``.  The
``telemetry_overhead`` entry in ``BENCH_perf.json`` pins the measured
cost on the batched CPVF kernel at <= a few percent.

Counters must be *deterministic* quantities (sizes, attempt counts,
messages) so that a sweep's counter totals are identical however it was
sharded; wall-clock only ever enters through span times, which live in
the :class:`~repro.obs.summary.TelemetrySummary` ``phases`` side.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from .sinks import NullSink, TelemetrySink
from .summary import PhaseStat, TelemetrySummary

__all__ = ["PeriodTrace", "Telemetry", "NullTelemetry", "NULL_TELEMETRY"]


@dataclass(frozen=True)
class PeriodTrace:
    """Structured per-period event: the metrics snapshot of one period.

    This is the telemetry-side twin of the engine's ``TraceRecord``; the
    engine builds one object per traced period and feeds it to both the
    result trace and the telemetry sink, so ``trace_every`` and telemetry
    are a single mechanism.
    """

    period: int
    time: float
    coverage: float
    average_moving_distance: float
    total_messages: int
    connected_sensors: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "period": self.period,
            "time": self.time,
            "coverage": self.coverage,
            "average_moving_distance": self.average_moving_distance,
            "total_messages": self.total_messages,
            "connected_sensors": self.connected_sensors,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PeriodTrace":
        return cls(
            period=int(data["period"]),
            time=float(data["time"]),
            coverage=float(data["coverage"]),
            average_moving_distance=float(data["average_moving_distance"]),
            total_messages=int(data["total_messages"]),
            connected_sensors=int(data["connected_sensors"]),
        )


class _Span:
    """Context manager that times one phase entry with perf_counter."""

    __slots__ = ("_telemetry", "_name", "_start")

    def __init__(self, telemetry: "Telemetry", name: str):
        self._telemetry = telemetry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._telemetry._record_span(
            self._name, time.perf_counter() - self._start
        )
        return False


class _NullSpan:
    """Shared do-nothing context manager handed out by NullTelemetry."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Telemetry:
    """Aggregating telemetry collector with a pluggable sink."""

    #: Hot-loop guard: ``if tel.enabled:`` skips per-item accounting work.
    enabled: bool = True

    def __init__(self, sink: Optional[TelemetrySink] = None):
        self.sink: TelemetrySink = sink if sink is not None else NullSink()
        # name -> [total_seconds, calls]; a mutable cell keeps the hot
        # span-close path to one dict lookup + two in-place adds.
        self._spans: Dict[str, List[float]] = {}
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}

    def span(self, name: str) -> Any:
        """A context manager timing one entry of phase ``name``."""
        return _Span(self, name)

    def _record_span(self, name: str, seconds: float) -> None:
        cell = self._spans.get(name)
        if cell is None:
            self._spans[name] = [seconds, 1]
        else:
            cell[0] += seconds
            cell[1] += 1
        self.sink.on_span(name, seconds)

    def count(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the named monotone counter."""
        self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge to its latest observed value."""
        self._gauges[name] = float(value)

    def merge_counters(self, counters: Mapping[str, int]) -> None:
        """Fold an external counter mapping (e.g. message stats) in."""
        for name, value in counters.items():
            self._counters[name] = self._counters.get(name, 0) + value

    def record_period(self, trace: PeriodTrace) -> None:
        """Forward one per-period structured event to the sink."""
        self.sink.on_period(trace)

    def phase_seconds(self, name: str) -> float:
        """Total time spent in the named phase so far."""
        cell = self._spans.get(name)
        return cell[0] if cell is not None else 0.0

    def counter(self, name: str) -> int:
        """Current value of the named counter (0 when never counted)."""
        return self._counters.get(name, 0)

    def summary(self) -> TelemetrySummary:
        """Snapshot the aggregates as an immutable summary."""
        return TelemetrySummary(
            phases={
                name: PhaseStat(seconds=cell[0], calls=int(cell[1]))
                for name, cell in self._spans.items()
            },
            counters=dict(self._counters),
            gauges=dict(self._gauges),
        )

    def close(self) -> TelemetrySummary:
        """Emit the final summary to the sink and release it."""
        summary = self.summary()
        self.sink.on_summary(summary)
        self.sink.close()
        return summary


class NullTelemetry(Telemetry):
    """Disabled telemetry: every operation is a no-op.

    A single module-level instance (:data:`NULL_TELEMETRY`) is shared by
    every un-instrumented world/engine, so "telemetry off" allocates
    nothing per run and adds one attribute read per instrumentation
    point.
    """

    enabled = False

    def __init__(self):
        super().__init__(NullSink())

    def span(self, name: str) -> Any:
        return _NULL_SPAN

    def count(self, name: str, value: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def merge_counters(self, counters: Mapping[str, int]) -> None:
        pass

    def record_period(self, trace: PeriodTrace) -> None:
        pass

    def summary(self) -> TelemetrySummary:
        return TelemetrySummary()

    def close(self) -> TelemetrySummary:
        return TelemetrySummary()


NULL_TELEMETRY = NullTelemetry()
