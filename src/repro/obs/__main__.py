"""Telemetry CLI: ``python -m repro.obs report trace.jsonl``.

Renders the phase-time table and message-burst timeline for a JSONL
trace produced by :class:`~repro.obs.sinks.JsonlSink` or exported from
stored records by ``repro.experiments.runner --profile --out DIR``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .report import load_trace, render_report
from .summary import TelemetrySummary


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Telemetry trace tooling",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="render a phase-time table + message timeline"
    )
    report.add_argument("trace", help="JSONL trace file (use '-' for stdin)")
    report.add_argument(
        "--width", type=int, default=50, help="timeline bar width (default 50)"
    )
    report.add_argument(
        "--json",
        action="store_true",
        help="emit the merged TelemetrySummary as JSON instead of tables",
    )

    args = parser.parse_args(argv)
    if args.command == "report":
        if args.trace == "-":
            lines = sys.stdin.read().splitlines()
        else:
            with open(args.trace, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        if args.json:
            summaries, _ = load_trace(lines)
            merged = TelemetrySummary()
            for summary in summaries:
                merged = merged.merge(summary)
            print(json.dumps(merged.to_dict(), indent=2))
        else:
            print(render_report(lines, width=args.width))
        return 0
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
