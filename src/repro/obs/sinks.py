"""Telemetry sinks: where span/period/summary events go.

The sink decides what live telemetry costs.  :class:`NullSink` (the
default) drops everything, so instrumented code pays only the aggregate
bookkeeping in :class:`~repro.obs.telemetry.Telemetry`;
:class:`MemorySink` keeps the last N events in a ring buffer for tests
and interactive inspection; :class:`JsonlSink` streams events to a file
for ``python -m repro.obs report``, with ``sample_every`` to keep long
runs' traces small.
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, TYPE_CHECKING, Any, Deque, Dict, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .summary import TelemetrySummary
    from .telemetry import PeriodTrace

__all__ = ["TelemetrySink", "NullSink", "MemorySink", "JsonlSink"]


class TelemetrySink:
    """Event receiver interface; the base class ignores everything."""

    def on_span(self, name: str, seconds: float) -> None:
        """One span closed, having taken ``seconds``."""

    def on_period(self, trace: "PeriodTrace") -> None:
        """One per-period structured trace event was recorded."""

    def on_summary(self, summary: "TelemetrySummary") -> None:
        """The owning Telemetry is closing; final aggregates attached."""

    def close(self) -> None:
        """Release any resources (files); further events are undefined."""


class NullSink(TelemetrySink):
    """Drops every event — the always-on default."""


class MemorySink(TelemetrySink):
    """Ring buffer of the most recent events, as plain dicts.

    Events are shaped exactly like :class:`JsonlSink` lines (``type`` key
    of ``span`` / ``period`` / ``summary``), so a test can assert against
    memory what production would read back from a trace file.
    """

    def __init__(self, capacity: int = 1024):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.events: Deque[Dict[str, Any]] = deque(maxlen=capacity)

    def on_span(self, name: str, seconds: float) -> None:
        self.events.append({"type": "span", "name": name, "seconds": seconds})

    def on_period(self, trace: "PeriodTrace") -> None:
        self.events.append({"type": "period", **trace.to_dict()})

    def on_summary(self, summary: "TelemetrySummary") -> None:
        self.events.append({"type": "summary", **summary.to_dict()})

    def of_type(self, event_type: str) -> list:
        """The buffered events of one type, oldest first."""
        return [event for event in self.events if event["type"] == event_type]


class JsonlSink(TelemetrySink):
    """Streams events as JSON lines to a file.

    ``sample_every`` thins *period* events (every Nth is written, always
    including the first); spans are high-frequency and off by default —
    the closing summary carries their aggregate either way.  ``label``
    stamps every line with a run identifier so several runs can share one
    trace file and still be told apart by the report tool.
    """

    def __init__(
        self,
        path_or_file: Union[str, "IO[str]"],
        sample_every: int = 1,
        write_spans: bool = False,
        label: Optional[str] = None,
    ):
        if sample_every <= 0:
            raise ValueError("sample_every must be positive")
        if hasattr(path_or_file, "write"):
            self._file: IO[str] = path_or_file  # type: ignore[assignment]
            self._owns_file = False
        else:
            self._file = open(path_or_file, "a", encoding="utf-8")
            self._owns_file = True
        self._sample_every = sample_every
        self._write_spans = write_spans
        self._label = label
        self._periods_seen = 0

    def _write(self, payload: Dict[str, Any]) -> None:
        if self._label is not None:
            payload["run"] = self._label
        self._file.write(json.dumps(payload, separators=(",", ":")) + "\n")

    def on_span(self, name: str, seconds: float) -> None:
        if self._write_spans:
            self._write({"type": "span", "name": name, "seconds": seconds})

    def on_period(self, trace: "PeriodTrace") -> None:
        if self._periods_seen % self._sample_every == 0:
            self._write({"type": "period", **trace.to_dict()})
        self._periods_seen += 1

    def on_summary(self, summary: "TelemetrySummary") -> None:
        self._write({"type": "summary", **summary.to_dict()})

    def close(self) -> None:
        self._file.flush()
        if self._owns_file:
            self._file.close()
