"""Render telemetry traces and summaries for humans.

``python -m repro.obs report trace.jsonl`` reads a JSONL trace (written
by :class:`~repro.obs.sinks.JsonlSink` or exported from stored records
via :func:`write_record_trace`) and prints a phase-time table plus a
message-burst timeline built from consecutive period events' message
deltas.  :func:`format_summary` is the same table for an in-memory
:class:`~repro.obs.summary.TelemetrySummary` — ``runner --profile``
uses it directly.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, TextIO, Tuple

from .summary import TelemetrySummary
from .telemetry import PeriodTrace

__all__ = [
    "format_summary",
    "format_timeline",
    "load_trace",
    "render_report",
    "write_record_trace",
]


def format_summary(summary: TelemetrySummary, title: Optional[str] = None) -> str:
    """Phase-time table + counter/gauge listing, widest phases first."""
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    total = summary.total_seconds()
    if summary.phases:
        lines.append(f"{'phase':<28} {'total':>10} {'calls':>8} {'per call':>10} {'share':>7}")
        for name in sorted(
            summary.phases, key=lambda n: summary.phases[n].seconds, reverse=True
        ):
            stat = summary.phases[name]
            per_call = stat.seconds / stat.calls if stat.calls else 0.0
            share = stat.seconds / total if total > 0 else 0.0
            lines.append(
                f"{name:<28} {stat.seconds * 1e3:>8.2f}ms {stat.calls:>8d} "
                f"{per_call * 1e3:>8.3f}ms {share:>6.1%}"
            )
    else:
        lines.append("(no phases recorded)")
    if summary.counters:
        lines.append("")
        lines.append("counters:")
        for name in sorted(summary.counters):
            lines.append(f"  {name:<40} {summary.counters[name]:>12d}")
    if summary.gauges:
        lines.append("")
        lines.append("gauges:")
        for name in sorted(summary.gauges):
            lines.append(f"  {name:<40} {summary.gauges[name]:>12.3f}")
    return "\n".join(lines)


def format_timeline(periods: Sequence[PeriodTrace], width: int = 50) -> str:
    """ASCII message-burst timeline from consecutive period events.

    Each row is one traced period; the bar length is the number of
    messages sent since the previous traced period, normalised to the
    busiest interval, so protocol bursts (e.g. post-failure repair
    floods) stand out against steady-state chatter.
    """
    if not periods:
        return "(no period events)"
    ordered = sorted(periods, key=lambda p: p.period)
    deltas: List[Tuple[PeriodTrace, int]] = []
    previous_total = 0
    for trace in ordered:
        deltas.append((trace, max(0, trace.total_messages - previous_total)))
        previous_total = trace.total_messages
    peak = max(delta for _, delta in deltas) or 1
    lines = [
        f"{'period':>7} {'time':>8} {'coverage':>9} {'msgs+':>8}  burst",
    ]
    for trace, delta in deltas:
        bar = "#" * max(1 if delta else 0, round(delta / peak * width))
        lines.append(
            f"{trace.period:>7d} {trace.time:>8.1f} {trace.coverage:>9.4f} "
            f"{delta:>8d}  {bar}"
        )
    return "\n".join(lines)


def load_trace(
    lines: Iterable[str],
) -> Tuple[List[TelemetrySummary], List[PeriodTrace]]:
    """Parse JSONL trace lines into (summaries, period events).

    Unknown event types are skipped, so traces written by newer code
    still load; malformed lines raise, because a truncated trace should
    be noticed, not silently half-read.
    """
    summaries: List[TelemetrySummary] = []
    periods: List[PeriodTrace] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        payload = json.loads(line)
        kind = payload.get("type")
        if kind == "summary":
            summaries.append(TelemetrySummary.from_dict(payload))
        elif kind == "period":
            periods.append(PeriodTrace.from_dict(payload))
    return summaries, periods


def render_report(lines: Iterable[str], width: int = 50) -> str:
    """Full text report (phase table + timeline) for a JSONL trace."""
    summaries, periods = load_trace(lines)
    merged = TelemetrySummary()
    for summary in summaries:
        merged = merged.merge(summary)
    sections = [format_summary(merged, title="phase breakdown")]
    sections.append("")
    sections.append("message-burst timeline")
    sections.append("----------------------")
    sections.append(format_timeline(periods, width=width))
    return "\n".join(sections)


def write_record_trace(out: TextIO, records: Iterable[Any]) -> int:
    """Export stored run records' telemetry as JSONL trace lines.

    Sweeps execute in worker processes where live sinks cannot stream
    back, so profiled sweeps carry telemetry *on the records* and this
    function rebuilds the JSONL trace after the fact: one ``period`` line
    per stored trace point and one ``summary`` line per record carrying a
    :class:`TelemetrySummary`.  Returns the number of lines written.
    """
    written = 0
    for record in records:
        spec = getattr(record, "spec", None)
        label = spec.fingerprint() if spec is not None else None
        for index, point in enumerate(getattr(record, "trace", ()) or ()):
            payload: Dict[str, Any] = {
                "type": "period",
                "period": index,
                "time": point.time,
                "coverage": point.coverage,
                "average_moving_distance": point.average_moving_distance,
                "total_messages": point.total_messages,
                "connected_sensors": point.connected_sensors,
            }
            if label:
                payload["run"] = label
            out.write(json.dumps(payload, separators=(",", ":")) + "\n")
            written += 1
        summary = getattr(record, "telemetry", None)
        if summary is not None:
            payload = {"type": "summary", **summary.to_dict()}
            if label:
                payload["run"] = label
            out.write(json.dumps(payload, separators=(",", ":")) + "\n")
            written += 1
    return written
