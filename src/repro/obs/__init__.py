"""Low-overhead telemetry: spans, counters, period traces, sinks.

See ``docs/observability.md`` for the API and the overhead contract.
"""

from .sinks import JsonlSink, MemorySink, NullSink, TelemetrySink
from .summary import PhaseStat, TelemetrySummary
from .telemetry import NULL_TELEMETRY, NullTelemetry, PeriodTrace, Telemetry

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "PeriodTrace",
    "PhaseStat",
    "TelemetrySummary",
    "TelemetrySink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
]
