"""Compact, JSON-round-trippable telemetry summaries.

A :class:`TelemetrySummary` is the run-attached form of telemetry: the
phase-time breakdown (total seconds + call count per span name) and the
final counter/gauge values.  It travels on
:class:`~repro.sim.engine.SimulationResult` and
:class:`~repro.api.specs.RunRecord`, so a stored run explains where its
time went without re-running anything.

Counters are deterministic quantities (candidate pairs, repair attempts,
messages by type) and are identical no matter how a sweep was sharded;
phase seconds are wall-clock and vary run to run.  Tooling that asserts
reproducibility therefore compares :attr:`TelemetrySummary.counters` and
ignores :attr:`TelemetrySummary.phases`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

__all__ = ["PhaseStat", "TelemetrySummary"]


@dataclass(frozen=True)
class PhaseStat:
    """Aggregate of one named span: total time and number of entries."""

    seconds: float
    calls: int

    def to_dict(self) -> Dict[str, Any]:
        return {"seconds": self.seconds, "calls": self.calls}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PhaseStat":
        return cls(seconds=float(data["seconds"]), calls=int(data["calls"]))


@dataclass(frozen=True)
class TelemetrySummary:
    """Phase-time breakdown plus final counter/gauge values for one run."""

    phases: Dict[str, PhaseStat] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)

    def total_seconds(self) -> float:
        """Sum of all phase times (phases may nest, so this can overcount)."""
        return sum(stat.seconds for stat in self.phases.values())

    def merge(self, other: "TelemetrySummary") -> "TelemetrySummary":
        """Combine two summaries: phases and counters add, gauges last-win."""
        phases = dict(self.phases)
        for name, stat in other.phases.items():
            mine = phases.get(name)
            if mine is None:
                phases[name] = stat
            else:
                phases[name] = PhaseStat(
                    seconds=mine.seconds + stat.seconds,
                    calls=mine.calls + stat.calls,
                )
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = dict(self.gauges)
        gauges.update(other.gauges)
        return TelemetrySummary(phases=phases, counters=counters, gauges=gauges)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready payload with deterministic key order."""
        return {
            "phases": {
                name: self.phases[name].to_dict() for name in sorted(self.phases)
            },
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
            "gauges": {name: self.gauges[name] for name in sorted(self.gauges)},
        }

    @classmethod
    def from_dict(cls, data: Optional[Mapping[str, Any]]) -> "TelemetrySummary":
        if data is None:
            return cls()
        return cls(
            phases={
                name: PhaseStat.from_dict(stat)
                for name, stat in data.get("phases", {}).items()
            },
            counters={
                name: int(value) for name, value in data.get("counters", {}).items()
            },
            gauges={
                name: float(value) for name, value in data.get("gauges", {}).items()
            },
        )
