"""Virtual-force computation.

The virtual-force (VF) method imitates electro-magnetic repulsion: sensors
that are too close push each other apart, and obstacles and the field
boundary push sensors away.  In CPVF the force vector is used *only to pick
the direction* of the next step; the step size is chosen separately under
the connectivity-preserving conditions (Section 4.2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from ..field import Field
from ..geometry import Vec2

__all__ = ["VirtualForceModel"]


@dataclass
class VirtualForceModel:
    """Computes the resultant virtual force on a sensor.

    Parameters
    ----------
    repulsion_distance:
        Pairwise distance below which two sensors repel each other.  The
        natural choice for coverage maximisation is ``2 * rs`` (sensing
        disks stop overlapping beyond it), which is the library default set
        by the CPVF scheme.
    obstacle_distance:
        Distance below which obstacles and the field boundary repel a
        sensor; defaults to the sensing range so a sensor reacts only to
        obstacles it can actually perceive (Section 3.1).
    sensor_gain / obstacle_gain:
        Relative strengths of the two force families.  Only the direction of
        the resultant matters to CPVF, but the gains control how strongly
        obstacle avoidance competes with dispersion.
    """

    repulsion_distance: float
    obstacle_distance: float
    sensor_gain: float = 1.0
    obstacle_gain: float = 1.0

    # ------------------------------------------------------------------
    # Individual force terms
    # ------------------------------------------------------------------
    def force_from_sensor(self, position: Vec2, other: Vec2) -> Vec2:
        """Repulsive force exerted on ``position`` by a neighbour at ``other``.

        Magnitude decreases linearly from ``sensor_gain`` at distance zero to
        zero at ``repulsion_distance``; zero beyond it.
        """
        delta = position - other
        dist = delta.norm()
        if dist >= self.repulsion_distance:
            return Vec2.zero()
        if dist <= 1e-9:
            # Coincident sensors: push in an arbitrary fixed direction; the
            # caller adds jitter when needed.
            return Vec2(self.sensor_gain, 0.0)
        magnitude = self.sensor_gain * (self.repulsion_distance - dist) / self.repulsion_distance
        return delta.normalized() * magnitude

    def force_from_obstacles(self, position: Vec2, field: Field) -> Vec2:
        """Repulsive force from obstacles and the field boundary."""
        total = self.obstacle_only_force(position, field)
        # Field boundary repulsion: keep sensors inside the rectangle.
        return total + self._boundary_force(position, field)

    def obstacle_only_force(self, position: Vec2, field: Field) -> Vec2:
        """The obstacle terms of :meth:`force_from_obstacles`, walls excluded.

        The batched CPVF path evaluates the (cheap, everywhere-active) wall
        terms as arrays and only visits this scalar per-obstacle loop for
        sensors inside an obstacle's perception box.
        """
        total = Vec2.zero()
        # Obstacle repulsion: away from the nearest boundary point of each
        # obstacle that is within perception range.
        for obstacle in field.obstacles:
            dist = obstacle.boundary_distance_to(position)
            if obstacle.contains(position):
                # Inside an obstacle (should not normally happen): push hard
                # toward the nearest boundary point to escape.
                escape = obstacle.closest_boundary_point(position)
                total = total + position.towards(escape) * (-self.obstacle_gain)
                continue
            if dist >= self.obstacle_distance or dist <= 1e-9:
                continue
            closest = obstacle.closest_boundary_point(position)
            direction = (position - closest).normalized()
            magnitude = self.obstacle_gain * (self.obstacle_distance - dist) / self.obstacle_distance
            total = total + direction * magnitude
        return total

    def boundary_force_xy(
        self, px: float, py: float, width: float, height: float
    ) -> Tuple[float, float]:
        """Wall-repulsion components in plain floats.

        The single implementation of the four wall terms, shared by the
        scalar path below and the batched CPVF path (which accumulates
        floats directly); keeping one copy guarantees the two force
        evaluations agree at the field boundary.
        """
        force_x = 0.0
        force_y = 0.0
        d = self.obstacle_distance
        if d <= 0:
            return force_x, force_y
        if px < d:
            force_x += self.obstacle_gain * (d - px) / d
        if width - px < d:
            force_x += -self.obstacle_gain * (d - (width - px)) / d
        if py < d:
            force_y += self.obstacle_gain * (d - py) / d
        if height - py < d:
            force_y += -self.obstacle_gain * (d - (height - py)) / d
        return force_x, force_y

    def boundary_force_arrays(self, px, py, width: float, height: float):
        """Wall-repulsion components for a whole batch of positions.

        The array form of :meth:`boundary_force_xy` — identical per-term
        arithmetic, evaluated with numpy so the batched CPVF path gets the
        wall terms of every sensor in four vectorised comparisons.
        """
        d = self.obstacle_distance
        fx = np.zeros(px.shape, dtype=float)
        fy = np.zeros(py.shape, dtype=float)
        if d <= 0:
            return fx, fy
        gain = self.obstacle_gain
        fx += np.where(px < d, gain * (d - px) / d, 0.0)
        wx = width - px
        fx += np.where(wx < d, -gain * (d - wx) / d, 0.0)
        fy += np.where(py < d, gain * (d - py) / d, 0.0)
        wy = height - py
        fy += np.where(wy < d, -gain * (d - wy) / d, 0.0)
        return fx, fy

    def _boundary_force(self, position: Vec2, field: Field) -> Vec2:
        """Force pushing the sensor away from the field's outer walls."""
        return Vec2(
            *self.boundary_force_xy(position.x, position.y, field.width, field.height)
        )

    # ------------------------------------------------------------------
    # Resultant
    # ------------------------------------------------------------------
    def resultant(
        self,
        position: Vec2,
        neighbor_positions: Iterable[Vec2],
        field: Optional[Field] = None,
    ) -> Vec2:
        """Sum of all repulsive forces acting on a sensor at ``position``."""
        total = Vec2.zero()
        for other in neighbor_positions:
            total = total + self.force_from_sensor(position, other)
        if field is not None:
            total = total + self.force_from_obstacles(position, field)
        return total

    def direction(
        self,
        position: Vec2,
        neighbor_positions: Sequence[Vec2],
        field: Optional[Field] = None,
    ) -> Vec2:
        """Unit direction of the resultant force (zero vector at equilibrium)."""
        return self.resultant(position, neighbor_positions, field).normalized()

    # ------------------------------------------------------------------
    # Batch evaluation (CPVF hot path)
    # ------------------------------------------------------------------
    def sensor_force_sums(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Summed pairwise sensor forces for many sensors at once.

        ``rows[k]`` feels the repulsion of ``cols[k]``; the returned arrays
        hold, per sensor index, the x and y components of the summed
        neighbour forces (the sensor term of :meth:`resultant`).  The maths
        mirrors :meth:`force_from_sensor` — linear falloff, fixed push for
        coincident pairs — evaluated with numpy over the packed pair list,
        and contributions accumulate in ``rows``-major order like the
        scalar loop (``np.bincount`` adds sequentially).
        """
        n = len(xs)
        if rows.size == 0:
            zero = np.zeros(n)
            return zero, zero.copy()
        dx = xs[rows] - xs[cols]
        dy = ys[rows] - ys[cols]
        dist = np.hypot(dx, dy)
        near = dist < self.repulsion_distance
        rows_n, dx_n, dy_n, dist_n = rows[near], dx[near], dy[near], dist[near]
        coincident = dist_n <= 1e-9
        safe = np.where(coincident, 1.0, dist_n)
        magnitude = (
            self.sensor_gain * (self.repulsion_distance - dist_n)
            / self.repulsion_distance
        )
        fx = np.where(coincident, self.sensor_gain, (dx_n / safe) * magnitude)
        fy = np.where(coincident, 0.0, (dy_n / safe) * magnitude)
        return (
            np.bincount(rows_n, weights=fx, minlength=n),
            np.bincount(rows_n, weights=fy, minlength=n),
        )

    def sensor_force_sums_symmetric(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        i_idx: np.ndarray,
        j_idx: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """:meth:`sensor_force_sums` over *unique* pairs ``(i, j)``.

        The pairwise term is exactly antisymmetric (same magnitude, the
        direction flips with the sign of ``p_i - p_j``), so each pair is
        evaluated once and scattered to both endpoints — the batched CPVF
        path halves its pair arithmetic this way.  Coincident pairs are
        the one exception: both sensors receive the fixed ``+x`` push, as
        in :meth:`force_from_sensor`.
        """
        n = len(xs)
        if i_idx.size == 0:
            zero = np.zeros(n)
            return zero, zero.copy()
        dx = xs[i_idx] - xs[j_idx]
        dy = ys[i_idx] - ys[j_idx]
        dist = np.hypot(dx, dy)
        near = dist < self.repulsion_distance
        i_n, j_n = i_idx[near], j_idx[near]
        dx_n, dy_n, dist_n = dx[near], dy[near], dist[near]
        coincident = dist_n <= 1e-9
        safe = np.where(coincident, 1.0, dist_n)
        magnitude = (
            self.sensor_gain * (self.repulsion_distance - dist_n)
            / self.repulsion_distance
        )
        fx = np.where(coincident, self.sensor_gain, (dx_n / safe) * magnitude)
        fy = np.where(coincident, 0.0, (dy_n / safe) * magnitude)
        fx_back = np.where(coincident, self.sensor_gain, -fx)
        fy_back = np.where(coincident, 0.0, -fy)
        return (
            np.bincount(i_n, weights=fx, minlength=n)
            + np.bincount(j_n, weights=fx_back, minlength=n),
            np.bincount(i_n, weights=fy, minlength=n)
            + np.bincount(j_n, weights=fy_back, minlength=n),
        )
