"""The lazy-movement strategy (Section 3.3).

While establishing connectivity, not every disconnected sensor needs to walk
all the way to the base station: if a neighbour is already *ahead* (closer
to the destination), the sensor can adopt it as its *path parent* and pause,
hoping the path parent will become connected first and spare it the walk.

Two safeguards keep the strategy sound:

* a sensor may only adopt a neighbour as path parent if that neighbour is
  not simultaneously adopting *it* (no trivial mutual wait), and
* a sensor that has not moved for several periods sends a
  ``PathParentInquiry`` along the path-parent chain; if the message comes
  back to itself a wait-loop exists, the sensor resumes walking and never
  picks that path parent again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..geometry import Vec2
from ..network import MessageType, RoutingCostModel
from ..sensors import Sensor

__all__ = ["LazyMovementController"]

#: After this many consecutive idle periods a waiting sensor probes its
#: path-parent chain for a loop.
_LOOP_CHECK_IDLE_PERIODS = 3


@dataclass
class LazyMovementController:
    """Tracks path-parent relationships among disconnected sensors."""

    routing: RoutingCostModel

    def __post_init__(self) -> None:
        # Maps a waiting sensor id to its current path parent id.
        self._path_parent: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def path_parent_of(self, sensor_id: int) -> Optional[int]:
        """Current path parent of a sensor (``None`` when it is walking)."""
        return self._path_parent.get(sensor_id)

    def is_waiting(self, sensor_id: int) -> bool:
        """Whether the sensor is currently paused behind a path parent."""
        return sensor_id in self._path_parent

    # ------------------------------------------------------------------
    # Per-period decision
    # ------------------------------------------------------------------
    def choose_path_parent(
        self,
        sensor: Sensor,
        destination: Vec2,
        neighbors: Sequence[Sensor],
    ) -> Optional[int]:
        """Pick the nearest neighbour that is ahead of the sensor, if any.

        "Ahead" means strictly closer to the sensor's current destination.
        Neighbours previously rejected because of a wait loop, and
        neighbours that are themselves waiting on this sensor, are skipped.
        """
        my_distance = sensor.position.distance_to(destination)
        candidates: List[Sensor] = []
        for nb in neighbors:
            if nb.sensor_id in sensor.rejected_path_parents:
                continue
            if self._path_parent.get(nb.sensor_id) == sensor.sensor_id:
                continue
            if nb.position.distance_to(destination) < my_distance - 1e-9:
                candidates.append(nb)
        if not candidates:
            return None
        best = min(candidates, key=lambda nb: sensor.position.distance_to(nb.position))
        return best.sensor_id

    def start_waiting(self, sensor: Sensor, path_parent_id: int) -> None:
        """Record that ``sensor`` pauses behind ``path_parent_id``."""
        self._path_parent[sensor.sensor_id] = path_parent_id
        sensor.path_parent_id = path_parent_id

    def stop_waiting(self, sensor: Sensor) -> None:
        """The sensor resumes its own walk."""
        self._path_parent.pop(sensor.sensor_id, None)
        sensor.path_parent_id = None
        sensor.idle_periods = 0

    # ------------------------------------------------------------------
    # Loop detection
    # ------------------------------------------------------------------
    def check_for_loop(self, sensor: Sensor) -> bool:
        """Probe the path-parent chain for a wait loop.

        Emulates the ``PathParentInquiry`` message: it travels from the
        sensor along successive path parents; if it returns to the sensor a
        loop exists.  The message cost (one transmission per chain hop) is
        recorded against the routing model.  When a loop is found the sensor
        abandons (and black-lists) its current path parent and resumes
        walking.  Returns ``True`` when a loop was detected.
        """
        start_id = sensor.sensor_id
        current = self._path_parent.get(start_id)
        hops = 0
        visited = set()
        loop_found = False
        while current is not None and hops < len(self._path_parent) + 1:
            hops += 1
            if current == start_id:
                loop_found = True
                break
            if current in visited:
                # A loop exists further up the chain but does not include
                # this sensor; it keeps waiting (the looping sensors will
                # detect it themselves).
                break
            visited.add(current)
            current = self._path_parent.get(current)
        if hops:
            self.routing.record_one_hop(MessageType.PATH_PARENT_INQUIRY, hops)
        if loop_found:
            rejected = self._path_parent.get(start_id)
            if rejected is not None:
                sensor.rejected_path_parents.add(rejected)
            self.stop_waiting(sensor)
        return loop_found

    def should_check_for_loop(self, sensor: Sensor) -> bool:
        """Whether the sensor has been idle long enough to probe for loops."""
        return (
            self.is_waiting(sensor.sensor_id)
            and sensor.idle_periods >= _LOOP_CHECK_IDLE_PERIODS
        )

    # ------------------------------------------------------------------
    # Full per-period decision for a disconnected sensor
    # ------------------------------------------------------------------
    def advance_toward_connection(
        self,
        sensor: Sensor,
        destination: Vec2,
        neighbors: Sequence[Sensor],
        plan_path,
    ) -> None:
        """One period of a disconnected sensor's walk toward ``destination``.

        The lazy decision is re-evaluated every period: if some neighbour is
        currently ahead (and usable as a path parent) the sensor pauses for
        this period; otherwise it resumes its own walk.  A sensor that has
        been pausing for several consecutive periods probes its path-parent
        chain for a wait loop.  ``plan_path`` is a zero-argument callable
        returning a fresh :class:`~repro.mobility.Bug2Path` toward the
        destination, used when the sensor has no active path.
        """
        candidate = self.choose_path_parent(sensor, destination, neighbors)
        if candidate is not None:
            self.start_waiting(sensor, candidate)
            sensor.idle_periods += 1
            if self.should_check_for_loop(sensor):
                self.check_for_loop(sensor)
            return
        if self.is_waiting(sensor.sensor_id):
            self.stop_waiting(sensor)
        if not sensor.motion.has_path:
            sensor.motion.follow(plan_path())
        sensor.motion.advance_along_path()
        sensor.idle_periods = 0
