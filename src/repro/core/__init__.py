"""The paper's primary contribution: the CPVF and FLOOR deployment schemes."""

from .batch_ladder import TreeSchedule, batched_ladder_steps, tree_level_colors
from .connectivity import NeighborMotion, max_valid_step, step_is_valid, STEP_FRACTIONS
from .cpvf import CPVFScheme, CPVF_MODES
from .expansion import ExpansionKind, ExpansionPlanner, ExpansionPoint
from .floor_scheme import FloorScheme
from .floors import FloorGeometry
from .headers import FloorRecord, FloorRegistry
from .invitations import InvitationAssignment, InvitationProtocol
from .lazy import LazyMovementController
from .oscillation import OscillationAvoidance, OscillationMode
from .virtual_force import VirtualForceModel

__all__ = [
    "NeighborMotion",
    "max_valid_step",
    "step_is_valid",
    "STEP_FRACTIONS",
    "CPVFScheme",
    "CPVF_MODES",
    "TreeSchedule",
    "batched_ladder_steps",
    "tree_level_colors",
    "ExpansionKind",
    "ExpansionPlanner",
    "ExpansionPoint",
    "FloorScheme",
    "FloorGeometry",
    "FloorRecord",
    "FloorRegistry",
    "InvitationAssignment",
    "InvitationProtocol",
    "LazyMovementController",
    "OscillationAvoidance",
    "OscillationMode",
    "VirtualForceModel",
]
