"""The Connectivity-Preserved Virtual Force (CPVF) scheme (Section 4).

CPVF proceeds in two stages that in practice overlap in time:

1. **Achieving connectivity** — sensors in the immediate vicinity of the
   base station learn they are connected via a network flood; every other
   sensor walks toward the base station with BUG2 (right-hand rule) under
   the lazy-movement strategy, stopping as soon as it enters the
   communication range of a connected sensor, which becomes its tree parent.
2. **Maximising coverage** — connected sensors move under virtual forces.
   The force only chooses the *direction*; the step size is the largest
   candidate satisfying the connectivity-preserving conditions with respect
   to the sensor's tree parent and children.  A sensor that cannot move at
   all under its current parent may attempt to change parent, which requires
   locking its subtree (LockTree / UnLockTree) to avoid creating loops.

Optionally, the one-step or two-step oscillation-avoidance rule of
Section 6.3 suppresses unproductive movement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import chain
from typing import Dict, List, Optional

import numpy as np

from ..field import Field
from ..geometry import EPS
from ..geometry import Segment, Vec2
from ..mobility import Bug2Planner, Handedness
from ..network import BASE_STATION_ID, MessageType
from ..sensors import Sensor, SensorState
from ..sim import DeploymentScheme, World
from .batch_ladder import TreeSchedule, batched_ladder_steps
from .connectivity import (
    STEP_FRACTIONS,
    NeighborMotion,
    max_valid_step,
    max_valid_step_points,
)
from .lazy import LazyMovementController
from .oscillation import OscillationAvoidance, OscillationMode
from .virtual_force import VirtualForceModel

__all__ = ["CPVFScheme", "CPVF_MODES"]

#: Shared zero direction (Vec2 is immutable, so one instance is safe).
_ZERO_VEC = Vec2(0.0, 0.0)

#: The three execution strategies of the coverage stage (see ``mode``).
CPVF_MODES = ("sequential", "vectorized", "batched")


class CPVFScheme(DeploymentScheme):
    """Connectivity-Preserved Virtual Force deployment."""

    name = "CPVF"

    def __init__(
        self,
        allow_parent_change: bool = True,
        oscillation_delta: Optional[float] = None,
        oscillation_mode: str = "one-step",
        repulsion_distance: Optional[float] = None,
        vectorized: bool = True,
        mode: Optional[str] = None,
        repair_grouping: bool = True,
    ):
        """Create the scheme.

        Parameters
        ----------
        allow_parent_change:
            Whether a sensor blocked by its current parent may re-parent
            (the paper found this gives sensors more freedom to explore).
        oscillation_delta / oscillation_mode:
            Oscillation-avoidance factor and rule (Section 6.3); ``None``
            disables avoidance, which is the paper's default CPVF.
        repulsion_distance:
            Pairwise repulsion threshold for the virtual forces; defaults to
            ``2 * rs`` of the simulated sensors.
        vectorized:
            Back-compat switch: ``True`` selects ``mode="vectorized"``,
            ``False`` ``mode="sequential"``.  Ignored when ``mode`` is
            given explicitly.
        mode:
            Execution strategy of the coverage stage
            (see ``docs/performance.md``):

            ``"sequential"``
                The seed dynamics: sensors decide and move one after the
                other within a period, each seeing earlier movers' new
                positions.
            ``"vectorized"``
                Forces for all sensors evaluated in one numpy batch from
                start-of-period positions (the paper's simultaneous-
                decision semantics); the step ladder still runs per
                sensor against live link positions.  It can differ from
                sequential by one ulp in the force vector because
                ``np.hypot`` and ``math.hypot`` round independently.
            ``"batched"``
                Conflict-free batch execution: tree levels are colored by
                BFS-depth parity, and each color class evaluates ladder,
                obstacle clipping and oscillation test as arrays against
                frozen link positions, committing in one pass.  Same
                per-period message accounting; trajectories are
                equivalent in distribution to the other modes rather
                than numerically identical.
        repair_grouping:
            Batched mode only: execute the repair pass (blocked and
            stray sensors) in conflict-free *groups* — candidates whose
            required links share no endpoint are re-laddered and
            committed as one numpy pass per round — instead of one
            scalar walk per sensor.  The paper's LockTree/UnLockTree
            handshake only serializes within a lock subtree, which the
            grouping respects; message accounting stays structural
            (one NEIGHBOR_STATE per preserved link, LockTree /
            UnLockTree per parent-change attempt).  Without parent
            changes the grouped pass is bit-identical to the serialized
            one; with them, the group commit order can change which
            attempts a candidate makes — the same distributional
            relaxation ``mode="batched"`` itself makes (pinned by
            ``tests/core/test_repair_groups.py``).  ``False`` restores
            the fully serialized repair pass.
        """
        if mode is None:
            mode = "vectorized" if vectorized else "sequential"
        if mode not in CPVF_MODES:
            raise ValueError(
                f"unknown CPVF mode {mode!r}; choose from {list(CPVF_MODES)}"
            )
        self._allow_parent_change = allow_parent_change
        self._oscillation_delta = oscillation_delta
        self._oscillation_mode = OscillationMode.from_string(oscillation_mode)
        self._repulsion_distance = repulsion_distance
        self._mode = mode
        self._repair_grouping = repair_grouping
        self._vectorized = mode != "sequential"
        self._planner: Optional[Bug2Planner] = None
        self._forces: Optional[VirtualForceModel] = None
        self._lazy: Optional[LazyMovementController] = None
        self._avoidance: Optional[OscillationAvoidance] = None
        #: Link-id structures derived from the connectivity tree, rebuilt
        #: only when ``tree.version`` changes.
        self._link_ids_version: Optional[int] = None
        self._link_ids: Dict[int, tuple] = {}
        self._schedule: Optional[TreeSchedule] = None
        #: Lock requests in flight under network latency: sensor id ->
        #: period at which the (delayed) lock grant arrives.
        self._pending_locks: Dict[int, int] = {}

    @property
    def mode(self) -> str:
        """The configured execution mode of the coverage stage."""
        return self._mode

    # ------------------------------------------------------------------
    # Initialisation
    # ------------------------------------------------------------------
    def initialize(self, world: World) -> None:
        config = world.config
        self._planner = Bug2Planner(world.field, Handedness.RIGHT)
        repulsion = (
            self._repulsion_distance
            if self._repulsion_distance is not None
            else 2.0 * config.sensing_range
        )
        self._forces = VirtualForceModel(
            repulsion_distance=repulsion,
            obstacle_distance=config.sensing_range,
        )
        self._lazy = LazyMovementController(world.routing)
        self._avoidance = OscillationAvoidance(
            max_step=config.max_step,
            delta=self._oscillation_delta,
            mode=self._oscillation_mode,
        )
        # Drop tree-derived caches from any previous world: a fresh tree
        # restarts its version counter, so stale entries could otherwise
        # collide with the new world's version values.
        self._link_ids = {}
        self._link_ids_version = None
        self._schedule = None
        self._pending_locks = {}
        self._bootstrap_connectivity(world)
        for sensor in world.sensors:
            if sensor.state is SensorState.DISCONNECTED:
                sensor.state = SensorState.MOVING_TO_CONNECT
                path = self._planner.plan(sensor.position, world.base_station)
                sensor.motion.follow(path)

    def _bootstrap_connectivity(self, world: World) -> None:
        """Initial flood: the connected component of the base station joins
        the tree; everyone else learns it is disconnected."""
        # The component, table and base adjacency all come from the world's
        # neighbor cache, so the three queries share one spatial-index build.
        component = world.connected_component_of()
        # Build the tree breadth-first from the base station so that parents
        # are always closer (in hops) to the root.
        table = world.neighbor_table()
        near_base = set(world.sensors_near_base_station())
        frontier: List[int] = []
        for sid in sorted(near_base):
            world.attach_to_tree(sid, BASE_STATION_ID)
            frontier.append(sid)
        attached = set(near_base)
        net = world.network
        retransmissions = 0
        while frontier:
            current = frontier.pop(0)
            for nb in table.get(current, []):
                if nb in attached or nb not in component:
                    continue
                if net.lossy:
                    # Each flood edge retransmits with backoff up to the
                    # delivery budget; a node the flood never reaches stays
                    # disconnected and re-joins through the per-period
                    # connectivity stage instead.
                    delivered, attempts = net.exchange(
                        world, ("flood", current, nb), 1
                    )
                    retransmissions += attempts - 1
                    if not delivered:
                        continue
                world.attach_to_tree(nb, current)
                attached.add(nb)
                frontier.append(nb)
        world.routing.record_flood(len(attached) + retransmissions)

    # ------------------------------------------------------------------
    # Per-period execution
    # ------------------------------------------------------------------
    def step(self, world: World) -> None:
        assert self._planner is not None and self._forces is not None
        assert self._lazy is not None and self._avoidance is not None
        if self._mode == "batched":
            # The connectivity stage only needs neighbour rows for sensors
            # that are still walking toward the tree; the coverage stage
            # works on packed pair arrays.  Skipping the full per-sensor
            # table dict is a large part of the batched mode's win.
            disconnected = [
                s.sensor_id
                for s in world.sensors
                if s.is_alive() and not s.is_connected()
            ]
            if disconnected:
                table = world.protocol_neighbor_rows(disconnected)
                self._connect_reachable_sensors(world, table)
                self._advance_disconnected_sensors(world, table)
            self._apply_virtual_forces_batched(world)
            return
        # Protocol decisions read the table through the network model (a
        # live pass-through by default, aged under staleness); physics —
        # the batched pair arrays, coverage, connectivity — stays live.
        table = world.protocol_neighbor_table()
        self._connect_reachable_sensors(world, table)
        self._advance_disconnected_sensors(world, table)
        self._apply_virtual_forces(world, table)

    # -- Stage 1: establishing connectivity ----------------------------
    def _connect_reachable_sensors(
        self, world: World, table: Dict[int, List[int]]
    ) -> None:
        """Disconnected sensors adjacent to the tree join it and stop."""
        newly_connected = True
        while newly_connected:
            newly_connected = False
            for sensor in world.sensors:
                if sensor.is_connected() or not sensor.is_alive():
                    continue
                parent_id = self._closest_connected_neighbor(world, sensor, table)
                if parent_id is None:
                    continue
                sensor.motion.stop()
                assert self._lazy is not None
                self._lazy.stop_waiting(sensor)
                world.attach_to_tree(sensor.sensor_id, parent_id)
                sensor.state = SensorState.CONNECTED
                newly_connected = True

    def _closest_connected_neighbor(
        self, world: World, sensor: Sensor, table: Dict[int, List[int]]
    ) -> Optional[int]:
        """The nearest connected node (sensor or base station) in range."""
        best: Optional[int] = None
        best_dist = float("inf")
        base_dist = sensor.position.distance_to(world.base_station)
        if base_dist <= world.config.communication_range:
            best, best_dist = BASE_STATION_ID, base_dist
        rc_limit = sensor.communication_range + 1e-9
        for nb_id in table.get(sensor.sensor_id, []):
            nb = world.sensor(nb_id)
            if not nb.is_connected():
                continue
            dist = sensor.position.distance_to(nb.position)
            # Live-range revalidation: a stale table entry may have moved
            # out of range since the last refresh (no-op when the table is
            # live — its entries are in range by construction).
            if dist > rc_limit:
                continue
            if dist < best_dist:
                best, best_dist = nb_id, dist
        return best

    def _advance_disconnected_sensors(
        self, world: World, table: Dict[int, List[int]]
    ) -> None:
        """Disconnected sensors walk toward the base station (lazily)."""
        assert self._lazy is not None and self._planner is not None
        for sensor in world.sensors:
            if sensor.is_connected() or not sensor.is_alive():
                continue
            neighbors = [
                world.sensor(n)
                for n in table.get(sensor.sensor_id, [])
                if not world.sensor(n).is_connected()
            ]
            planner = self._planner
            self._lazy.advance_toward_connection(
                sensor,
                world.base_station,
                neighbors,
                lambda s=sensor: planner.plan(s.position, world.base_station),
            )

    # -- Stage 2: virtual-force coverage maximisation -------------------
    def _force_directions(
        self, world: World, connected: List[Sensor], table: Dict[int, List[int]]
    ) -> Dict[int, Vec2]:
        """Resultant force directions for all connected sensors at once.

        Pairwise sensor repulsion is evaluated in one numpy batch over the
        packed neighbour lists; the (cheap, per-sensor) obstacle and
        boundary terms are added scalar-wise, preserving the summation
        order of :meth:`VirtualForceModel.resultant`.
        """
        assert self._forces is not None
        sensors = world.sensors
        xs = np.fromiter((s.position.x for s in sensors), float, len(sensors))
        ys = np.fromiter((s.position.y for s in sensors), float, len(sensors))
        neighbor_lists = [table.get(s.sensor_id, []) for s in connected]
        lengths = np.fromiter(
            (len(lst) for lst in neighbor_lists), np.intp, len(connected)
        )
        rows = np.repeat(
            np.fromiter((s.sensor_id for s in connected), np.intp, len(connected)),
            lengths,
        )
        cols = np.fromiter(
            chain.from_iterable(neighbor_lists), np.intp, int(lengths.sum())
        )
        sum_x, sum_y = self._forces.sensor_force_sums(xs, ys, rows, cols)
        sum_x = sum_x.tolist()
        sum_y = sum_y.tolist()
        directions: Dict[int, Vec2] = {}
        field = world.field
        has_obstacles = bool(field.obstacles)
        width, height = field.width, field.height
        boundary_force_xy = self._forces.boundary_force_xy
        for sensor in connected:
            sid = sensor.sensor_id
            total_x, total_y = sum_x[sid], sum_y[sid]
            if has_obstacles:
                obstacle = self._forces.force_from_obstacles(sensor.position, field)
                total_x += obstacle.x
                total_y += obstacle.y
            else:
                # force_from_obstacles with no obstacles reduces to the
                # four wall terms.
                wall_x, wall_y = boundary_force_xy(
                    sensor.position.x, sensor.position.y, width, height
                )
                total_x += wall_x
                total_y += wall_y
            norm = math.hypot(total_x, total_y)
            if norm <= EPS:
                directions[sid] = _ZERO_VEC
            else:
                directions[sid] = Vec2(total_x / norm, total_y / norm)
        return directions

    def _apply_virtual_forces(
        self, world: World, table: Dict[int, List[int]]
    ) -> None:
        assert self._forces is not None and self._avoidance is not None
        config = world.config
        connected = [s for s in world.sensors if s.is_connected()]
        directions: Optional[Dict[int, Vec2]] = None
        if self._vectorized and connected:
            directions = self._force_directions(world, connected, table)
        for sensor in connected:
            if directions is not None:
                direction = directions[sensor.sensor_id]
            else:
                neighbor_ids = table.get(sensor.sensor_id, [])
                neighbor_positions = [
                    world.sensor(n).position for n in neighbor_ids
                ]
                direction = self._forces.direction(
                    sensor.position, neighbor_positions, world.field
                )
            if direction.x == 0.0 and direction.y == 0.0:
                sensor.previous_position = sensor.position
                continue

            if directions is not None:
                # Fused fast path: read the live parent/child positions as
                # plain floats and run the candidate ladder on them.
                links = self._tree_link_positions(world, sensor)
                # Each required link costs one state-exchange message
                # before the step-size decision (Section 4.2).
                if links:
                    world.routing.record_one_hop(
                        MessageType.NEIGHBOR_STATE, len(links)
                    )
                step = max_valid_step_points(
                    sensor.position.x,
                    sensor.position.y,
                    direction.x,
                    direction.y,
                    config.max_step,
                    links,
                    config.communication_range,
                )
            else:
                required = self._required_neighbors(world, sensor)
                if required:
                    world.routing.record_one_hop(
                        MessageType.NEIGHBOR_STATE, len(required)
                    )
                step = max_valid_step(
                    sensor.position,
                    direction,
                    config.max_step,
                    required,
                    config.communication_range,
                )

            if step <= 0.0 and self._allow_parent_change:
                step = self._try_parent_change(world, sensor, direction, table)

            if step <= 0.0:
                sensor.previous_position = sensor.position
                continue

            self._finish_move(world, sensor, direction, step)

    # -- Stage 2, batched: conflict-free color-class execution ----------
    def _get_schedule(self, world: World) -> TreeSchedule:
        """The coloring/link schedule for the current tree snapshot."""
        tree = world.tree
        n = len(world.sensors)
        schedule = self._schedule
        if (
            schedule is None
            or schedule.version != tree.version
            or len(schedule.colors) != n
        ):
            schedule = TreeSchedule.build(tree, n)
            self._schedule = schedule
        return schedule

    def _force_direction_arrays(
        self, world: World, xs, ys, connected, rows, cols, in_range,
        symmetric: bool,
    ):
        """Unit force directions for all sensors as arrays.

        The pairwise term comes from the packed neighbour pairs (already
        generated for the period; ``in_range`` masks the pairs within the
        exact communication range).  With a common communication range
        (``symmetric``) the pair relation is symmetric, so each unique
        pair is evaluated once and scattered to both endpoints;
        heterogeneous ranges keep the directed evaluation — a sensor only
        feels neighbours *it* can see.  The wall terms use the array form
        of ``boundary_force_xy``; only sensors inside an obstacle's
        perception box pay the scalar per-obstacle loop.  Returns
        ``(ux, uy, moving)`` where ``moving`` marks connected sensors
        with a non-zero resultant.
        """
        assert self._forces is not None
        if symmetric:
            if rows.size:
                keep = in_range & (rows < cols)
                rows, cols = rows[keep], cols[keep]
            fx, fy = self._forces.sensor_force_sums_symmetric(
                xs, ys, rows, cols
            )
        else:
            if rows.size:
                keep = in_range & connected[rows]
                rows, cols = rows[keep], cols[keep]
            fx, fy = self._forces.sensor_force_sums(xs, ys, rows, cols)
        field = world.field
        bx, by = self._forces.boundary_force_arrays(
            xs, ys, field.width, field.height
        )
        fx += bx
        fy += by
        if field.obstacles:
            d = self._forces.obstacle_distance
            near = np.zeros(len(xs), dtype=bool)
            for ob in field.obstacles:
                xmin, ymin, xmax, ymax = ob.bounding_box()
                near |= (
                    (xs >= xmin - d)
                    & (xs <= xmax + d)
                    & (ys >= ymin - d)
                    & (ys <= ymax + d)
                )
            for i in np.flatnonzero(near & connected):
                extra = self._forces.obstacle_only_force(
                    world.sensors[i].position, field
                )
                fx[i] += extra.x
                fy[i] += extra.y
        norm = np.hypot(fx, fy)
        moving = connected & (norm > EPS)
        safe = np.where(moving, norm, 1.0)
        ux = np.where(moving, fx / safe, 0.0)
        uy = np.where(moving, fy / safe, 0.0)
        return ux, uy, moving

    def _apply_virtual_forces_batched(self, world: World) -> None:
        """One coverage period, executed color class by color class.

        Both classes evaluate ladder, obstacle clipping and oscillation
        test as arrays against frozen link positions and commit in one
        pass; a sensor blocked at step zero (or outside the colored tree)
        is deferred to a sequential repair pass against the settled
        positions, mirroring the serialized lock-based parent-change
        handshake of the paper.  Message accounting is structural — one
        NEIGHBOR_STATE transmission per preserved link of every sensor
        with a non-zero force — and therefore identical to the scalar
        modes on the same tree.
        """
        assert self._forces is not None and self._avoidance is not None
        config = world.config
        field = world.field
        sensors = world.sensors
        n = len(sensors)
        if n == 0:
            return
        starts = [s.position for s in sensors]
        xs = np.fromiter((p.x for p in starts), float, n)
        ys = np.fromiter((p.y for p in starts), float, n)
        connected = np.fromiter((s.is_connected() for s in sensors), bool, n)
        if not connected.any():
            return
        # One inflated pair set serves both the force evaluation (masked
        # to the exact range) and the repair pass's candidate rows: a
        # sensor within range at any point of the period was within
        # rc + 2 * max_step at the period start.
        rc_list = [s.communication_range for s in sensors]
        rc_min, rc_max = min(rc_list), max(rc_list)
        pair_extra = 2.0 * config.max_step
        tel = world.telemetry
        # Incremental pair maintenance reports under its own span so the
        # bench breakdown separates "answered from the maintained store"
        # (cpvf.pairs_incremental) from a from-scratch pair generation
        # (cpvf.pairs); see docs/performance.md.
        span_name = "cpvf.pairs"
        if (
            tel.enabled
            and world.pairs_maintenance_hint(pair_extra) == "incremental"
        ):
            span_name = "cpvf.pairs_incremental"
        with tel.span(span_name):
            rows, cols, d2 = world.neighbor_pairs(pair_extra, with_d2=True)
        if tel.enabled:
            tel.count("cpvf.candidate_pairs", int(rows.size))
            evt = world.pairs_maintenance_last()
            if evt in ("memo", "derived", "serve", "repair"):
                tel.count("cpvf.pairs_repaired", 1)
            else:
                tel.count("cpvf.pairs_rebuilt", 1)
        with tel.span("cpvf.forces"):
            if rc_min == rc_max:
                limit = rc_min + 1e-9
                in_range = d2 <= limit * limit
            else:
                rcs = np.fromiter(rc_list, float, n) + 1e-9
                in_range = d2 <= rcs[rows] * rcs[rows]
            ux, uy, moving = self._force_direction_arrays(
                world, xs, ys, connected, rows, cols, in_range,
                symmetric=rc_min == rc_max,
            )
        schedule = self._get_schedule(world)
        colors = schedule.colors
        # Connected sensors outside the colored tree (detached subtrees)
        # fall back to the full scalar treatment in the repair pass.
        stray = moving & (colors < 0)
        repair: List[int] = np.flatnonzero(stray).tolist()
        max_step = config.max_step
        threshold = self._avoidance.threshold()
        prev_x = prev_y = None
        if (
            threshold > 0.0
            and self._avoidance.mode is OscillationMode.TWO_STEP
        ):
            # NaN marks "no history yet": every comparison against it is
            # False, exactly like the scalar None check.
            prev_x = np.fromiter(
                (
                    s.previous_position.x
                    if s.previous_position is not None
                    else math.nan
                    for s in sensors
                ),
                float,
                n,
            )
            prev_y = np.fromiter(
                (
                    s.previous_position.y
                    if s.previous_position is not None
                    else math.nan
                    for s in sensors
                ),
                float,
                n,
            )
        base = world.base_station
        batch_span = tel.span("cpvf.batch")
        batch_span.__enter__()
        for color in (0, 1):
            idx = np.flatnonzero(moving & (colors == color))
            if tel.enabled:
                tel.count(f"cpvf.color{color}_sensors", int(idx.size))
            if idx.size == 0:
                continue
            pair_owner, nodes = schedule.links_for(idx)
            if nodes.size:
                # Each preserved link costs one state-exchange message
                # before the step-size decision (Section 4.2).
                world.routing.record_one_hop(
                    MessageType.NEIGHBOR_STATE, int(nodes.size)
                )
            safe_nodes = np.maximum(nodes, 0)
            link_x = np.where(nodes == BASE_STATION_ID, base.x, xs[safe_nodes])
            link_y = np.where(nodes == BASE_STATION_ID, base.y, ys[safe_nodes])
            steps = batched_ladder_steps(
                xs[idx],
                ys[idx],
                ux[idx],
                uy[idx],
                max_step,
                config.communication_range,
                pair_owner,
                link_x,
                link_y,
            )
            blocked = steps <= 0.0
            repair.extend(idx[blocked].tolist())
            movers = np.flatnonzero(~blocked)
            if movers.size == 0:
                continue
            midx = idx[movers]
            mux, muy = ux[midx], uy[midx]
            clipped = field.max_free_travel_batch(
                xs[midx], ys[midx], mux, muy, steps[movers]
            )
            dir_norm = np.hypot(mux, muy)
            safe = np.where(dir_norm > EPS, dir_norm, 1.0)
            end_x = np.where(
                dir_norm > EPS, xs[midx] + (mux / safe) * clipped, xs[midx]
            )
            end_y = np.where(
                dir_norm > EPS, ys[midx] + (muy / safe) * clipped, ys[midx]
            )
            if threshold > 0.0:
                if self._avoidance.mode is OscillationMode.ONE_STEP:
                    cancel = clipped < threshold
                else:
                    cancel = (
                        np.hypot(
                            end_x - prev_x[midx], end_y - prev_y[midx]
                        )
                        < threshold
                    )
                keep = ~cancel
                midx = midx[keep]
                end_x, end_y = end_x[keep], end_y[keep]
            dists = np.hypot(end_x - xs[midx], end_y - ys[midx])
            moves = [
                (sensors[i], x, y, d)
                for i, x, y, d in zip(
                    midx.tolist(), end_x.tolist(), end_y.tolist(), dists.tolist()
                )
            ]
            world.commit_moves(moves)
            # Keep the coordinate arrays live for the next color class:
            # its link positions must see this class's committed moves.
            xs[midx] = end_x
            ys[midx] = end_y
        batch_span.__exit__(None, None, None)
        # Oscillation history: every connected sensor's previous position
        # becomes its start-of-period position (the scalar modes do the
        # same, branch by branch); repair sensors keep their history until
        # their own scalar pass below reads it.
        repair_set = set(repair)
        for i in np.flatnonzero(connected).tolist():
            if i not in repair_set:
                sensors[i].previous_position = starts[i]
        if not repair:
            return
        # The inflated pair rows double as the repair pass's candidate
        # lists: a sensor in range of a blocked one at any point of the
        # pass was within rc + 2 * max_step at the period start, and the
        # live-distance filter inside the parent-change scan discards the
        # extras, so the surviving candidates (and their order) match a
        # freshly built neighbour table.
        candidate_csr = None
        if self._allow_parent_change:
            offsets = np.zeros(n + 1, dtype=np.intp)
            np.cumsum(np.bincount(rows, minlength=n), out=offsets[1:])
            candidate_csr = (cols, offsets)
        if tel.enabled:
            tel.count("cpvf.repair_attempts", len(repair))
            tel.count("cpvf.stray_sensors", int(stray.sum()))
        if self._repair_grouping:
            with tel.span("cpvf.repair_groups"):
                self._repair_grouped(
                    world, sensors, repair, stray, ux, uy,
                    candidate_csr, xs, ys, connected, prev_x, prev_y,
                )
        else:
            with tel.span("cpvf.repair"):
                for i in repair:
                    self._repair_blocked(
                        world, sensors[i], Vec2(float(ux[i]), float(uy[i])),
                        record_messages=bool(stray[i]),
                        candidate_csr=candidate_csr,
                        xs=xs, ys=ys, connected=connected,
                    )
                    # Keep the live coordinate arrays in sync for later
                    # repairs.
                    pos = sensors[i].position
                    xs[i] = pos.x
                    ys[i] = pos.y

    def _repair_grouped(
        self,
        world: World,
        sensors,
        repair: List[int],
        stray,
        ux,
        uy,
        candidate_csr,
        xs,
        ys,
        connected,
        prev_x,
        prev_y,
    ) -> None:
        """Conflict-grouped repair: batch re-ladders over link-disjoint
        candidates instead of one scalar walk per sensor.

        Greedy edge-coloring over the candidates' required links: a
        round admits every pending sensor whose link set ({self, parent,
        children}; the immobile base station is excluded) is disjoint
        from the links already claimed this round, so an admitted
        sensor's frozen link positions cannot be invalidated by another
        admitted sensor's commit.  Admitted sensors are re-laddered with
        :func:`batched_ladder_steps` against the settled coordinate
        arrays and committed in one pass (obstacle clipping, oscillation
        masks and ``previous_position`` handling mirror
        :meth:`_finish_move` branch for branch); sensors the ladder
        still blocks take the serialized lock-subtree parent-change
        handshake one by one, exactly as the ungrouped pass — LockTree /
        UnLockTree stay charged per attempt, preserving the paper's
        message accounting.  Deferred sensors (link conflicts) retry in
        the next round; each round admits at least the first pending
        sensor, so the loop terminates.
        """
        assert self._avoidance is not None
        config = world.config
        field = world.field
        base = world.base_station
        max_step = config.max_step
        threshold = self._avoidance.threshold()
        tel = world.telemetry
        pending = list(repair)
        rounds = 0
        while pending:
            rounds += 1
            used: set = set()
            group: List[int] = []
            deferred: List[int] = []
            owners: List[int] = []
            nodes_list: List[int] = []
            for i in pending:
                parent, children = self._link_node_ids(world, i)
                links = {i, *children}
                if parent is not None and parent != BASE_STATION_ID:
                    links.add(parent)
                if not used.isdisjoint(links):
                    deferred.append(i)
                    continue
                used.update(links)
                k = len(group)
                group.append(i)
                count = 0
                if parent is not None:
                    owners.append(k)
                    nodes_list.append(parent)
                    count += 1
                for child in children:
                    owners.append(k)
                    nodes_list.append(child)
                    count += 1
                if stray[i] and count:
                    # Stray sensors bypassed the color batches, so their
                    # per-link state exchange is accounted here — at
                    # admission, once, like the scalar pass.
                    world.routing.record_one_hop(
                        MessageType.NEIGHBOR_STATE, count
                    )
            idx = np.asarray(group, dtype=np.intp)
            pair_owner = np.asarray(owners, dtype=np.intp)
            nodes = np.asarray(nodes_list, dtype=np.intp)
            safe_nodes = np.maximum(nodes, 0)
            link_x = np.where(nodes == BASE_STATION_ID, base.x, xs[safe_nodes])
            link_y = np.where(nodes == BASE_STATION_ID, base.y, ys[safe_nodes])
            steps = batched_ladder_steps(
                xs[idx],
                ys[idx],
                ux[idx],
                uy[idx],
                max_step,
                config.communication_range,
                pair_owner,
                link_x,
                link_y,
            )
            blocked = steps <= 0.0
            movers = np.flatnonzero(~blocked)
            if movers.size:
                midx = idx[movers]
                for i in midx.tolist():
                    # Like _finish_move: a sensor that found a step no
                    # longer needs the lock grant it was waiting for.
                    self._pending_locks.pop(i, None)
                mux, muy = ux[midx], uy[midx]
                clipped = field.max_free_travel_batch(
                    xs[midx], ys[midx], mux, muy, steps[movers]
                )
                dir_norm = np.hypot(mux, muy)
                safe = np.where(dir_norm > EPS, dir_norm, 1.0)
                end_x = np.where(
                    dir_norm > EPS, xs[midx] + (mux / safe) * clipped, xs[midx]
                )
                end_y = np.where(
                    dir_norm > EPS, ys[midx] + (muy / safe) * clipped, ys[midx]
                )
                keep = np.ones(midx.size, dtype=bool)
                if threshold > 0.0:
                    if self._avoidance.mode is OscillationMode.ONE_STEP:
                        keep = ~(clipped < threshold)
                    else:
                        keep = ~(
                            np.hypot(
                                end_x - prev_x[midx], end_y - prev_y[midx]
                            )
                            < threshold
                        )
                # _finish_move records the pre-move position as history
                # for cancelled and committed movers alike.
                for i in midx.tolist():
                    sensors[i].previous_position = sensors[i].position
                cidx = midx[keep]
                if cidx.size:
                    cend_x, cend_y = end_x[keep], end_y[keep]
                    dists = np.hypot(cend_x - xs[cidx], cend_y - ys[cidx])
                    moves = [
                        (sensors[i], x, y, d)
                        for i, x, y, d in zip(
                            cidx.tolist(),
                            cend_x.tolist(),
                            cend_y.tolist(),
                            dists.tolist(),
                        )
                    ]
                    world.commit_moves(moves)
                    xs[cidx] = cend_x
                    ys[cidx] = cend_y
            for k in np.flatnonzero(blocked).tolist():
                i = group[k]
                step = 0.0
                if self._allow_parent_change:
                    step = self._try_parent_change_batched(
                        world, sensors[i],
                        Vec2(float(ux[i]), float(uy[i])),
                        candidate_csr, xs, ys, connected,
                    )
                if step <= 0.0:
                    sensors[i].previous_position = sensors[i].position
                    continue
                self._finish_move(
                    world, sensors[i], Vec2(float(ux[i]), float(uy[i])), step
                )
                pos = sensors[i].position
                xs[i] = pos.x
                ys[i] = pos.y
            pending = deferred
        if tel.enabled and rounds:
            tel.count("cpvf.repair_rounds", rounds)

    def _repair_blocked(
        self,
        world: World,
        sensor: Sensor,
        direction: Vec2,
        record_messages: bool,
        candidate_csr=None,
        xs=None,
        ys=None,
        connected=None,
    ) -> None:
        """Sequential tail for sensors the batch could not move.

        Re-runs the ladder against the settled (post-commit) link
        positions, attempts a parent change when still blocked, and
        finishes through the shared scalar tail.  ``record_messages`` is
        ``False`` for batch-deferred sensors (their state exchange was
        already accounted in the class batch) and ``True`` for stray
        sensors that bypassed the batch entirely.  ``candidate_csr`` is
        the repair pass's shared ``(cols, offsets)`` candidate structure;
        ``xs, ys, connected`` its live coordinate/state arrays.
        """
        config = world.config
        links = self._tree_link_positions(world, sensor)
        if record_messages and links:
            world.routing.record_one_hop(
                MessageType.NEIGHBOR_STATE, len(links)
            )
        step = max_valid_step_points(
            sensor.position.x,
            sensor.position.y,
            direction.x,
            direction.y,
            config.max_step,
            links,
            config.communication_range,
        )
        if step <= 0.0 and self._allow_parent_change:
            # candidate_csr is always built when parent changes are
            # allowed (the only caller constructs it unconditionally).
            step = self._try_parent_change_batched(
                world, sensor, direction, candidate_csr,
                xs, ys, connected,
            )
        if step <= 0.0:
            sensor.previous_position = sensor.position
            return
        self._finish_move(world, sensor, direction, step)

    def _try_parent_change_batched(
        self,
        world: World,
        sensor: Sensor,
        direction: Vec2,
        candidate_csr,
        xs,
        ys,
        connected,
    ) -> float:
        """Array-filtered parent change for the batched repair pass.

        Makes the same decision as :meth:`_try_parent_change` — same
        candidate order (base station first, then ascending ids), same
        fraction-outer scan — but enumerates candidates from the period's
        inflated pair structure and filters them against the live
        coordinate arrays instead of walking a neighbour table row in
        Python.  The inflation covers the most any sensor moves within
        the period, and the live distance filter below discards the
        extras, so the surviving candidate set matches a freshly built
        table.
        """
        config = world.config
        sid = sensor.sensor_id
        position = sensor.position
        px, py = position.x, position.y
        limit = config.communication_range + 1e-9
        csr_cols, csr_offsets = candidate_csr
        cand = csr_cols[csr_offsets[sid]:csr_offsets[sid + 1]]
        cand = cand[connected[cand]]
        if cand.size:
            live = np.hypot(xs[cand] - px, ys[cand] - py) <= limit
            cand = cand[live]
        subtree = None
        if cand.size:
            subtree = world.tree.subtree_of(sid)
            if len(subtree) > 1:
                cand = np.asarray(
                    [c for c in cand.tolist() if c not in subtree],
                    dtype=np.intp,
                )
        base = world.base_station
        base_ok = (
            math.hypot(px - base.x, py - base.y)
            <= config.communication_range
        )
        if cand.size == 0 and not base_ok:
            return 0.0

        if subtree is None:
            subtree = world.tree.subtree_of(sid)
        if not self._acquire_subtree_lock(world, sid, len(subtree)):
            return 0.0

        norm = math.hypot(direction.x, direction.y)
        if norm <= EPS or config.max_step <= 0.0:
            return 0.0
        unit_x, unit_y = direction.x / norm, direction.y / norm
        _, children = self._link_node_ids(world, sid)
        child_idx = np.asarray(children, dtype=np.intp)
        child_x, child_y = xs[child_idx], ys[child_idx]
        # A required link that is already out of range invalidates every
        # candidate step, whatever the new parent.
        if np.any(np.hypot(px - child_x, py - child_y) > limit):
            return 0.0
        cand_x, cand_y = xs[cand], ys[cand]
        for fraction in STEP_FRACTIONS:
            step = fraction * config.max_step
            if step <= 0.0:
                return 0.0
            qx, qy = px + unit_x * step, py + unit_y * step
            if np.any(np.hypot(qx - child_x, qy - child_y) > limit):
                continue
            if base_ok and math.hypot(qx - base.x, qy - base.y) <= limit:
                world.reparent_in_tree(sid, BASE_STATION_ID)
                world.telemetry.count("cpvf.parent_changes", 1)
                return step
            ok = np.flatnonzero(np.hypot(qx - cand_x, qy - cand_y) <= limit)
            if ok.size:
                world.reparent_in_tree(sid, int(cand[ok[0]]))
                world.telemetry.count("cpvf.parent_changes", 1)
                return step
        return 0.0

    def _finish_move(
        self, world: World, sensor: Sensor, direction: Vec2, step: float
    ) -> None:
        """Clip a validated step to free space, apply oscillation
        avoidance, and commit the move (the shared per-sensor tail of all
        three execution modes)."""
        assert self._avoidance is not None
        # A sensor that found a way to move no longer needs the lock grant
        # it was waiting for; drop it so a later block starts a fresh
        # handshake instead of consuming a stale grant.
        self._pending_locks.pop(sensor.sensor_id, None)
        # Respect obstacles and the field boundary.
        step = world.field.max_free_travel(sensor.position, direction, step)
        # Inlined `position + direction.normalized() * step`.
        dir_norm = math.hypot(direction.x, direction.y)
        position = sensor.position
        if dir_norm <= EPS:
            planned_end = position
        else:
            planned_end = Vec2(
                position.x + (direction.x / dir_norm) * step,
                position.y + (direction.y / dir_norm) * step,
            )
        previous = sensor.previous_position
        if self._avoidance.should_cancel(
            step, sensor.position, planned_end, previous
        ):
            sensor.previous_position = sensor.position
            return
        sensor.previous_position = sensor.position
        sensor.motion.move_to(planned_end)

    def _link_node_ids(self, world: World, sensor_id: int) -> tuple:
        """``(parent_id_or_None, children_tuple)`` for one sensor.

        Derived lazily from the tree and cached keyed on
        ``tree.version``, so the per-period scalar paths stop re-copying
        the children set for every sensor every period.
        """
        tree = world.tree
        if self._link_ids_version != tree.version:
            self._link_ids = {}
            self._link_ids_version = tree.version
        cached = self._link_ids.get(sensor_id)
        if cached is None:
            children = tree.children.get(sensor_id)
            cached = (
                tree.parent.get(sensor_id),
                tuple(children) if children else (),
            )
            self._link_ids[sensor_id] = cached
        return cached

    def _tree_link_positions(
        self, world: World, sensor: Sensor
    ) -> List[tuple]:
        """Live ``(x, y)`` positions of the links the sensor must preserve."""
        parent, children = self._link_node_ids(world, sensor.sensor_id)
        links: List[tuple] = []
        if parent is not None:
            pos = (
                world.base_station
                if parent == BASE_STATION_ID
                else world.sensor(parent).position
            )
            links.append((pos.x, pos.y))
        for child in children:
            pos = world.sensor(child).position
            links.append((pos.x, pos.y))
        return links

    def _required_neighbors(
        self, world: World, sensor: Sensor
    ) -> List[NeighborMotion]:
        """Connections the sensor must preserve: its parent and children."""
        parent, children = self._link_node_ids(world, sensor.sensor_id)
        required: List[NeighborMotion] = []
        if parent is not None and parent != BASE_STATION_ID:
            required.append(NeighborMotion.stationary(world.sensor(parent).position))
        elif parent == BASE_STATION_ID:
            required.append(NeighborMotion.stationary(world.base_station))
        for child in children:
            required.append(NeighborMotion.stationary(world.sensor(child).position))
        return required

    def _subtree_lock_depth(self, world: World, root: int) -> int:
        """BFS depth of the subtree rooted at ``root`` (0 for a leaf).

        The LockTree wave serializes along the deepest root-to-leaf path:
        the grant cannot be issued until the farthest descendant has
        acknowledged, so the handshake's loss-critical transmission count
        grows with this depth, not with the subtree size.
        """
        tree = world.tree
        depth = 0
        frontier = [root]
        seen = {root}
        while frontier:
            next_frontier: List[int] = []
            for node in frontier:
                for child in tree.children.get(node, ()):
                    if child not in seen:
                        seen.add(child)
                        next_frontier.append(child)
            if next_frontier:
                depth += 1
            frontier = next_frontier
        return depth

    def _acquire_subtree_lock(
        self, world: World, sensor_id: int, subtree_size: int
    ) -> bool:
        """Run the LockTree/UnLockTree handshake through the network model.

        Perfect network: charge the handshake and grant immediately (the
        seed behaviour).  Under latency the request is parked and the
        grant arrives ``latency`` periods later; under loss the critical
        down-and-back wave (2 * depth + 2 transmissions) retries with
        exponential backoff up to the delivery budget.  A timed-out
        handshake aborts to the safe state — the caller keeps the current
        parent and holds position, preserving the paper's serialization
        requirement.
        """
        net = world.network
        if net.is_perfect:
            world.routing.record_subtree_lock(
                world.tree, sensor_id, subtree_size=subtree_size
            )
            return True
        if net.latency > 0:
            due = self._pending_locks.get(sensor_id)
            if due is None:
                self._pending_locks[sensor_id] = (
                    world.period_index + net.latency
                )
                world.stats.record_net("delayed", net.latency)
                return False
            if world.period_index < due:
                return False
            del self._pending_locks[sensor_id]
        delivered, attempts = True, 1
        if net.lossy:
            depth = self._subtree_lock_depth(world, sensor_id)
            delivered, attempts = net.exchange(
                world, ("cpvf.lock", sensor_id), 2 * depth + 2
            )
        # Every attempt re-runs the whole lock/unlock wave on the air.
        world.routing.record_subtree_lock(
            world.tree, sensor_id, subtree_size=subtree_size, attempts=attempts
        )
        if not delivered:
            world.telemetry.count("cpvf.lock_aborts", 1)
        return delivered

    def _try_parent_change(
        self,
        world: World,
        sensor: Sensor,
        direction: Vec2,
        table: Dict[int, List[int]],
    ) -> float:
        """Attempt to adopt a new parent that unblocks the planned move.

        The sensor must lock its subtree first (accounted as LockTree /
        UnLockTree transmissions); candidate parents are connected
        neighbours outside the sensor's own subtree.  Returns the step size
        achievable under the best new parent (0 when none helps).
        """
        config = world.config
        subtree = world.tree.subtree_of(sensor.sensor_id)
        candidates: List[int] = []
        base_dist = sensor.position.distance_to(world.base_station)
        if base_dist <= config.communication_range:
            candidates.append(BASE_STATION_ID)
        for nb_id in table.get(sensor.sensor_id, []):
            nb = world.sensor(nb_id)
            if nb.is_connected() and nb_id not in subtree:
                candidates.append(nb_id)
        if not candidates:
            return 0.0

        if not self._acquire_subtree_lock(
            world, sensor.sensor_id, len(subtree)
        ):
            return 0.0

        if not self._vectorized:
            return self._best_parent_ladder(world, sensor, direction, candidates)

        # Equivalent to taking max_valid_step() per candidate and keeping
        # the first candidate attaining the best step, but scanned fraction-
        # outer so the shared child constraints are checked once per
        # candidate step size and the scan stops at the first (largest)
        # step some candidate admits.
        position = sensor.position
        norm = math.hypot(direction.x, direction.y)
        if norm <= EPS or config.max_step <= 0.0:
            return 0.0
        unit_x, unit_y = direction.x / norm, direction.y / norm
        px, py = position.x, position.y
        limit = config.communication_range + 1e-9
        children_xy = [
            (world.sensor(c).position.x, world.sensor(c).position.y)
            for c in world.tree.children_of(sensor.sensor_id)
        ]
        # A required link that is already out of range invalidates every
        # candidate step, whatever the new parent.
        for cx, cy in children_xy:
            if math.hypot(px - cx, py - cy) > limit:
                return 0.0
        candidate_xy = []
        for candidate in candidates:
            parent_pos = (
                world.base_station
                if candidate == BASE_STATION_ID
                else world.sensor(candidate).position
            )
            if math.hypot(px - parent_pos.x, py - parent_pos.y) <= limit:
                candidate_xy.append((candidate, parent_pos.x, parent_pos.y))
        if not candidate_xy:
            return 0.0
        for fraction in STEP_FRACTIONS:
            step = fraction * config.max_step
            if step <= 0.0:
                return 0.0
            qx, qy = px + unit_x * step, py + unit_y * step
            if any(
                math.hypot(qx - cx, qy - cy) > limit for cx, cy in children_xy
            ):
                continue
            for candidate, cx, cy in candidate_xy:
                if math.hypot(qx - cx, qy - cy) <= limit:
                    world.reparent_in_tree(sensor.sensor_id, candidate)
                    world.telemetry.count("cpvf.parent_changes", 1)
                    return step
        return 0.0

    def _best_parent_ladder(
        self,
        world: World,
        sensor: Sensor,
        direction: Vec2,
        candidates: List[int],
    ) -> float:
        """Seed-faithful candidate scan: one full step ladder per candidate.

        Kept as the reference/baseline path (``vectorized=False``); the
        fraction-outer scan above returns the same (step, parent) choice.
        """
        config = world.config
        children_motions = [
            NeighborMotion.stationary(world.sensor(c).position)
            for c in world.tree.children_of(sensor.sensor_id)
        ]
        best_step = 0.0
        best_parent: Optional[int] = None
        for candidate in candidates:
            parent_pos = (
                world.base_station
                if candidate == BASE_STATION_ID
                else world.sensor(candidate).position
            )
            required = children_motions + [NeighborMotion.stationary(parent_pos)]
            step = max_valid_step(
                sensor.position,
                direction,
                config.max_step,
                required,
                config.communication_range,
            )
            if step > best_step:
                best_step = step
                best_parent = candidate
        if best_parent is not None and best_step > 0.0:
            world.reparent_in_tree(sensor.sensor_id, best_parent)
            world.telemetry.count("cpvf.parent_changes", 1)
            return best_step
        return 0.0

    # ------------------------------------------------------------------
    # Lifecycle churn
    # ------------------------------------------------------------------
    def on_world_changed(self, world: World, change) -> None:
        """React to fault-injection events between periods.

        Failures: any lazily-waiting state tied to the dead sensor is
        dropped.  Sensors the tree repair could not re-attach (and freshly
        injected sensors) are re-dispatched toward the base station; their
        BUG2 paths are planned lazily on the next period, so a sensor that
        finds a connected neighbour immediately never walks.  Obstacle
        changes invalidate every in-flight path — BUG2 trajectories were
        planned against the old field and may now cut through (or detour
        around) geometry that no longer exists.
        """
        if self._planner is None or self._lazy is None:
            return
        if change.obstacles_changed:
            for sensor in world.sensors:
                if sensor.is_alive() and sensor.motion.has_path:
                    sensor.motion.stop()
        for sid in change.failed_ids:
            self._lazy.stop_waiting(world.sensor(sid))
            self._pending_locks.pop(sid, None)
        for sid in chain(change.disconnected_ids, change.added_ids):
            sensor = world.sensor(sid)
            self._pending_locks.pop(sid, None)
            if not sensor.is_alive() or sensor.is_connected():
                continue
            sensor.state = SensorState.MOVING_TO_CONNECT
            self._lazy.stop_waiting(sensor)
            sensor.motion.stop()

    # ------------------------------------------------------------------
    # Convergence
    # ------------------------------------------------------------------
    def has_converged(self, world: World) -> bool:
        """CPVF does not converge reliably (Section 4.4); run the horizon."""
        return False
