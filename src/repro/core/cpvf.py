"""The Connectivity-Preserved Virtual Force (CPVF) scheme (Section 4).

CPVF proceeds in two stages that in practice overlap in time:

1. **Achieving connectivity** — sensors in the immediate vicinity of the
   base station learn they are connected via a network flood; every other
   sensor walks toward the base station with BUG2 (right-hand rule) under
   the lazy-movement strategy, stopping as soon as it enters the
   communication range of a connected sensor, which becomes its tree parent.
2. **Maximising coverage** — connected sensors move under virtual forces.
   The force only chooses the *direction*; the step size is the largest
   candidate satisfying the connectivity-preserving conditions with respect
   to the sensor's tree parent and children.  A sensor that cannot move at
   all under its current parent may attempt to change parent, which requires
   locking its subtree (LockTree / UnLockTree) to avoid creating loops.

Optionally, the one-step or two-step oscillation-avoidance rule of
Section 6.3 suppresses unproductive movement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import chain
from typing import Dict, List, Optional

import numpy as np

from ..field import Field
from ..geometry import EPS
from ..geometry import Segment, Vec2
from ..mobility import Bug2Planner, Handedness
from ..network import BASE_STATION_ID, MessageType
from ..sensors import Sensor, SensorState
from ..sim import DeploymentScheme, World
from .connectivity import (
    STEP_FRACTIONS,
    NeighborMotion,
    max_valid_step,
    max_valid_step_points,
)
from .lazy import LazyMovementController
from .oscillation import OscillationAvoidance, OscillationMode
from .virtual_force import VirtualForceModel

__all__ = ["CPVFScheme"]

#: Shared zero direction (Vec2 is immutable, so one instance is safe).
_ZERO_VEC = Vec2(0.0, 0.0)


class CPVFScheme(DeploymentScheme):
    """Connectivity-Preserved Virtual Force deployment."""

    name = "CPVF"

    def __init__(
        self,
        allow_parent_change: bool = True,
        oscillation_delta: Optional[float] = None,
        oscillation_mode: str = "one-step",
        repulsion_distance: Optional[float] = None,
        vectorized: bool = True,
    ):
        """Create the scheme.

        Parameters
        ----------
        allow_parent_change:
            Whether a sensor blocked by its current parent may re-parent
            (the paper found this gives sensors more freedom to explore).
        oscillation_delta / oscillation_mode:
            Oscillation-avoidance factor and rule (Section 6.3); ``None``
            disables avoidance, which is the paper's default CPVF.
        repulsion_distance:
            Pairwise repulsion threshold for the virtual forces; defaults to
            ``2 * rs`` of the simulated sensors.
        vectorized:
            Evaluate the pairwise virtual forces for all sensors in one
            numpy batch instead of per-sensor ``Vec2`` loops.  The batch
            uses every sensor's start-of-period position, matching the
            paper's simultaneous-decision semantics (the scalar loop lets
            earlier movers' new positions leak into later sensors' forces
            within the same period); it can also differ by one ulp in the
            force vector because ``np.hypot`` and ``math.hypot`` round
            independently.  The scalar path is kept as the seed baseline
            for the perf benchmarks.
        """
        self._allow_parent_change = allow_parent_change
        self._oscillation_delta = oscillation_delta
        self._oscillation_mode = OscillationMode.from_string(oscillation_mode)
        self._repulsion_distance = repulsion_distance
        self._vectorized = vectorized
        self._planner: Optional[Bug2Planner] = None
        self._forces: Optional[VirtualForceModel] = None
        self._lazy: Optional[LazyMovementController] = None
        self._avoidance: Optional[OscillationAvoidance] = None

    # ------------------------------------------------------------------
    # Initialisation
    # ------------------------------------------------------------------
    def initialize(self, world: World) -> None:
        config = world.config
        self._planner = Bug2Planner(world.field, Handedness.RIGHT)
        repulsion = (
            self._repulsion_distance
            if self._repulsion_distance is not None
            else 2.0 * config.sensing_range
        )
        self._forces = VirtualForceModel(
            repulsion_distance=repulsion,
            obstacle_distance=config.sensing_range,
        )
        self._lazy = LazyMovementController(world.routing)
        self._avoidance = OscillationAvoidance(
            max_step=config.max_step,
            delta=self._oscillation_delta,
            mode=self._oscillation_mode,
        )
        self._bootstrap_connectivity(world)
        for sensor in world.sensors:
            if sensor.state is SensorState.DISCONNECTED:
                sensor.state = SensorState.MOVING_TO_CONNECT
                path = self._planner.plan(sensor.position, world.base_station)
                sensor.motion.follow(path)

    def _bootstrap_connectivity(self, world: World) -> None:
        """Initial flood: the connected component of the base station joins
        the tree; everyone else learns it is disconnected."""
        # The component, table and base adjacency all come from the world's
        # neighbor cache, so the three queries share one spatial-index build.
        component = world.connected_component_of()
        # Build the tree breadth-first from the base station so that parents
        # are always closer (in hops) to the root.
        table = world.neighbor_table()
        near_base = set(world.sensors_near_base_station())
        frontier: List[int] = []
        for sid in sorted(near_base):
            world.attach_to_tree(sid, BASE_STATION_ID)
            frontier.append(sid)
        attached = set(near_base)
        while frontier:
            current = frontier.pop(0)
            for nb in table.get(current, []):
                if nb in attached or nb not in component:
                    continue
                world.attach_to_tree(nb, current)
                attached.add(nb)
                frontier.append(nb)
        world.routing.record_flood(len(attached))

    # ------------------------------------------------------------------
    # Per-period execution
    # ------------------------------------------------------------------
    def step(self, world: World) -> None:
        assert self._planner is not None and self._forces is not None
        assert self._lazy is not None and self._avoidance is not None
        table = world.neighbor_table()
        self._connect_reachable_sensors(world, table)
        self._advance_disconnected_sensors(world, table)
        self._apply_virtual_forces(world, table)

    # -- Stage 1: establishing connectivity ----------------------------
    def _connect_reachable_sensors(
        self, world: World, table: Dict[int, List[int]]
    ) -> None:
        """Disconnected sensors adjacent to the tree join it and stop."""
        newly_connected = True
        while newly_connected:
            newly_connected = False
            for sensor in world.sensors:
                if sensor.is_connected():
                    continue
                parent_id = self._closest_connected_neighbor(world, sensor, table)
                if parent_id is None:
                    continue
                sensor.motion.stop()
                assert self._lazy is not None
                self._lazy.stop_waiting(sensor)
                world.attach_to_tree(sensor.sensor_id, parent_id)
                sensor.state = SensorState.CONNECTED
                newly_connected = True

    def _closest_connected_neighbor(
        self, world: World, sensor: Sensor, table: Dict[int, List[int]]
    ) -> Optional[int]:
        """The nearest connected node (sensor or base station) in range."""
        best: Optional[int] = None
        best_dist = float("inf")
        base_dist = sensor.position.distance_to(world.base_station)
        if base_dist <= world.config.communication_range:
            best, best_dist = BASE_STATION_ID, base_dist
        for nb_id in table.get(sensor.sensor_id, []):
            nb = world.sensor(nb_id)
            if not nb.is_connected():
                continue
            dist = sensor.position.distance_to(nb.position)
            if dist < best_dist:
                best, best_dist = nb_id, dist
        return best

    def _advance_disconnected_sensors(
        self, world: World, table: Dict[int, List[int]]
    ) -> None:
        """Disconnected sensors walk toward the base station (lazily)."""
        assert self._lazy is not None and self._planner is not None
        for sensor in world.sensors:
            if sensor.is_connected():
                continue
            neighbors = [
                world.sensor(n)
                for n in table.get(sensor.sensor_id, [])
                if not world.sensor(n).is_connected()
            ]
            planner = self._planner
            self._lazy.advance_toward_connection(
                sensor,
                world.base_station,
                neighbors,
                lambda s=sensor: planner.plan(s.position, world.base_station),
            )

    # -- Stage 2: virtual-force coverage maximisation -------------------
    def _force_directions(
        self, world: World, connected: List[Sensor], table: Dict[int, List[int]]
    ) -> Dict[int, Vec2]:
        """Resultant force directions for all connected sensors at once.

        Pairwise sensor repulsion is evaluated in one numpy batch over the
        packed neighbour lists; the (cheap, per-sensor) obstacle and
        boundary terms are added scalar-wise, preserving the summation
        order of :meth:`VirtualForceModel.resultant`.
        """
        assert self._forces is not None
        sensors = world.sensors
        xs = np.fromiter((s.position.x for s in sensors), float, len(sensors))
        ys = np.fromiter((s.position.y for s in sensors), float, len(sensors))
        neighbor_lists = [table.get(s.sensor_id, []) for s in connected]
        lengths = np.fromiter(
            (len(lst) for lst in neighbor_lists), np.intp, len(connected)
        )
        rows = np.repeat(
            np.fromiter((s.sensor_id for s in connected), np.intp, len(connected)),
            lengths,
        )
        cols = np.fromiter(
            chain.from_iterable(neighbor_lists), np.intp, int(lengths.sum())
        )
        sum_x, sum_y = self._forces.sensor_force_sums(xs, ys, rows, cols)
        sum_x = sum_x.tolist()
        sum_y = sum_y.tolist()
        directions: Dict[int, Vec2] = {}
        field = world.field
        has_obstacles = bool(field.obstacles)
        width, height = field.width, field.height
        boundary_force_xy = self._forces.boundary_force_xy
        for sensor in connected:
            sid = sensor.sensor_id
            total_x, total_y = sum_x[sid], sum_y[sid]
            if has_obstacles:
                obstacle = self._forces.force_from_obstacles(sensor.position, field)
                total_x += obstacle.x
                total_y += obstacle.y
            else:
                # force_from_obstacles with no obstacles reduces to the
                # four wall terms.
                wall_x, wall_y = boundary_force_xy(
                    sensor.position.x, sensor.position.y, width, height
                )
                total_x += wall_x
                total_y += wall_y
            norm = math.hypot(total_x, total_y)
            if norm <= EPS:
                directions[sid] = _ZERO_VEC
            else:
                directions[sid] = Vec2(total_x / norm, total_y / norm)
        return directions

    def _apply_virtual_forces(
        self, world: World, table: Dict[int, List[int]]
    ) -> None:
        assert self._forces is not None and self._avoidance is not None
        config = world.config
        connected = [s for s in world.sensors if s.is_connected()]
        directions: Optional[Dict[int, Vec2]] = None
        if self._vectorized and connected:
            directions = self._force_directions(world, connected, table)
        for sensor in connected:
            if directions is not None:
                direction = directions[sensor.sensor_id]
            else:
                neighbor_ids = table.get(sensor.sensor_id, [])
                neighbor_positions = [
                    world.sensor(n).position for n in neighbor_ids
                ]
                direction = self._forces.direction(
                    sensor.position, neighbor_positions, world.field
                )
            if direction.x == 0.0 and direction.y == 0.0:
                sensor.previous_position = sensor.position
                continue

            if directions is not None:
                # Fused fast path: read the live parent/child positions as
                # plain floats and run the candidate ladder on them.
                links = self._tree_link_positions(world, sensor)
                # Each required link costs one state-exchange message
                # before the step-size decision (Section 4.2).
                if links:
                    world.routing.record_one_hop(
                        MessageType.NEIGHBOR_STATE, len(links)
                    )
                step = max_valid_step_points(
                    sensor.position.x,
                    sensor.position.y,
                    direction.x,
                    direction.y,
                    config.max_step,
                    links,
                    config.communication_range,
                )
            else:
                required = self._required_neighbors(world, sensor)
                if required:
                    world.routing.record_one_hop(
                        MessageType.NEIGHBOR_STATE, len(required)
                    )
                step = max_valid_step(
                    sensor.position,
                    direction,
                    config.max_step,
                    required,
                    config.communication_range,
                )

            if step <= 0.0 and self._allow_parent_change:
                step = self._try_parent_change(world, sensor, direction, table)

            if step <= 0.0:
                sensor.previous_position = sensor.position
                continue

            # Respect obstacles and the field boundary.
            step = world.field.max_free_travel(sensor.position, direction, step)
            # Inlined `position + direction.normalized() * step`.
            dir_norm = math.hypot(direction.x, direction.y)
            position = sensor.position
            if dir_norm <= EPS:
                planned_end = position
            else:
                planned_end = Vec2(
                    position.x + (direction.x / dir_norm) * step,
                    position.y + (direction.y / dir_norm) * step,
                )
            previous = sensor.previous_position
            if self._avoidance.should_cancel(
                step, sensor.position, planned_end, previous
            ):
                sensor.previous_position = sensor.position
                continue
            sensor.previous_position = sensor.position
            sensor.motion.move_to(planned_end)

    def _tree_link_positions(
        self, world: World, sensor: Sensor
    ) -> List[tuple]:
        """Live ``(x, y)`` positions of the links the sensor must preserve."""
        links: List[tuple] = []
        parent = world.tree.parent_of(sensor.sensor_id)
        if parent is not None:
            pos = (
                world.base_station
                if parent == BASE_STATION_ID
                else world.sensor(parent).position
            )
            links.append((pos.x, pos.y))
        for child in world.tree.children_of(sensor.sensor_id):
            pos = world.sensor(child).position
            links.append((pos.x, pos.y))
        return links

    def _required_neighbors(
        self, world: World, sensor: Sensor
    ) -> List[NeighborMotion]:
        """Connections the sensor must preserve: its parent and children."""
        required: List[NeighborMotion] = []
        parent = world.tree.parent_of(sensor.sensor_id)
        if parent is not None and parent != BASE_STATION_ID:
            required.append(NeighborMotion.stationary(world.sensor(parent).position))
        elif parent == BASE_STATION_ID:
            required.append(NeighborMotion.stationary(world.base_station))
        for child in world.tree.children_of(sensor.sensor_id):
            required.append(NeighborMotion.stationary(world.sensor(child).position))
        return required

    def _try_parent_change(
        self,
        world: World,
        sensor: Sensor,
        direction: Vec2,
        table: Dict[int, List[int]],
    ) -> float:
        """Attempt to adopt a new parent that unblocks the planned move.

        The sensor must lock its subtree first (accounted as LockTree /
        UnLockTree transmissions); candidate parents are connected
        neighbours outside the sensor's own subtree.  Returns the step size
        achievable under the best new parent (0 when none helps).
        """
        config = world.config
        subtree = world.tree.subtree_of(sensor.sensor_id)
        candidates: List[int] = []
        base_dist = sensor.position.distance_to(world.base_station)
        if base_dist <= config.communication_range:
            candidates.append(BASE_STATION_ID)
        for nb_id in table.get(sensor.sensor_id, []):
            nb = world.sensor(nb_id)
            if nb.is_connected() and nb_id not in subtree:
                candidates.append(nb_id)
        if not candidates:
            return 0.0

        world.routing.record_subtree_lock(world.tree, sensor.sensor_id)

        if not self._vectorized:
            return self._best_parent_ladder(world, sensor, direction, candidates)

        # Equivalent to taking max_valid_step() per candidate and keeping
        # the first candidate attaining the best step, but scanned fraction-
        # outer so the shared child constraints are checked once per
        # candidate step size and the scan stops at the first (largest)
        # step some candidate admits.
        position = sensor.position
        norm = math.hypot(direction.x, direction.y)
        if norm <= EPS or config.max_step <= 0.0:
            return 0.0
        unit_x, unit_y = direction.x / norm, direction.y / norm
        px, py = position.x, position.y
        limit = config.communication_range + 1e-9
        children_xy = [
            (world.sensor(c).position.x, world.sensor(c).position.y)
            for c in world.tree.children_of(sensor.sensor_id)
        ]
        # A required link that is already out of range invalidates every
        # candidate step, whatever the new parent.
        for cx, cy in children_xy:
            if math.hypot(px - cx, py - cy) > limit:
                return 0.0
        candidate_xy = []
        for candidate in candidates:
            parent_pos = (
                world.base_station
                if candidate == BASE_STATION_ID
                else world.sensor(candidate).position
            )
            if math.hypot(px - parent_pos.x, py - parent_pos.y) <= limit:
                candidate_xy.append((candidate, parent_pos.x, parent_pos.y))
        if not candidate_xy:
            return 0.0
        for fraction in STEP_FRACTIONS:
            step = fraction * config.max_step
            if step <= 0.0:
                return 0.0
            qx, qy = px + unit_x * step, py + unit_y * step
            if any(
                math.hypot(qx - cx, qy - cy) > limit for cx, cy in children_xy
            ):
                continue
            for candidate, cx, cy in candidate_xy:
                if math.hypot(qx - cx, qy - cy) <= limit:
                    world.reparent_in_tree(sensor.sensor_id, candidate)
                    return step
        return 0.0

    def _best_parent_ladder(
        self,
        world: World,
        sensor: Sensor,
        direction: Vec2,
        candidates: List[int],
    ) -> float:
        """Seed-faithful candidate scan: one full step ladder per candidate.

        Kept as the reference/baseline path (``vectorized=False``); the
        fraction-outer scan above returns the same (step, parent) choice.
        """
        config = world.config
        children_motions = [
            NeighborMotion.stationary(world.sensor(c).position)
            for c in world.tree.children_of(sensor.sensor_id)
        ]
        best_step = 0.0
        best_parent: Optional[int] = None
        for candidate in candidates:
            parent_pos = (
                world.base_station
                if candidate == BASE_STATION_ID
                else world.sensor(candidate).position
            )
            required = children_motions + [NeighborMotion.stationary(parent_pos)]
            step = max_valid_step(
                sensor.position,
                direction,
                config.max_step,
                required,
                config.communication_range,
            )
            if step > best_step:
                best_step = step
                best_parent = candidate
        if best_parent is not None and best_step > 0.0:
            world.reparent_in_tree(sensor.sensor_id, best_parent)
            return best_step
        return 0.0

    # ------------------------------------------------------------------
    # Convergence
    # ------------------------------------------------------------------
    def has_converged(self, world: World) -> bool:
        """CPVF does not converge reliably (Section 4.4); run the horizon."""
        return False
