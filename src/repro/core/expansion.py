"""Expansion-point discovery for FLOOR (Section 5.5.1).

A fixed sensor expands coverage by locating *expansion points* (EPs) on its
*expansion circle* — the circle of radius ``min(rc, rs)`` centred at its
position — and inviting movable sensors to relocate there.  Three kinds of
expansion are defined, in decreasing priority:

* **FLG** (floor-line-guided): the sensor finds the portion of its floor
  line inside its sensing range, takes the endpoint farthest from the y axis
  as the *frontier point*, and (if that point is not already covered) places
  the EP where its expansion circle crosses the segment toward the frontier.
* **BLG** (boundary-line-guided): the same construction applied to the
  field/obstacle boundary pieces visible in the sensing range, with frontier
  points obtained by walking the boundary with the left-hand rule.
* **IFLG** (inter-floor-line-guided): fills coverage holes between two
  neighbouring fixed sensors of the same floor and the inter-floor line,
  using the intersection points of their expansion circles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import IntEnum
from typing import List, Optional, Sequence

from ..field import Field
from ..geometry import Circle, Segment, Vec2, circle_circle_intersections
from .floors import FloorGeometry
from .headers import FloorRegistry

__all__ = ["ExpansionKind", "ExpansionPoint", "ExpansionPlanner"]


class ExpansionKind(IntEnum):
    """Expansion types, ordered so that a smaller value means higher priority."""

    FLG = 0
    BLG = 1
    IFLG = 2


@dataclass(frozen=True)
class ExpansionPoint:
    """A candidate location for a movable sensor, owned by a fixed sensor."""

    position: Vec2
    kind: ExpansionKind
    owner_id: int

    def priority_key(self) -> tuple:
        """Sort key: priority first, then x (frontier-most last to break ties)."""
        return (int(self.kind), self.position.x, self.position.y)


@dataclass
class ExpansionPlanner:
    """Finds expansion points for fixed sensors of the FLOOR scheme."""

    field: Field
    floors: FloorGeometry
    registry: FloorRegistry
    sensing_range: float
    expansion_radius: float

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def expansion_points(
        self, owner_id: int, position: Vec2
    ) -> List[ExpansionPoint]:
        """All currently uncovered expansion points of one fixed sensor.

        The caller is responsible for accounting the coverage-query message
        cost; the planner only asks the registry.
        """
        points: List[ExpansionPoint] = []
        points.extend(self._flg_points(owner_id, position))
        points.extend(self._blg_points(owner_id, position))
        points.extend(self._iflg_points(owner_id, position))
        points.sort(key=lambda ep: ep.priority_key())
        return points

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _ep_toward(self, position: Vec2, frontier: Vec2) -> Optional[Vec2]:
        """The EP on the expansion circle toward a frontier point."""
        direction = position.towards(frontier)
        if direction.norm() == 0.0:
            return None
        distance = min(self.expansion_radius, position.distance_to(frontier))
        candidate = position + direction * distance
        candidate = self.field.clamp(candidate)
        if not self.field.is_free(candidate):
            candidate = self.field.nearest_free(candidate)
        if candidate.distance_to(position) < 1e-6:
            return None
        return candidate

    def _is_uncovered(self, point: Vec2, exclude: Sequence[int]) -> bool:
        """Whether the registry reports ``point`` as uncovered."""
        covered, _ = self.registry.is_point_covered(
            point, self.sensing_range, exclude=exclude
        )
        return not covered

    # ------------------------------------------------------------------
    # FLG expansion
    # ------------------------------------------------------------------
    def _flg_points(self, owner_id: int, position: Vec2) -> List[ExpansionPoint]:
        sensing_disk = Circle(position, self.sensing_range)
        floor_index = self.floors.floor_index(position.y)
        floor_segment = self.floors.floor_line_segment(floor_index)
        covered_piece = sensing_disk.clip_segment(floor_segment)
        if covered_piece is None or covered_piece.length() <= 1e-9:
            return []
        # Frontier points: the endpoints of the covered floor-line piece.  The
        # paper prefers the endpoint farthest from the y axis (largest x); the
        # other endpoint is also examined so that floors seeded in the middle
        # of the field (a clustered start) can grow toward the y axis and
        # reach the boundary, where BLG expansion takes over.
        endpoints = [covered_piece.a, covered_piece.b]
        endpoints.sort(key=lambda p: p.x, reverse=True)
        points: List[ExpansionPoint] = []
        for frontier in endpoints:
            if not self.field.is_free(frontier):
                continue
            if not self._is_uncovered(frontier, exclude=[owner_id]):
                continue
            ep = self._ep_toward(position, frontier)
            if ep is not None and self._is_uncovered(ep, exclude=[owner_id]):
                points.append(ExpansionPoint(ep, ExpansionKind.FLG, owner_id))
        return points

    # ------------------------------------------------------------------
    # BLG expansion
    # ------------------------------------------------------------------
    def _blg_points(self, owner_id: int, position: Vec2) -> List[ExpansionPoint]:
        sensing_disk = Circle(position, self.sensing_range)
        visible = self.field.boundary_segments_within(sensing_disk)
        points: List[ExpansionPoint] = []
        for segment in visible:
            for frontier in self._boundary_frontier_points(segment, sensing_disk):
                if not self.field.is_free(frontier):
                    frontier = self.field.nearest_free(frontier)
                if not self._is_uncovered(frontier, exclude=[owner_id]):
                    continue
                ep = self._ep_toward(position, frontier)
                if ep is not None and self._is_uncovered(ep, exclude=[owner_id]):
                    points.append(ExpansionPoint(ep, ExpansionKind.BLG, owner_id))
        return points

    @staticmethod
    def _boundary_frontier_points(
        segment: Segment, sensing_disk: Circle
    ) -> List[Vec2]:
        """Frontier candidates on a visible boundary piece.

        Walking the boundary with the left-hand rule until leaving the
        sensing circle ends at one of the clipped piece's endpoints, so both
        endpoints are returned (the uncovered one(s) become frontiers).
        """
        return [segment.a, segment.b]

    # ------------------------------------------------------------------
    # IFLG expansion
    # ------------------------------------------------------------------
    def _iflg_points(self, owner_id: int, position: Vec2) -> List[ExpansionPoint]:
        neighbors = self.registry.neighbors_on_floor(
            owner_id, 2.0 * self.expansion_radius
        )
        if not neighbors:
            return []
        floor_index = self.floors.floor_index(position.y)
        inter_lines = [
            line
            for line in (
                self.floors.inter_floor_line_above(floor_index),
                self.floors.inter_floor_line_below(floor_index),
            )
            if line is not None
        ]
        if not inter_lines:
            return []
        my_circle = Circle(position, self.expansion_radius)
        points: List[ExpansionPoint] = []
        for record in neighbors:
            other_circle = Circle(record.position, self.expansion_radius)
            crossings = circle_circle_intersections(my_circle, other_circle)
            midpoint_x = (position.x + record.position.x) / 2.0
            for crossing in crossings:
                # Keep only the intersection lying toward an inter-floor line
                # (the side where a hole between the two sensors and that
                # line could exist).
                hole_lines = [
                    line
                    for line in inter_lines
                    if abs(crossing.y - position.y) > 1e-9
                    and (crossing.y - position.y) * (line - position.y) > 0
                ]
                if not hole_lines:
                    continue
                if not self.field.is_free(crossing):
                    continue
                # There is a hole only if the point of the inter-floor line
                # midway between the two sensors is not covered by anyone.
                hole_probe = Vec2(midpoint_x, hole_lines[0])
                if not self.field.is_free(hole_probe):
                    continue
                if not self._is_uncovered(hole_probe, exclude=[]):
                    continue
                # The EP itself must not already host (or be promised to)
                # another node.
                if self._is_uncovered(
                    crossing, exclude=[owner_id, record.node_id]
                ):
                    points.append(
                        ExpansionPoint(crossing, ExpansionKind.IFLG, owner_id)
                    )
        return points
