"""The invitation protocol of FLOOR (Section 5.5.2 / Algorithm 2).

Fixed sensors that found an uncovered expansion point advertise it with an
``Invitation`` message that performs a TTL-bounded random walk through the
connected network.  Movable sensors collect the invitations they happen to
receive, pick the highest-priority one (smallest Euclidean distance breaking
ties), and answer with ``AcceptInvitation``; the inviter acknowledges the
first acceptance, installs a *virtual fixed node* at the EP so other
searches treat it as covered, and updates its ancestors' location records.

The period-synchronous simulator resolves one invitation round per period:
each advertised EP performs its random walk (every connected sensor is
reached with probability ``TTL / N_connected``, the expected reach of a
uniform random walk of ``TTL`` hops), the reached movable sensors choose
among the offers they saw, and conflicts are resolved first-come
first-served exactly as the acknowledgement rule does.  All message costs —
``Invitation`` walks, acceptances, acknowledgements and location updates —
are charged to the routing model so the Table 1 reproduction sees the same
traffic a distributed run would generate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..network import ConnectivityTree, MessageType, RoutingCostModel
from ..network.walks import TreeWalkIndex
from ..sensors import Sensor
from .expansion import ExpansionPoint

__all__ = ["InvitationAssignment", "InvitationProtocol"]


@dataclass(frozen=True)
class InvitationAssignment:
    """A movable sensor accepted an invitation to an expansion point."""

    movable_id: int
    expansion_point: ExpansionPoint


@dataclass
class InvitationProtocol:
    """Runs one invitation round per simulation period."""

    routing: RoutingCostModel
    ttl: int
    rng: random.Random
    #: Evaluate a round's tree routes (acceptances + acknowledgements)
    #: in one level-synchronous batch over flattened parent/depth arrays
    #: instead of one Python chain walk per message.  The hop counts are
    #: identical to the scalar walk (pinned by
    #: ``tests/network/test_tree_walks.py``); ``False`` restores the
    #: per-message walk.
    batch_walks: bool = True
    _walk_cache: Optional[tuple] = field(default=None, init=False, repr=False)

    # ------------------------------------------------------------------
    # One round
    # ------------------------------------------------------------------
    def run_round(
        self,
        expansion_points: Sequence[ExpansionPoint],
        movable_sensors: Sequence[Sensor],
        connected_count: int,
        tree: ConnectivityTree,
        world=None,
    ) -> List[InvitationAssignment]:
        """Match advertised EPs with movable sensors for this period.

        Every EP is advertised (its random-walk cost is charged regardless
        of whether anyone answers, which is what dominates FLOOR's message
        overhead).  Returns the accepted assignments; each movable sensor
        and each EP appears at most once.

        ``world`` (optional) supplies the network-condition model.  Under
        a lossy network an invitation walk can die mid-walk (shrinking the
        reach of that EP's advertisement), an ``AcceptInvitation`` can be
        lost after its retry budget (the sensor simply tries again next
        round), and an ``Acknowledge`` can time out — the assignment is
        then cancelled before any relocation or registry slot is created.
        Without a world, or under the perfect network, the code path is
        the seed's, draw for draw.
        """
        if not expansion_points:
            return []

        net = world.network if world is not None else None
        lossy = net is not None and net.lossy

        # 1. Every advertised EP pays for its TTL-bounded random walk.  A
        #    lossy walk stops at its first dropped hop (the lost
        #    transmission itself is still charged); the surviving hop
        #    count shrinks that EP's advertisement reach below.
        if lossy:
            walk_hops: List[int] = []
            for index, ep in enumerate(expansion_points):
                hops = net.walk_hops(
                    world, ("floor.walk", index, ep.owner_id), self.ttl
                )
                walk_hops.append(hops)
                self.routing.record_random_walk(
                    min(self.ttl, hops + 1), MessageType.INVITATION
                )
        else:
            walk_hops = [self.ttl] * len(expansion_points)
            for _ in expansion_points:
                self.routing.record_random_walk(
                    self.ttl, MessageType.INVITATION
                )

        if not movable_sensors or connected_count <= 0:
            return []

        # 2. Determine which movable sensors each invitation reached.
        received: Dict[int, List[ExpansionPoint]] = {}
        for ep, hops in zip(expansion_points, walk_hops):
            reach_probability = min(1.0, hops / max(1, connected_count))
            for sensor in movable_sensors:
                if self.rng.random() <= reach_probability:
                    received.setdefault(sensor.sensor_id, []).append(ep)

        # 3. Each movable sensor picks its best offer and tries to accept it.
        movable_by_id = {s.sensor_id: s for s in movable_sensors}
        chosen: List[Tuple[int, ExpansionPoint]] = []
        for movable_id, offers in received.items():
            sensor = movable_by_id[movable_id]
            best = min(
                offers,
                key=lambda ep: (
                    int(ep.kind),
                    sensor.position.distance_to(ep.position),
                ),
            )
            chosen.append((movable_id, best))
        # All of the round's acceptance routes evaluated in one batch
        # (the tree does not mutate within a round).
        route_hops = self._route_hops(
            tree, [(mid, ep.owner_id) for mid, ep in chosen]
        )
        acceptances: List[Tuple[int, ExpansionPoint, int]] = []
        for (movable_id, best), hops in zip(chosen, route_hops):
            # AcceptInvitation travels back to the inviter over the tree;
            # every retry re-sends the whole route.
            attempts, delivered = 1, True
            if lossy:
                delivered, attempts = net.exchange(
                    world,
                    ("floor.accept", movable_id, best.owner_id),
                    max(1, hops),
                )
            self.routing.record_tree_unicast(
                tree, movable_id, best.owner_id,
                MessageType.ACCEPT_INVITATION, attempts=attempts, hops=hops,
            )
            if delivered:
                acceptances.append((movable_id, best, hops))

        # 4. Inviters acknowledge the first acceptance per EP; later ones are
        #    rejected (their senders will simply try again next period).
        assignments: List[InvitationAssignment] = []
        taken_eps: set = set()
        assigned_sensors: set = set()
        # Deterministic processing order: by EP priority, then sensor id.
        acceptances.sort(
            key=lambda item: (item[1].priority_key(), item[0])
        )
        for movable_id, ep, hops in acceptances:
            ep_key = (ep.owner_id, round(ep.position.x, 6), round(ep.position.y, 6))
            # The acknowledgement retraces the acceptance route in the
            # opposite direction; tree routes are symmetric and the tree
            # is unchanged since step 3, so the hop count carries over.
            attempts, delivered = 1, True
            if lossy:
                delivered, attempts = net.exchange(
                    world,
                    ("floor.ack", movable_id, ep.owner_id),
                    max(1, hops),
                )
            self.routing.record_tree_unicast(
                tree, ep.owner_id, movable_id,
                MessageType.ACKNOWLEDGE, attempts=attempts, hops=hops,
            )
            if not delivered:
                # Acknowledgement timed out: the movable sensor never
                # learns it was chosen, so no relocation starts, the EP
                # stays available and no registry slot is consumed.
                continue
            if ep_key in taken_eps or movable_id in assigned_sensors:
                continue
            taken_eps.add(ep_key)
            assigned_sensors.add(movable_id)
            assignments.append(InvitationAssignment(movable_id, ep))
            # The inviter installs a virtual fixed node and updates its
            # ancestors' location information up to the root.
            self.routing.record_to_base_station(
                tree, ep.owner_id, MessageType.LOCATION_UPDATE
            )
        return assignments

    # ------------------------------------------------------------------
    # Batched route evaluation
    # ------------------------------------------------------------------
    def _route_hops(
        self, tree: ConnectivityTree, pairs: List[Tuple[int, int]]
    ) -> List[int]:
        """Tree route hops for many ``(source, destination)`` pairs.

        Uses the level-synchronous :class:`TreeWalkIndex` (cached per
        ``tree.version``) when batching is enabled and the tree's id
        domain is flattenable; otherwise walks each route with the
        scalar :meth:`RoutingCostModel.tree_route_hops`.  Both paths
        return identical hop counts.
        """
        if not pairs:
            return []
        index = self._walk_index(tree) if self.batch_walks else None
        if index is None:
            return [
                self.routing.tree_route_hops(tree, src, dst)
                for src, dst in pairs
            ]
        return index.route_hops(
            [src for src, _ in pairs], [dst for _, dst in pairs]
        ).tolist()

    def _walk_index(self, tree: ConnectivityTree) -> Optional[TreeWalkIndex]:
        cached = self._walk_cache
        if (
            cached is not None
            and cached[0] is tree
            and cached[1] == tree.version
        ):
            index = cached[2]
        else:
            index = TreeWalkIndex(tree)
            self._walk_cache = (tree, tree.version, index)
        return None if index.degenerate else index
