"""Floor-header registry and coverage-status queries (Section 5.4).

Each floor has a *header node* — the fixed node with the smallest
x coordinate on that floor — which records the locations of the fixed nodes
on its floor in a compact run-length form.  When a sensor needs to know
whether a point beyond its own sensing range is already covered, it first
asks its direct neighbours and otherwise sends a query to the header nodes
of the floors that could contain a covering sensor.

The registry below is the centralised bookkeeping equivalent: it stores the
fixed (and virtual, i.e. place-holding) node positions per floor, answers
point-coverage queries, and reports which floor a node belongs to so the
scheme can account the query / response message costs on the tree.

The coverage and same-floor-neighbour queries are the hot loop of FLOOR's
phase-3 expansion search (every active searcher probes several candidate
points per period, each probe scanning the records of every floor in
range), so by default they are served from a :class:`~repro.spatial.index.
SpatialIndex` rebuilt lazily whenever the records change.  The exhaustive
scan remains available behind ``use_spatial_index=False`` and is pinned
against the indexed path by randomized parity tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..geometry import Vec2
from ..spatial import SpatialIndex
from .floors import FloorGeometry

__all__ = ["FloorRegistry", "FloorRecord"]


@dataclass(frozen=True)
class FloorRecord:
    """One fixed (or virtual place-holding) node registered on a floor."""

    node_id: int
    position: Vec2
    virtual: bool = False


@dataclass
class FloorRegistry:
    """Per-floor record of fixed and virtual fixed nodes."""

    floors: FloorGeometry
    _records: Dict[int, Dict[int, FloorRecord]] = field(default_factory=dict)
    #: Serve spatial queries from a lazily rebuilt :class:`SpatialIndex`;
    #: ``False`` restores the exhaustive per-floor scan (parity-tested).
    use_spatial_index: bool = True
    _index: Optional[SpatialIndex] = field(
        default=None, init=False, repr=False, compare=False
    )
    #: ``(floor_index, record)`` in index order, parallel to the index store.
    _index_records: List[Tuple[int, FloorRecord]] = field(
        default_factory=list, init=False, repr=False, compare=False
    )
    _index_dirty: bool = field(default=True, init=False, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, node_id: int, position: Vec2, virtual: bool = False) -> int:
        """Register a fixed node (or a virtual place-holder) at ``position``.

        Returns the floor index the node was filed under.  Re-registering an
        id overwrites its previous record (e.g. a virtual place-holder being
        replaced by the real sensor on arrival), even when the new position
        lies on a different floor.
        """
        self.unregister(node_id)
        floor_index = self.floors.floor_index(position.y)
        self._records.setdefault(floor_index, {})[node_id] = FloorRecord(
            node_id=node_id, position=position, virtual=virtual
        )
        self._index_dirty = True
        return floor_index

    def unregister(self, node_id: int) -> None:
        """Remove a node from whatever floor it was registered on."""
        for floor_records in self._records.values():
            if floor_records.pop(node_id, None) is not None:
                self._index_dirty = True

    def promote_virtual(self, node_id: int, position: Vec2) -> None:
        """Replace a virtual place-holder by the real arrived sensor."""
        self.unregister(node_id)
        self.register(node_id, position, virtual=False)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def records_on_floor(self, floor_index: int) -> List[FloorRecord]:
        """All records registered on a floor."""
        return list(self._records.get(floor_index, {}).values())

    def all_records(self) -> List[FloorRecord]:
        """All records across all floors."""
        result: List[FloorRecord] = []
        for floor_records in self._records.values():
            result.extend(floor_records.values())
        return result

    def floor_of(self, node_id: int) -> Optional[int]:
        """Floor index a node is registered on (``None`` when absent)."""
        for floor_index, floor_records in self._records.items():
            if node_id in floor_records:
                return floor_index
        return None

    def header_of_floor(self, floor_index: int) -> Optional[FloorRecord]:
        """The floor header: the registered node with the smallest x.

        Ties are broken by node id, as in the paper.
        """
        records = self.records_on_floor(floor_index)
        if not records:
            return None
        return min(records, key=lambda r: (r.position.x, r.node_id))

    def _ensure_index(self) -> SpatialIndex:
        """The spatial index over all records, rebuilt when records changed.

        The store is laid out floor by floor in registration order, so
        ascending index order restricted to one floor equals that floor's
        dict iteration order — the indexed queries therefore return records
        in exactly the order the exhaustive scan visits them.
        """
        if self._index is not None and not self._index_dirty:
            return self._index
        self._index_records = [
            (floor_index, record)
            for floor_index, floor_records in self._records.items()
            for record in floor_records.values()
        ]
        index = SpatialIndex(cell_size=max(self.floors.floor_height, 1e-9))
        index.build([(r.position.x, r.position.y) for _, r in self._index_records])
        self._index = index
        self._index_dirty = False
        return index

    def is_point_covered(
        self,
        point: Vec2,
        sensing_range: float,
        exclude: Sequence[int] = (),
    ) -> Tuple[bool, List[int]]:
        """Whether ``point`` is covered by any registered node.

        Returns ``(covered, floors_queried)`` where ``floors_queried`` lists
        the floor indices a distributed implementation would have had to ask
        (used by the scheme to account query/response messages).  Nodes in
        ``exclude`` (typically the asking sensor itself) are ignored.
        """
        excluded = set(exclude)
        floors_to_ask = self.floors.floors_possibly_covering(point, sensing_range)
        if self.use_spatial_index:
            index = self._ensure_index()
            askable = set(floors_to_ask)
            for i in index.query_radius(point, sensing_range + 1e-9):
                floor_index, record = self._index_records[i]
                if record.node_id in excluded or floor_index not in askable:
                    continue
                return True, floors_to_ask
            return False, floors_to_ask
        for floor_index in floors_to_ask:
            for record in self.records_on_floor(floor_index):
                if record.node_id in excluded:
                    continue
                if record.position.distance_to(point) <= sensing_range + 1e-9:
                    return True, floors_to_ask
        return False, floors_to_ask

    def neighbors_on_floor(
        self, node_id: int, radius: float
    ) -> List[FloorRecord]:
        """Registered nodes on the same floor within ``radius`` of a node."""
        floor_index = self.floor_of(node_id)
        if floor_index is None:
            return []
        records = self._records.get(floor_index, {})
        me = records.get(node_id)
        if me is None:
            return []
        if self.use_spatial_index:
            index = self._ensure_index()
            result: List[FloorRecord] = []
            for i in index.query_radius(me.position, radius + 1e-9):
                hit_floor, record = self._index_records[i]
                if hit_floor == floor_index and record.node_id != node_id:
                    result.append(record)
            return result
        return [
            r
            for r in records.values()
            if r.node_id != node_id
            and r.position.distance_to(me.position) <= radius + 1e-9
        ]

    def count(self, include_virtual: bool = True) -> int:
        """Number of registered nodes."""
        return sum(
            1
            for r in self.all_records()
            if include_virtual or not r.virtual
        )

    def compact_summary(self, floor_index: int) -> List[Tuple[float, float]]:
        """Run-length summary of x-intervals occupied on a floor.

        Mirrors the paper's observation that a floor header only needs to
        record the first and last x coordinates of each contiguous run of
        regularly spaced nodes.  Two consecutive nodes belong to the same
        run when their spacing does not exceed twice the sensing range.
        """
        records = sorted(
            self.records_on_floor(floor_index), key=lambda r: r.position.x
        )
        if not records:
            return []
        max_gap = 2.0 * self.floors.sensing_range
        runs: List[Tuple[float, float]] = []
        run_start = records[0].position.x
        previous = records[0].position.x
        for record in records[1:]:
            x = record.position.x
            if x - previous > max_gap:
                runs.append((run_start, previous))
                run_start = x
            previous = x
        runs.append((run_start, previous))
        return runs
