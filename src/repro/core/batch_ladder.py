"""Conflict-free batched CPVF motion: tree-level coloring + array ladder.

The CPVF coverage stage decides, for every connected sensor, a force
direction and the largest step size that keeps the links to its tree
parent and children alive (Section 4.2).  The scalar scheme walks the
sensors one by one; the paper's semantics, however, are *simultaneous* —
all sensors move at once under the parent/child range invariant.  This
module makes that simultaneity an execution strategy:

* :func:`tree_level_colors` assigns every tree member the parity of its
  BFS depth.  Parent-child edges only ever cross adjacent levels, so two
  sensors of the same color share no required link — a whole color class
  can evaluate its step ladders against frozen link positions and commit
  in one batch without ever invalidating another class member's decision.
* :class:`TreeSchedule` packs the coloring together with the flat
  (CSR-style) required-link structure derived from the tree, cached per
  ``ConnectivityTree.version`` so an unchanged tree costs nothing.
* :func:`batched_ladder_steps` evaluates the connectivity-preserving
  step ladder of :func:`repro.core.connectivity.max_valid_step_points`
  for an entire color class in numpy — no per-sensor ``Vec2`` or list
  allocation — returning, sensor for sensor, the same ladder decision the
  scalar helper makes on the same (frozen) link positions.

:class:`repro.core.cpvf.CPVFScheme` threads these through its
``mode="batched"`` execution path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..geometry import EPS
from ..network import BASE_STATION_ID
from .connectivity import STEP_FRACTIONS

__all__ = ["tree_level_colors", "TreeSchedule", "batched_ladder_steps"]


def tree_level_colors(tree, num_sensors: int) -> np.ndarray:
    """BFS-depth parity of every sensor in the connectivity tree.

    Returns an ``(num_sensors,)`` int8 array: ``0`` for sensors at even
    depth below the base station, ``1`` for odd depth, ``-1`` for sensors
    outside the tree (or in a detached subtree not reachable from the
    root).  Every tree edge joins a node at depth ``d`` to one at
    ``d + 1``, so no two same-colored sensors are ever parent and child —
    the conflict-freedom invariant the batched scheduler relies on
    (pinned by ``tests/core/test_batch_ladder.py``).
    """
    colors = np.full(num_sensors, -1, dtype=np.int8)
    children = tree.children
    seen = {BASE_STATION_ID}
    frontier = [BASE_STATION_ID]
    depth = 0
    while frontier:
        depth += 1
        parity = depth % 2
        next_frontier = []
        for node in frontier:
            for child in children.get(node, ()):
                if child in seen:
                    continue
                seen.add(child)
                if 0 <= child < num_sensors:
                    colors[child] = parity
                next_frontier.append(child)
        frontier = next_frontier
    return colors


@dataclass
class TreeSchedule:
    """The batched scheduler's view of one connectivity-tree snapshot.

    ``colors`` holds the per-sensor BFS parity; the required links of
    sensor ``i`` (its parent, then its children — the exact set
    ``CPVFScheme._tree_link_positions`` preserves) are the node ids
    ``link_nodes[link_offsets[i]:link_offsets[i + 1]]``, where
    :data:`~repro.network.BASE_STATION_ID` stands for the base station.
    Built once per ``ConnectivityTree.version``.
    """

    version: int
    colors: np.ndarray
    link_offsets: np.ndarray
    link_nodes: np.ndarray

    @staticmethod
    def build(tree, num_sensors: int) -> "TreeSchedule":
        """Derive the coloring and flat link structure from a tree."""
        colors = tree_level_colors(tree, num_sensors)
        members = [
            sid for sid in tree.parent if 0 <= sid < num_sensors
        ]
        if not members:
            return TreeSchedule(
                version=tree.version,
                colors=colors,
                link_offsets=np.zeros(num_sensors + 1, dtype=np.intp),
                link_nodes=np.empty(0, dtype=np.int64),
            )
        ids = np.fromiter(members, dtype=np.int64, count=len(members))
        parents = np.fromiter(
            (tree.parent[sid] for sid in members),
            dtype=np.int64,
            count=len(members),
        )
        # Every tree edge yields two required links: the child preserves
        # the parent, and (when the parent is a sensor) the parent
        # preserves the child.
        child_edges = parents >= 0
        owners = np.concatenate([ids, parents[child_edges]])
        others = np.concatenate([parents, ids[child_edges]])
        counts = np.bincount(owners, minlength=num_sensors)
        order = np.argsort(owners, kind="stable")
        offsets = np.zeros(num_sensors + 1, dtype=np.intp)
        np.cumsum(counts, out=offsets[1:])
        return TreeSchedule(
            version=tree.version,
            colors=colors,
            link_offsets=offsets,
            link_nodes=others[order],
        )

    def links_for(self, idx: np.ndarray):
        """Flat link slice for a batch of sensor indices.

        Returns ``(pair_owner, nodes)``: ``nodes`` concatenates the link
        node ids of every sensor in ``idx`` and ``pair_owner[k]`` is the
        position within ``idx`` that owns ``nodes[k]``.
        """
        starts = self.link_offsets[idx]
        ends = self.link_offsets[idx + 1]
        lengths = ends - starts
        total = int(lengths.sum())
        if total == 0:
            return (
                np.empty(0, dtype=np.intp),
                np.empty(0, dtype=np.int64),
            )
        pair_owner = np.repeat(np.arange(len(idx), dtype=np.intp), lengths)
        pos = (
            np.arange(total, dtype=np.intp)
            - np.repeat(np.cumsum(lengths) - lengths, lengths)
            + np.repeat(starts, lengths)
        )
        return pair_owner, self.link_nodes[pos]


def batched_ladder_steps(
    px: np.ndarray,
    py: np.ndarray,
    ux: np.ndarray,
    uy: np.ndarray,
    max_step: float,
    communication_range: float,
    pair_owner: np.ndarray,
    link_x: np.ndarray,
    link_y: np.ndarray,
    fractions: Sequence[float] = STEP_FRACTIONS,
) -> np.ndarray:
    """Step ladder of an entire color class in one numpy pass.

    ``px, py`` are the class members' positions, ``ux, uy`` their force
    directions (normalised here, exactly like the scalar ladder), and
    ``link_x[k], link_y[k]`` the frozen position of the ``k``-th required
    link, owned by member ``pair_owner[k]``.
    Returns the per-member step size: the largest candidate fraction of
    ``max_step`` whose endpoint keeps every required link within
    ``communication_range`` (with the ladder's usual ``1e-9`` slack), or
    ``0`` when a link is already out of range / no candidate is valid —
    exactly the decision :func:`~repro.core.connectivity.
    max_valid_step_points` makes per sensor on the same inputs.

    A sensor with no recorded links (not yet in the tree) is
    unconstrained and receives the full first fraction, like the scalar
    ladder.
    """
    count = len(px)
    steps = np.zeros(count, dtype=float)
    if count == 0 or max_step <= 0.0:
        return steps
    norm = np.hypot(ux, uy)
    safe_norm = np.where(norm > EPS, norm, 1.0)
    unit_x = ux / safe_norm
    unit_y = uy / safe_norm
    limit = communication_range + 1e-9
    owner_px = px[pair_owner]
    owner_py = py[pair_owner]
    # Condition 1: a required link already out of range invalidates every
    # candidate step, including zero.
    start_bad = np.hypot(owner_px - link_x, owner_py - link_y) > limit
    feasible = (norm > EPS) & (
        np.bincount(pair_owner, weights=start_bad, minlength=count) == 0
    )
    owner_ux = unit_x[pair_owner]
    owner_uy = unit_y[pair_owner]
    chosen = np.zeros(count, dtype=bool)
    for fraction in fractions:
        step = fraction * max_step
        if step <= 0.0:
            break
        if chosen.all():
            break
        qx = owner_px + owner_ux * step
        qy = owner_py + owner_uy * step
        bad = np.hypot(qx - link_x, qy - link_y) > limit
        valid = np.bincount(pair_owner, weights=bad, minlength=count) == 0
        newly = valid & ~chosen
        steps[newly] = step
        chosen |= newly
    return np.where(feasible, steps, 0.0)
