"""Oscillation-avoidance techniques for CPVF (Section 6.3).

Virtual-force deployments tend to oscillate: sensors move back and forth
under constantly changing neighbour forces, wasting energy without
improving coverage.  The paper studies two countermeasures parameterised by
an *oscillation avoidance factor* ``delta``:

* **one-step avoidance** — cancel the next step when its size would be
  smaller than ``V*T / delta`` (suppress small perturbations);
* **two-step avoidance** — cancel the next step when the sensor's position
  at the end of the next step would be within ``V*T / delta`` of its
  position at the end of the *previous* step (suppress back-and-forth
  moves).

Figure 12 shows the resulting trade-off between moving distance and
coverage, which :mod:`repro.experiments.fig12` reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..geometry import Vec2

__all__ = ["OscillationMode", "OscillationAvoidance"]


class OscillationMode(Enum):
    """Which of the two avoidance rules is applied."""

    ONE_STEP = "one-step"
    TWO_STEP = "two-step"

    @staticmethod
    def from_string(value: str) -> "OscillationMode":
        """Parse a mode name (accepts the paper's hyphenated spelling)."""
        normalized = value.strip().lower().replace("_", "-")
        for mode in OscillationMode:
            if mode.value == normalized:
                return mode
        raise ValueError(f"unknown oscillation mode: {value!r}")


@dataclass
class OscillationAvoidance:
    """Decides whether a planned CPVF step should be cancelled.

    ``delta`` is the oscillation avoidance factor: larger values cancel
    fewer steps (the threshold ``V*T / delta`` shrinks).  ``delta=None``
    disables avoidance entirely.
    """

    max_step: float
    delta: Optional[float] = None
    mode: OscillationMode = OscillationMode.ONE_STEP

    def threshold(self) -> float:
        """The cancellation threshold ``V*T / delta`` (zero when disabled)."""
        if self.delta is None or self.delta <= 0:
            return 0.0
        return self.max_step / self.delta

    def should_cancel(
        self,
        planned_step: float,
        current_position: Vec2,
        planned_end: Vec2,
        previous_position: Optional[Vec2],
    ) -> bool:
        """Whether the planned step should be cancelled.

        Parameters
        ----------
        planned_step:
            Size of the planned step.
        current_position:
            The sensor's position now (end of the previous step).
        planned_end:
            Where the planned step would put the sensor.
        previous_position:
            The sensor's position at the end of the step *before* the
            previous one (two-step mode compares against it).
        """
        thr = self.threshold()
        if thr <= 0.0:
            return False
        if self.mode is OscillationMode.ONE_STEP:
            return planned_step < thr
        # Two-step mode: compare the future location with the past location.
        if previous_position is None:
            return False
        return planned_end.distance_to(previous_position) < thr
