"""The FLOOR deployment scheme (Section 5).

FLOOR divides the field into floors of height ``2 * rs`` and grows coverage
like a vine over a framework of floor lines and field/obstacle boundaries.
The scheme runs in three phases:

1. **Achieving connectivity** (Section 5.2, Algorithm 1) — every
   disconnected sensor walks, via BUG2 with the right-hand rule and the
   lazy-movement strategy, through two intermediate destinations (the
   projection onto its nearest floor line, then the projection onto the
   y axis) toward the base station, stopping as soon as it comes within
   ``min(rc, 2*rs)`` of a connected node, which becomes its tree parent.
2. **Identifying movable sensors** (Section 5.3) — serialised over the
   tree, each sensor checks whether its children could be re-parented
   without creating loops and whether the area it covers exclusively is
   below a threshold; if both hold it is *movable*, otherwise *fixed*.
3. **Expanding coverage** (Section 5.5) — fixed sensors discover expansion
   points (FLG / BLG / IFLG), advertise them with TTL-bounded random-walk
   invitations, and movable sensors relocate to accepted expansion points
   (BUG2 with the left-hand rule), becoming fixed on arrival and searching
   for further expansion opportunities themselves.

Reproduction note: when an invitation is accepted the inviter installs a
*virtual fixed node* at the expansion point (as in Algorithm 2).  In this
implementation the virtual node also participates in expansion-point
discovery while the invited sensor is still in transit; without this, the
coverage frontier could only advance at the pace of one sensor-relocation
per hop, which does not fit the paper's 750-second horizon.  Coverage is
always measured from *physical* sensor positions, so the shortcut only
affects how early invitations for the next hop can be issued.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import chain
from typing import Dict, List, Optional, Set

from ..field import Field
from ..geometry import Vec2
from ..mobility import Bug2Path, Bug2Planner, Handedness
from ..network import BASE_STATION_ID, MessageType
from ..sensors import Sensor, SensorState
from ..sim import DeploymentScheme, World
from .expansion import ExpansionKind, ExpansionPlanner, ExpansionPoint
from .floors import FloorGeometry
from .headers import FloorRegistry
from .invitations import InvitationProtocol
from .lazy import LazyMovementController

__all__ = ["FloorScheme"]

#: Number of sample points used to estimate a sensor's exclusive coverage.
_EXCLUSIVE_COVERAGE_SAMPLES = 24

#: Virtual-node ids are offset so they never collide with sensor ids.
_VIRTUAL_ID_OFFSET = 1_000_000


class FloorScheme(DeploymentScheme):
    """Floor-based deployment."""

    name = "FLOOR"

    def __init__(
        self,
        invitation_ttl: Optional[int] = None,
        movable_exclusive_threshold: float = 0.4,
        phase2_deadline_fraction: float = 0.25,
        virtual_nodes_search: bool = True,
    ):
        """Create the scheme.

        Parameters
        ----------
        invitation_ttl:
            TTL of the invitation random walk; defaults to the simulation
            configuration's value (``0.2 * N`` unless overridden).
        movable_exclusive_threshold:
            A connected sensor is declared movable only when the fraction of
            its sensing disk it covers exclusively is below this threshold.
        phase2_deadline_fraction:
            Phase 2 starts when all sensors are connected or after this
            fraction of the simulation horizon, whichever comes first (the
            paper's "maximum arrival time" estimate).
        virtual_nodes_search:
            Whether virtual place-holding nodes participate in expansion-
            point discovery while the invited sensor is in transit (see the
            module docstring).
        """
        self._ttl_override = invitation_ttl
        self._movable_threshold = movable_exclusive_threshold
        self._phase2_deadline_fraction = phase2_deadline_fraction
        self._virtual_nodes_search = virtual_nodes_search

        self._floors: Optional[FloorGeometry] = None
        self._registry: Optional[FloorRegistry] = None
        self._planner_connect: Optional[Bug2Planner] = None
        self._planner_disperse: Optional[Bug2Planner] = None
        self._lazy: Optional[LazyMovementController] = None
        self._invitations: Optional[InvitationProtocol] = None
        self._expansion: Optional[ExpansionPlanner] = None

        self._phase: int = 1
        #: Fixed / virtual node ids still scanning for expansion points.
        self._active_searchers: Set[int] = set()
        #: Positions of virtual searcher nodes keyed by their registry id.
        self._virtual_positions: Dict[int, Vec2] = {}
        #: Relocating sensors: sensor id -> (target EP, inviter id).
        self._relocations: Dict[int, ExpansionPoint] = {}
        self._virtual_counter: int = 0
        #: Relocations granted but not yet started under network latency:
        #: ``(due_period, movable_id, ep)`` entries drained each period.
        self._deferred_starts: List[tuple] = []
        #: Movable sensors with a deferred start in flight (excluded from
        #: new invitation rounds until the start fires or is cancelled).
        self._pending_movables: Set[int] = set()

    # ------------------------------------------------------------------
    # Initialisation
    # ------------------------------------------------------------------
    def initialize(self, world: World) -> None:
        config = world.config
        self._floors = FloorGeometry.for_field(world.field, config.sensing_range)
        self._registry = FloorRegistry(self._floors)
        self._planner_connect = Bug2Planner(world.field, Handedness.RIGHT)
        self._planner_disperse = Bug2Planner(world.field, Handedness.LEFT)
        self._lazy = LazyMovementController(world.routing)
        ttl = (
            self._ttl_override
            if self._ttl_override is not None
            else config.effective_invitation_ttl()
        )
        self._invitations = InvitationProtocol(
            routing=world.routing, ttl=max(1, int(ttl)), rng=world.rng
        )
        self._expansion = ExpansionPlanner(
            field=world.field,
            floors=self._floors,
            registry=self._registry,
            sensing_range=config.sensing_range,
            expansion_radius=min(
                config.communication_range, config.sensing_range
            ),
        )
        self._phase = 1
        self._active_searchers.clear()
        self._virtual_positions.clear()
        self._relocations.clear()
        self._deferred_starts.clear()
        self._pending_movables.clear()

        self._bootstrap_connectivity(world)
        for sensor in world.sensors:
            if sensor.state is SensorState.DISCONNECTED:
                sensor.state = SensorState.MOVING_TO_CONNECT
                sensor.motion.follow(self._plan_connect_trajectory(world, sensor))

    def _bootstrap_connectivity(self, world: World) -> None:
        """Initial flood: the base station's connected component joins the tree."""
        # Served from the world's neighbor cache: the component, the table
        # and the base adjacency below share one spatial-index build.
        component = world.connected_component_of()
        table = world.neighbor_table()
        near_base = set(world.sensors_near_base_station())
        frontier: List[int] = []
        for sid in sorted(near_base):
            world.attach_to_tree(sid, BASE_STATION_ID)
            frontier.append(sid)
        attached = set(near_base)
        net = world.network
        retransmissions = 0
        while frontier:
            current = frontier.pop(0)
            for nb in table.get(current, []):
                if nb in attached or nb not in component:
                    continue
                if net.lossy:
                    # Flood edges retransmit with backoff up to the budget;
                    # nodes the flood misses re-join through phase 1.
                    delivered, attempts = net.exchange(
                        world, ("flood", current, nb), 1
                    )
                    retransmissions += attempts - 1
                    if not delivered:
                        continue
                world.attach_to_tree(nb, current)
                attached.add(nb)
                frontier.append(nb)
        world.routing.record_flood(len(attached) + retransmissions)

    def _plan_connect_trajectory(self, world: World, sensor: Sensor) -> Bug2Path:
        """Algorithm 1: the three-leg BUG2 trajectory toward the base station."""
        assert self._planner_connect is not None and self._floors is not None
        start = sensor.position
        floor_y = self._floors.nearest_floor_line(start.y)
        leg_targets = [
            Vec2(start.x, floor_y),
            Vec2(0.0, floor_y),
            world.base_station,
        ]
        waypoints: List[Vec2] = [start]
        reached = True
        current = start
        encounters = 0
        for target in leg_targets:
            leg = self._planner_connect.plan(current, target)
            encounters += leg.encounters
            # Skip the duplicated starting waypoint of each leg.
            waypoints.extend(leg.waypoints[1:])
            current = leg.waypoints[-1]
            reached = leg.reached_target
        return Bug2Path(waypoints, reached, encounters)

    # ------------------------------------------------------------------
    # Per-period execution
    # ------------------------------------------------------------------
    def step(self, world: World) -> None:
        assert self._lazy is not None
        # Protocol decisions read the table through the network model
        # (live pass-through by default, aged under staleness); coverage
        # and connectivity metrics stay on live state.
        table = world.protocol_neighbor_table()
        self._connect_reachable_sensors(world, table)
        self._advance_disconnected_sensors(world, table)

        if self._phase == 1 and self._phase2_should_start(world):
            self._identify_movable_sensors(world, table)
            self._phase = 3

        if self._phase == 3:
            # Sensors that only managed to connect after phase 2 ran are
            # classified on arrival: they volunteer as movable sensors.
            for sensor in world.sensors:
                if sensor.state is SensorState.CONNECTED:
                    sensor.state = SensorState.MOVABLE
            tel = world.telemetry
            self._start_due_relocations(world)
            with tel.span("floor.relocations"):
                self._advance_relocations(world)
            with tel.span("floor.expansion_round"):
                self._run_expansion_round(world)
            if tel.enabled:
                tel.gauge(
                    "floor.relocations_in_flight", len(self._relocations)
                )

    # -- Phase 1: achieving connectivity --------------------------------
    def _attach_distance(self, world: World) -> float:
        """Distance at which a connecting sensor stops next to its parent."""
        config = world.config
        return min(config.communication_range, 2.0 * config.sensing_range)

    def _connect_reachable_sensors(
        self, world: World, table: Dict[int, List[int]]
    ) -> None:
        attach_distance = self._attach_distance(world)
        newly_connected = True
        while newly_connected:
            newly_connected = False
            for sensor in world.sensors:
                if sensor.is_connected() or not sensor.is_alive():
                    continue
                parent_id = self._closest_connected_node(
                    world, sensor, table, attach_distance
                )
                if parent_id is None:
                    continue
                sensor.motion.stop()
                assert self._lazy is not None
                self._lazy.stop_waiting(sensor)
                world.attach_to_tree(sensor.sensor_id, parent_id)
                sensor.state = SensorState.CONNECTED
                # Arrival report up the tree and the ancestor-list response
                # back down (Section 5.3).
                world.routing.record_to_base_station(
                    world.tree, sensor.sensor_id, MessageType.ARRIVAL_REPORT
                )
                world.routing.record_from_base_station(
                    world.tree, sensor.sensor_id, MessageType.ANCESTOR_RESPONSE
                )
                newly_connected = True

    def _closest_connected_node(
        self,
        world: World,
        sensor: Sensor,
        table: Dict[int, List[int]],
        attach_distance: float,
    ) -> Optional[int]:
        best: Optional[int] = None
        best_dist = float("inf")
        base_dist = sensor.position.distance_to(world.base_station)
        if base_dist <= attach_distance:
            best, best_dist = BASE_STATION_ID, base_dist
        for nb_id in table.get(sensor.sensor_id, []):
            nb = world.sensor(nb_id)
            # Relocating sensors have (temporarily) left the tree and cannot
            # serve as attachment points.
            if not nb.is_connected() or nb_id not in world.tree:
                continue
            dist = sensor.position.distance_to(nb.position)
            if dist <= attach_distance and dist < best_dist:
                best, best_dist = nb_id, dist
        return best

    def _advance_disconnected_sensors(
        self, world: World, table: Dict[int, List[int]]
    ) -> None:
        assert self._lazy is not None
        for sensor in world.sensors:
            if sensor.is_connected() or not sensor.is_alive():
                continue
            neighbors = [
                world.sensor(n)
                for n in table.get(sensor.sensor_id, [])
                if not world.sensor(n).is_connected()
            ]
            self._lazy.advance_toward_connection(
                sensor,
                world.base_station,
                neighbors,
                lambda s=sensor: self._plan_connect_trajectory(world, s),
            )
            self._exit_obstacle(world, sensor)

    @staticmethod
    def _exit_obstacle(world: World, sensor: Sensor) -> None:
        """Obstacle-exit correction after one transit step.

        A BUG2 polyline keeps only ~0.5 m of clearance when rounding
        obstacle corners, so the arc-length interpolation between two
        pushed-out waypoints can dip into an obstacle's interior.  A sensor
        must never be observed (or end a run) inside an obstacle, so every
        transit step — connection walks and relocations alike — exits back
        into free space.
        """
        if not world.field.is_free(sensor.position):
            sensor.position = world.field.nearest_free(sensor.position)

    # -- Phase 2: identifying movable sensors ---------------------------
    def _phase2_should_start(self, world: World) -> bool:
        all_connected = all(
            s.is_connected() for s in world.sensors if s.is_alive()
        )
        deadline = int(
            self._phase2_deadline_fraction * world.config.max_periods
        )
        return all_connected or world.period_index >= deadline

    def _identify_movable_sensors(
        self, world: World, table: Dict[int, List[int]]
    ) -> None:
        """Classify every connected sensor as fixed or movable (Section 5.3)."""
        assert self._registry is not None
        # Serialise in breadth-first tree order, as the depth-first
        # coordination message of the paper would.
        order: List[int] = []
        frontier = sorted(world.tree.children_of(BASE_STATION_ID))
        seen = set(frontier)
        while frontier:
            current = frontier.pop(0)
            order.append(current)
            for child in sorted(world.tree.children_of(current)):
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)

        for sid in order:
            sensor = world.sensor(sid)
            if not sensor.is_connected():
                continue
            movable = self._children_can_be_rehomed(
                world, sensor, table
            ) and self._exclusive_coverage_is_low(world, sensor, table)
            if movable:
                sensor.state = SensorState.MOVABLE
            else:
                sensor.state = SensorState.FIXED
                self._registry.register(sid, sensor.position)
                self._active_searchers.add(sid)

        # Sensors that never connected stay out of phase 3 until they do;
        # when they connect later they are treated as movable volunteers.
        for sensor in world.sensors:
            if sensor.state is SensorState.CONNECTED:
                sensor.state = SensorState.MOVABLE

        # Expansion needs at least one anchored sensor to search for
        # expansion points.  In a dense clustered start it can happen that
        # every sensor's exclusive coverage is tiny and everyone volunteers
        # as movable; in that case the sensor closest to the base station
        # (the tree root's first hop) is kept fixed as the seed.
        if not self._active_searchers:
            candidates = [s for s in world.sensors if s.is_connected()]
            if candidates:
                seed = min(
                    candidates,
                    key=lambda s: s.position.distance_to(world.base_station),
                )
                seed.state = SensorState.FIXED
                self._registry.register(seed.sensor_id, seed.position)
                self._active_searchers.add(seed.sensor_id)

    def _children_can_be_rehomed(
        self, world: World, sensor: Sensor, table: Dict[int, List[int]]
    ) -> bool:
        """Whether every child could attach to another connected neighbour."""
        children = world.tree.children_of(sensor.sensor_id)
        if not children:
            return True
        for child in children:
            child_sensor = world.sensor(child)
            subtree = world.tree.subtree_of(child)
            found = False
            base_dist = child_sensor.position.distance_to(world.base_station)
            if base_dist <= world.config.communication_range:
                found = True
            if not found:
                for candidate in table.get(child, []):
                    if candidate == sensor.sensor_id or candidate in subtree:
                        continue
                    if world.sensor(candidate).is_connected():
                        found = True
                        break
            if not found:
                return False
        return True

    def _exclusive_coverage_is_low(
        self, world: World, sensor: Sensor, table: Dict[int, List[int]]
    ) -> bool:
        """Estimate the exclusively covered fraction of the sensing disk."""
        neighbors = [
            world.sensor(nid)
            for nid in table.get(sensor.sensor_id, [])
            if world.sensor(nid).is_connected()
        ]
        rs = sensor.sensing_range
        exclusive = 0
        samples = 0
        for k in range(_EXCLUSIVE_COVERAGE_SAMPLES):
            # Deterministic low-discrepancy samples: spiral inside the disk.
            fraction = (k + 0.5) / _EXCLUSIVE_COVERAGE_SAMPLES
            radius = rs * math.sqrt(fraction)
            angle = 2.0 * math.pi * (k * 0.61803398875 % 1.0)
            point = sensor.position + Vec2.from_polar(radius, angle)
            if not world.field.is_free(point):
                continue
            samples += 1
            if not any(nb.covers(point) for nb in neighbors):
                exclusive += 1
        if samples == 0:
            return True
        return (exclusive / samples) < self._movable_threshold

    # -- Phase 3: expanding coverage ------------------------------------
    def _start_due_relocations(self, world: World) -> None:
        """Fire deferred relocation starts whose latency has elapsed.

        Under network latency an acknowledged invitation does not reach
        the movable sensor instantly; the start is parked and fires here
        once its due period arrives.  A sensor that lost its movable
        status in the meantime (failed, re-dispatched by churn) simply
        drops the grant.
        """
        if not self._deferred_starts:
            return
        period = world.period_index
        due = [entry for entry in self._deferred_starts if entry[0] <= period]
        if not due:
            return
        self._deferred_starts = [
            entry for entry in self._deferred_starts if entry[0] > period
        ]
        for _, movable_id, ep in due:
            self._pending_movables.discard(movable_id)
            sensor = world.sensor(movable_id)
            if (
                sensor.is_alive()
                and sensor.state is SensorState.MOVABLE
                and movable_id not in self._relocations
            ):
                self._start_relocation(world, movable_id, ep)

    def _advance_relocations(self, world: World) -> None:
        assert self._registry is not None
        arrived: List[int] = []
        for sensor_id, ep in self._relocations.items():
            sensor = world.sensor(sensor_id)
            sensor.motion.advance_along_path()
            self._exit_obstacle(world, sensor)
            if not sensor.motion.has_path or sensor.position.distance_to(
                ep.position
            ) <= 1e-6:
                arrived.append(sensor_id)
        for sensor_id in arrived:
            ep = self._relocations.pop(sensor_id)
            sensor = world.sensor(sensor_id)
            # Obstacle-exit correction on arrival: the expansion point was
            # checked to be free when discovered, but nearest_free guards
            # against a stale EP (e.g. clamped onto an obstacle boundary).
            sensor.position = world.field.nearest_free(ep.position)
            sensor.state = SensorState.FIXED
            self._registry.promote_virtual(sensor_id, sensor.position)
            # Re-attach to the tree under the inviter (or the base station
            # when the inviter was a virtual node that has no tree presence).
            parent = ep.owner_id if ep.owner_id in world.tree else BASE_STATION_ID
            if parent != BASE_STATION_ID and parent >= _VIRTUAL_ID_OFFSET:
                parent = BASE_STATION_ID
            world.attach_to_tree(sensor_id, parent)
            self._active_searchers.add(sensor_id)
            # Remove the corresponding virtual searcher, if any.
            self._remove_virtual_for(ep)

    def _remove_virtual_for(self, ep: ExpansionPoint) -> None:
        """Drop the virtual searcher standing in for an arrived sensor."""
        to_remove = [
            vid
            for vid, pos in self._virtual_positions.items()
            if pos.distance_to(ep.position) <= 1e-6
        ]
        for vid in to_remove:
            self._virtual_positions.pop(vid, None)
            self._active_searchers.discard(vid)
            assert self._registry is not None
            self._registry.unregister(vid)

    def _searcher_position(self, world: World, searcher_id: int) -> Optional[Vec2]:
        if searcher_id >= _VIRTUAL_ID_OFFSET:
            return self._virtual_positions.get(searcher_id)
        sensor = world.sensor(searcher_id)
        if sensor.state is not SensorState.FIXED:
            return None
        return sensor.position

    def _run_expansion_round(self, world: World) -> None:
        assert self._expansion is not None and self._registry is not None
        assert self._invitations is not None

        # 1. Fixed (and virtual) searchers look for expansion points.
        expansion_points: List[ExpansionPoint] = []
        exhausted: List[int] = []
        for searcher_id in sorted(self._active_searchers):
            position = self._searcher_position(world, searcher_id)
            if position is None:
                exhausted.append(searcher_id)
                continue
            points = self._expansion.expansion_points(searcher_id, position)
            if not points:
                # "If a sensor finds no expansion points on its expansion
                # circle, then it stops the checking process."
                exhausted.append(searcher_id)
                continue
            # Coverage-status queries to the relevant floor headers: one
            # query and one response per floor asked, routed over the tree.
            floors_asked = self._floors.floors_possibly_covering(
                points[0].position, world.config.sensing_range
            ) if self._floors is not None else []
            if floors_asked:
                world.routing.record_one_hop(
                    MessageType.COVERAGE_QUERY, len(floors_asked)
                )
                world.routing.record_one_hop(
                    MessageType.COVERAGE_RESPONSE, len(floors_asked)
                )
            expansion_points.extend(points)
        for searcher_id in exhausted:
            self._active_searchers.discard(searcher_id)

        if not expansion_points:
            return

        # Expansion priorities (Section 5.5.1): FLG gives the largest coverage
        # gain per relocation, BLG comes second (it is what introduces
        # sensors to new floors along boundaries) and IFLG infill comes last.
        # Advertising only the highest-priority kind available in a round
        # keeps movable sensors from being spent on boundary or infill
        # points while floor-line frontiers are still open.
        for kind in (ExpansionKind.FLG, ExpansionKind.BLG, ExpansionKind.IFLG):
            of_kind = [ep for ep in expansion_points if ep.kind is kind]
            if of_kind:
                expansion_points = of_kind
                break

        # 2. One invitation round matches EPs with movable sensors.
        movable = [
            s
            for s in world.sensors
            if s.state is SensorState.MOVABLE
            and s.sensor_id not in self._relocations
            and s.sensor_id not in self._pending_movables
        ]
        connected_count = len(world.connected_sensor_ids())
        if world.telemetry.enabled:
            # One invitation walk starts per advertised expansion point.
            world.telemetry.count(
                "floor.invitations_issued", len(expansion_points)
            )
        assignments = self._invitations.run_round(
            expansion_points, movable, connected_count, world.tree,
            world=world,
        )
        world.telemetry.count("floor.relocations_started", len(assignments))

        # 3. Accepted movable sensors start relocating — immediately on
        #    the perfect network, after ``latency`` periods otherwise.
        net = world.network
        for assignment in assignments:
            if net.latency > 0:
                world.stats.record_net("delayed", net.latency)
                self._deferred_starts.append((
                    world.period_index + net.latency,
                    assignment.movable_id,
                    assignment.expansion_point,
                ))
                self._pending_movables.add(assignment.movable_id)
            else:
                self._start_relocation(
                    world, assignment.movable_id, assignment.expansion_point
                )

    def _start_relocation(
        self, world: World, movable_id: int, ep: ExpansionPoint
    ) -> None:
        assert self._planner_disperse is not None and self._registry is not None
        sensor = world.sensor(movable_id)
        if not self._rehome_children(world, sensor):
            return
        # Leave the tree while in transit; the subtree has been re-homed.
        parent = world.tree.parent_of(movable_id)
        if parent is not None and parent != BASE_STATION_ID:
            world.sensor(parent).children.discard(movable_id)
        world.tree.detach(movable_id, keep_subtree=True)
        sensor.state = SensorState.RELOCATING
        path = self._planner_disperse.plan(sensor.position, ep.position)
        sensor.motion.follow(path)
        self._relocations[movable_id] = ep

        # Install the virtual place-holding fixed node at the EP.
        self._virtual_counter += 1
        virtual_id = _VIRTUAL_ID_OFFSET + self._virtual_counter
        self._registry.register(virtual_id, ep.position, virtual=True)
        if self._virtual_nodes_search:
            self._virtual_positions[virtual_id] = ep.position
            self._active_searchers.add(virtual_id)

    def _rehome_children(self, world: World, sensor: Sensor) -> bool:
        """Give every child of a departing movable sensor a new parent."""
        children = list(world.tree.children_of(sensor.sensor_id))
        if not children:
            return True
        table = world.protocol_neighbor_table()
        for child in children:
            child_sensor = world.sensor(child)
            subtree = world.tree.subtree_of(child)
            rc_limit = child_sensor.communication_range + 1e-9
            candidates: List[int] = []
            if (
                child_sensor.position.distance_to(world.base_station)
                <= world.config.communication_range
            ):
                candidates.append(BASE_STATION_ID)
            for candidate in table.get(child, []):
                if candidate == sensor.sensor_id or candidate in subtree:
                    continue
                candidate_sensor = world.sensor(candidate)
                if not candidate_sensor.is_connected() or candidate not in world.tree:
                    continue
                # Live-range revalidation: a stale table entry may have
                # drifted out of range; adopting it would put a broken
                # link into the tree (no-op when the table is live).
                if (
                    child_sensor.position.distance_to(candidate_sensor.position)
                    > rc_limit
                ):
                    continue
                candidates.append(candidate)
            reparented = False
            for candidate in candidates:
                if world.reparent_in_tree(child, candidate):
                    reparented = True
                    break
            if not reparented:
                return False
        return True

    # ------------------------------------------------------------------
    # Lifecycle churn
    # ------------------------------------------------------------------
    def on_world_changed(self, world: World, change) -> None:
        """React to fault-injection events between periods.

        A dead sensor is evicted everywhere it is remembered: its floor-
        registry record (so expansion-point discovery stops treating its
        disk as covered), its searcher slot, any in-flight relocation (plus
        the virtual place-holder standing at the target EP) and any lazy
        path-parent state.  Sensors the tree repair dropped — and freshly
        injected ones — restart phase 1 as connection walkers.  Obstacle
        changes re-plan in-flight relocations against the new field right
        away, because ``_advance_relocations`` reads an empty path as
        "arrived at the expansion point".
        """
        if self._registry is None or self._lazy is None:
            return
        for sid in change.failed_ids:
            sensor = world.sensor(sid)
            self._lazy.stop_waiting(sensor)
            self._registry.unregister(sid)
            self._active_searchers.discard(sid)
            self._drop_deferred_start(sid)
            ep = self._relocations.pop(sid, None)
            if ep is not None:
                self._remove_virtual_for(ep)
        for sid in chain(change.disconnected_ids, change.added_ids):
            sensor = world.sensor(sid)
            if not sensor.is_alive() or sensor.is_connected():
                continue
            self._registry.unregister(sid)
            self._active_searchers.discard(sid)
            self._drop_deferred_start(sid)
            ep = self._relocations.pop(sid, None)
            if ep is not None:
                self._remove_virtual_for(ep)
            sensor.state = SensorState.MOVING_TO_CONNECT
            self._lazy.stop_waiting(sensor)
            sensor.motion.stop()
        if change.obstacles_changed:
            assert self._planner_disperse is not None
            for sensor in world.sensors:
                if not sensor.is_alive():
                    continue
                ep = self._relocations.get(sensor.sensor_id)
                if ep is not None:
                    sensor.motion.follow(
                        self._planner_disperse.plan(sensor.position, ep.position)
                    )
                elif sensor.motion.has_path:
                    # Connection walks re-plan lazily on the next period.
                    sensor.motion.stop()

    def _drop_deferred_start(self, sensor_id: int) -> None:
        """Cancel any latency-deferred relocation start for a sensor."""
        if sensor_id in self._pending_movables:
            self._pending_movables.discard(sensor_id)
            self._deferred_starts = [
                entry for entry in self._deferred_starts
                if entry[1] != sensor_id
            ]

    # ------------------------------------------------------------------
    # Convergence
    # ------------------------------------------------------------------
    def has_converged(self, world: World) -> bool:
        """FLOOR converges once nothing is moving and nothing is searching."""
        if self._phase != 3:
            return False
        if self._relocations or self._deferred_starts:
            return False
        if any(
            not s.is_connected() for s in world.sensors if s.is_alive()
        ):
            return False
        return not self._active_searchers
