"""Connectivity-preserving step-size selection (CPVF, Section 4.2).

Before moving, a CPVF sensor checks that its planned step does not break the
link to any connection it must maintain (its tree parent and children).  The
paper states two *connectivity preserving conditions* for a planned move of
sensor ``s`` relative to a neighbour ``s'`` whose own period ends at ``t'``:

1. the distance between ``s`` and ``s'`` at time ``t'`` is no greater than
   ``rc``; and
2. the distance between ``s'``'s position at ``t'`` and ``s``'s position at
   ``t + T`` is no greater than ``rc``.

Appendix A proves that when both endpoints of the two straight-line moves
are within ``rc``, every intermediate pair of positions is too.  In the
period-synchronous engine the neighbour's end-of-period position is known
(its current position when it is not moving, or its own planned endpoint),
so the conditions reduce to endpoint distance checks, which is exactly what
:func:`max_valid_step` evaluates over a ladder of candidate step sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..geometry import EPS, Vec2

__all__ = [
    "NeighborMotion",
    "step_is_valid",
    "max_valid_step",
    "max_valid_step_points",
    "max_valid_step_reference",
    "STEP_FRACTIONS",
]

#: Candidate step-size fractions examined by a sensor, mirroring the paper's
#: example ladder ``V*T, 0.9*V*T, ..., 0.1*V*T, 0``.
STEP_FRACTIONS = tuple(round(1.0 - 0.1 * i, 1) for i in range(11))


@dataclass(frozen=True)
class NeighborMotion:
    """What a sensor knows about a neighbour it must stay connected to.

    ``current`` is the neighbour's position now (time ``t``) and
    ``planned_end`` its position at the end of its own period (``t'``); for
    a stationary neighbour the two coincide.
    """

    current: Vec2
    planned_end: Vec2

    @staticmethod
    def stationary(position: Vec2) -> "NeighborMotion":
        """A neighbour that is not moving this period."""
        return NeighborMotion(position, position)


def step_is_valid(
    start: Vec2,
    end: Vec2,
    neighbors: Iterable[NeighborMotion],
    communication_range: float,
) -> bool:
    """Whether moving ``start -> end`` keeps every required link alive.

    Checks the two connectivity-preserving conditions against every
    neighbour the sensor needs to retain.
    """
    for nb in neighbors:
        # Condition 1: at the neighbour's period end the link still holds
        # (our position is somewhere on [start, end]; by convexity it is
        # enough that both endpoints are within range of nb's endpoint and
        # start point — see Appendix A).
        if start.distance_to(nb.planned_end) > communication_range + 1e-9:
            return False
        # Condition 2: our end-of-period position is within range of the
        # neighbour's end-of-period position.
        if end.distance_to(nb.planned_end) > communication_range + 1e-9:
            return False
        # Also keep range with the neighbour's current position, covering
        # the case where the neighbour cancels its own move.
        if end.distance_to(nb.current) > communication_range + 1e-9:
            return False
    return True


def max_valid_step(
    position: Vec2,
    direction: Vec2,
    max_step: float,
    neighbors: Sequence[NeighborMotion],
    communication_range: float,
    fractions: Sequence[float] = STEP_FRACTIONS,
) -> float:
    """Largest admissible step size along ``direction``.

    Tries the candidate fractions of ``max_step`` from largest to smallest
    and returns the first one that satisfies the connectivity-preserving
    conditions for every required neighbour; returns ``0`` if even the
    smallest non-zero candidate is invalid.

    This is the CPVF hot path, so it works in plain floats: condition 1
    only depends on the start position and is checked once per neighbour
    (if it fails for any link no candidate can be valid), and for a
    stationary neighbour conditions 2 and 3 coincide and are evaluated
    once.  Results are bit-identical to :func:`max_valid_step_reference`,
    which keeps the paper's ladder verbatim.
    """
    dir_x, dir_y = direction.x, direction.y
    norm = math.hypot(dir_x, dir_y)
    if norm <= EPS or max_step <= 0.0:
        return 0.0
    unit_x, unit_y = dir_x / norm, dir_y / norm
    px, py = position.x, position.y
    limit = communication_range + 1e-9
    checks = []
    for nb in neighbors:
        end = nb.planned_end
        ex, ey = end.x, end.y
        # Condition 1: already out of range of a required link -> no
        # candidate step (including zero) can restore it.
        if math.hypot(px - ex, py - ey) > limit:
            return 0.0
        cur = nb.current
        cx, cy = cur.x, cur.y
        checks.append((ex, ey, cx == ex and cy == ey, cx, cy))
    return _ladder_scan(px, py, unit_x, unit_y, max_step, checks, limit, fractions)


def _ladder_scan(
    px: float,
    py: float,
    unit_x: float,
    unit_y: float,
    max_step: float,
    checks: Sequence[tuple],
    limit: float,
    fractions: Sequence[float],
) -> float:
    """Shared fraction ladder over precomputed link checks.

    ``checks`` entries are ``(end_x, end_y, stationary, cur_x, cur_y)``;
    condition 1 is the caller's responsibility.  The single loop both
    float ladders (:func:`max_valid_step`, :func:`max_valid_step_points`)
    delegate to, so the connectivity-preserving conditions live in one
    place.
    """
    for fraction in fractions:
        step = fraction * max_step
        if step <= 0.0:
            return 0.0
        qx, qy = px + unit_x * step, py + unit_y * step
        valid = True
        for ex, ey, stationary, cx, cy in checks:
            # Condition 2 against the neighbour's end-of-period position.
            if math.hypot(qx - ex, qy - ey) > limit:
                valid = False
                break
            # Condition 3 against its current position (skipped when the
            # neighbour is stationary: same endpoints, same check).
            if not stationary and math.hypot(qx - cx, qy - cy) > limit:
                valid = False
                break
        if valid:
            return step
    return 0.0


def max_valid_step_points(
    px: float,
    py: float,
    dir_x: float,
    dir_y: float,
    max_step: float,
    links: Sequence[tuple],
    communication_range: float,
    fractions: Sequence[float] = STEP_FRACTIONS,
) -> float:
    """:func:`max_valid_step` for stationary links given as ``(x, y)`` pairs.

    The CPVF main loop preserves links to its (stationary within the
    decision) tree parent and children; passing their coordinates as plain
    floats avoids building ``NeighborMotion``/``Vec2`` objects per sensor
    per period.  Returns the same ladder decision as
    :func:`max_valid_step` over ``NeighborMotion.stationary`` entries.
    """
    norm = math.hypot(dir_x, dir_y)
    if norm <= EPS or max_step <= 0.0:
        return 0.0
    unit_x, unit_y = dir_x / norm, dir_y / norm
    limit = communication_range + 1e-9
    for lx, ly in links:
        if math.hypot(px - lx, py - ly) > limit:
            return 0.0
    checks = [(lx, ly, True, lx, ly) for lx, ly in links]
    return _ladder_scan(px, py, unit_x, unit_y, max_step, checks, limit, fractions)


def max_valid_step_reference(
    position: Vec2,
    direction: Vec2,
    max_step: float,
    neighbors: Sequence[NeighborMotion],
    communication_range: float,
    fractions: Sequence[float] = STEP_FRACTIONS,
) -> float:
    """The paper's candidate ladder, evaluated literally.

    Kept as the parity reference for :func:`max_valid_step` (the two must
    agree exactly) and as the seed baseline for the perf benchmarks.
    """
    unit = direction.normalized()
    if unit.norm() == 0.0 or max_step <= 0.0:
        return 0.0
    for fraction in fractions:
        step = fraction * max_step
        if step <= 0.0:
            return 0.0
        end = position + unit * step
        if step_is_valid(position, end, neighbors, communication_range):
            return step
    return 0.0
