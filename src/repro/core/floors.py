"""Floor geometry for the FLOOR scheme (Section 5).

The field is divided into horizontal *floors* of common height ``2 * rs``.
The *floor line* of a floor is its horizontal centre line; sensors are
encouraged to sit on floor lines so that vertically adjacent sensors do not
overlap their sensing disks.  The *inter-floor line* lies midway between two
neighbouring floor lines (i.e. on the floor boundaries) and is used by the
IFLG expansion to detect horizontal coverage holes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from ..field import Field
from ..geometry import Segment, Vec2

__all__ = ["FloorGeometry"]


@dataclass(frozen=True)
class FloorGeometry:
    """Floor lines of a field divided into floors of height ``2 * rs``."""

    sensing_range: float
    field_height: float
    field_width: float

    def __post_init__(self) -> None:
        if self.sensing_range <= 0:
            raise ValueError("sensing range must be positive")
        if self.field_height <= 0 or self.field_width <= 0:
            raise ValueError("field dimensions must be positive")

    @staticmethod
    def for_field(field: Field, sensing_range: float) -> "FloorGeometry":
        """Floor geometry spanning an entire field."""
        return FloorGeometry(
            sensing_range=sensing_range,
            field_height=field.height,
            field_width=field.width,
        )

    # ------------------------------------------------------------------
    # Basic quantities
    # ------------------------------------------------------------------
    @property
    def floor_height(self) -> float:
        """Height of one floor: ``2 * rs``."""
        return 2.0 * self.sensing_range

    @property
    def floor_count(self) -> int:
        """Number of floors needed to span the field height."""
        return max(1, math.ceil(self.field_height / self.floor_height - 1e-9))

    # ------------------------------------------------------------------
    # Floor lines
    # ------------------------------------------------------------------
    def floor_line_y(self, index: int) -> float:
        """The y coordinate of the ``index``-th floor line (index from 0).

        Floor ``k`` spans ``[2*rs*k, 2*rs*(k+1)]`` so its centre line is at
        ``(2k + 1) * rs``.  The last floor line is clamped inside the field
        when the height is not an exact multiple of the floor height.
        """
        if index < 0:
            raise ValueError("floor index must be non-negative")
        y = (2 * index + 1) * self.sensing_range
        return min(y, self.field_height)

    def floor_index(self, y: float) -> int:
        """Index of the floor containing the y coordinate."""
        clamped = min(max(y, 0.0), self.field_height)
        idx = int(clamped // self.floor_height)
        return min(idx, self.floor_count - 1)

    def nearest_floor_line(self, y: float) -> float:
        """``FloorLine(y)``: the y coordinate of the nearest floor line.

        This is the function used by Algorithm 1 of the paper to pick the
        first intermediate destination of a connecting sensor.
        """
        idx = self.floor_index(y)
        candidates = [self.floor_line_y(idx)]
        if idx > 0:
            candidates.append(self.floor_line_y(idx - 1))
        if idx + 1 < self.floor_count:
            candidates.append(self.floor_line_y(idx + 1))
        return min(candidates, key=lambda line: abs(line - y))

    def floor_line_segment(self, index: int) -> Segment:
        """The ``index``-th floor line clipped to the field width."""
        y = self.floor_line_y(index)
        return Segment(Vec2(0.0, y), Vec2(self.field_width, y))

    def floor_lines(self) -> List[float]:
        """All floor-line y coordinates."""
        return [self.floor_line_y(i) for i in range(self.floor_count)]

    # ------------------------------------------------------------------
    # Inter-floor lines
    # ------------------------------------------------------------------
    def inter_floor_lines(self) -> List[float]:
        """All inter-floor-line y coordinates (boundaries between floors)."""
        return [
            2.0 * self.sensing_range * k for k in range(1, self.floor_count)
        ]

    def inter_floor_line_above(self, floor_index: int) -> Optional[float]:
        """The inter-floor line above the given floor (``None`` at the top)."""
        y = 2.0 * self.sensing_range * (floor_index + 1)
        if y >= self.field_height - 1e-9:
            return None
        return y

    def inter_floor_line_below(self, floor_index: int) -> Optional[float]:
        """The inter-floor line below the given floor (``None`` at the bottom)."""
        if floor_index <= 0:
            return None
        return 2.0 * self.sensing_range * floor_index

    # ------------------------------------------------------------------
    # Queries used by the expansion logic
    # ------------------------------------------------------------------
    def floors_possibly_covering(self, point: Vec2, sensing_range: float) -> List[int]:
        """Floor indices whose members could cover ``point``.

        A sensor on floor line ``y_f`` reaches the point only when
        ``|y_f - point.y| <= rs``; the result lists the floors that satisfy
        this, which is what a querying sensor sends coverage queries to.
        """
        result: List[int] = []
        for idx in range(self.floor_count):
            if abs(self.floor_line_y(idx) - point.y) <= sensing_range + 1e-9:
                result.append(idx)
        return result

    def distance_to_floor_line(self, p: Vec2) -> float:
        """Vertical distance from ``p`` to its nearest floor line."""
        return abs(p.y - self.nearest_floor_line(p.y))
