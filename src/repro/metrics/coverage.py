"""Coverage metrics.

The paper's coverage metric is "the fraction of area that is covered by at
least one sensor", measured over the non-obstacle part of the field.  The
heavy lifting is done by :class:`repro.geometry.CoverageGrid`; this module
adds the convenience entry points the experiments use, plus per-sensor
redundancy statistics used by ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..field import Field
from ..geometry import Vec2

__all__ = ["CoverageReport", "coverage_fraction", "coverage_report"]


@dataclass(frozen=True)
class CoverageReport:
    """Detailed coverage statistics of a sensor layout."""

    #: Fraction of the non-obstacle field area covered by >= 1 sensor.
    covered_fraction: float
    #: Fraction covered by >= 2 sensors (redundant coverage).
    doubly_covered_fraction: float
    #: Mean number of sensors covering a covered point.
    mean_multiplicity: float
    #: Number of sample points used.
    sample_points: int


def coverage_fraction(
    field: Field,
    positions: Sequence[Vec2],
    sensing_range: float,
    resolution: float = 10.0,
) -> float:
    """Fraction of the non-obstacle field area covered by at least one sensor."""
    return field.coverage_fraction(positions, sensing_range, resolution)


def coverage_report(
    field: Field,
    positions: Sequence[Vec2],
    sensing_range: float,
    resolution: float = 10.0,
) -> CoverageReport:
    """Full coverage statistics, including redundancy.

    Unlike :func:`coverage_fraction`, this computes the number of sensors
    covering each sample point, so it is a little more expensive; it is used
    by examples and ablation benches rather than by the main experiments.
    """
    grid, obstacle_mask = field.grid_and_obstacle_mask(resolution)
    free = ~obstacle_mask
    # Accumulate the multiplicity disk by disk, touching only the grid
    # sub-block inside each disk's bounding box.
    multiplicity2d = np.zeros(grid.shape, dtype=np.int32)
    for p in positions:
        disk = grid.disk_block(p.x, p.y, sensing_range)
        if disk is None:
            continue
        si, sj, hit = disk
        multiplicity2d[si, sj] += hit
    multiplicity = multiplicity2d.ravel()

    free_count = int(free.sum())
    if free_count == 0:
        return CoverageReport(0.0, 0.0, 0.0, 0)
    covered = (multiplicity >= 1) & free
    doubly = (multiplicity >= 2) & free
    covered_count = int(covered.sum())
    mean_multiplicity = (
        float(multiplicity[covered].mean()) if covered_count else 0.0
    )
    return CoverageReport(
        covered_fraction=covered_count / free_count,
        doubly_covered_fraction=int(doubly.sum()) / free_count,
        mean_multiplicity=mean_multiplicity,
        sample_points=free_count,
    )
