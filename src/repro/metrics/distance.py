"""Moving-distance metrics.

Moving distance dominates energy consumption in the deployment process
(Section 6.2 of the paper), so it is the second headline metric after
coverage.  Distances come either from sensor odometers (CPVF/FLOOR runs) or
from per-sensor distance lists (the VD baselines and Hungarian bounds).
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean, median
from typing import List, Sequence

from ..sensors import Sensor

__all__ = ["DistanceSummary", "summarize_distances", "summarize_sensor_distances"]


@dataclass(frozen=True)
class DistanceSummary:
    """Summary statistics of per-sensor moving distances."""

    total: float
    average: float
    median: float
    maximum: float
    count: int


def summarize_distances(distances: Sequence[float]) -> DistanceSummary:
    """Summarise a list of per-sensor distances."""
    values: List[float] = [float(d) for d in distances]
    if not values:
        return DistanceSummary(0.0, 0.0, 0.0, 0.0, 0)
    return DistanceSummary(
        total=sum(values),
        average=mean(values),
        median=median(values),
        maximum=max(values),
        count=len(values),
    )


def summarize_sensor_distances(sensors: Sequence[Sensor]) -> DistanceSummary:
    """Summarise the odometers of a sensor population."""
    return summarize_distances([s.moving_distance for s in sensors])
