"""Connectivity metrics.

The paper's schemes guarantee connectivity to a base station; the VD-based
baselines do not, and Fig 10 flags their runs as "Disconn." when the sensor
graph falls apart.  These helpers check connectivity of arbitrary position
snapshots (with or without a base station) using a plain union-find, so they
work for scheme outputs that are not backed by a :class:`~repro.sim.World`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..geometry import Vec2
from ..spatial import SpatialIndex

__all__ = ["positions_are_connected", "connected_components", "largest_component_fraction"]

#: Below this population the plain double loop beats building an index.
_SPATIAL_MIN_POSITIONS = 24


class _UnionFind:
    """Minimal union-find over integer indices."""

    def __init__(self, size: int):
        self._parent = list(range(size))

    def find(self, x: int) -> int:
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra


def _build_union(
    positions: Sequence[Vec2], communication_range: float
) -> _UnionFind:
    uf = _UnionFind(len(positions))
    r = communication_range + 1e-9
    if len(positions) >= _SPATIAL_MIN_POSITIONS and r > 0:
        # pairs_within yields accepted (i, j) pairs in the same (i asc,
        # j asc) order the double loop visits them, so the union-find ends
        # up in an identical state.
        points = np.array([(p.x, p.y) for p in positions], dtype=float)
        index = SpatialIndex(r * 1.001).build(points)
        ii, jj, _ = index.pairs_within(r)
        for i, j in zip(ii.tolist(), jj.tolist()):
            uf.union(i, j)
        return uf
    r_sq = r * r
    for i in range(len(positions)):
        pi = positions[i]
        for j in range(i + 1, len(positions)):
            dx = pi.x - positions[j].x
            dy = pi.y - positions[j].y
            if dx * dx + dy * dy <= r_sq:
                uf.union(i, j)
    return uf


def connected_components(
    positions: Sequence[Vec2], communication_range: float
) -> List[List[int]]:
    """Connected components of the unit-disk graph over ``positions``."""
    if not positions:
        return []
    uf = _build_union(positions, communication_range)
    groups: Dict[int, List[int]] = {}
    for i in range(len(positions)):
        groups.setdefault(uf.find(i), []).append(i)
    return list(groups.values())


def positions_are_connected(
    positions: Sequence[Vec2],
    communication_range: float,
    base_station: Optional[Vec2] = None,
) -> bool:
    """Whether the unit-disk graph over ``positions`` is connected.

    When ``base_station`` is given it is added as an extra node, so the
    check becomes "every sensor can reach the base station".
    """
    if not positions:
        return True
    nodes = list(positions)
    if base_station is not None:
        nodes = nodes + [base_station]
    components = connected_components(nodes, communication_range)
    return len(components) == 1


def largest_component_fraction(
    positions: Sequence[Vec2], communication_range: float
) -> float:
    """Fraction of sensors in the largest connected component."""
    if not positions:
        return 1.0
    components = connected_components(positions, communication_range)
    return max(len(c) for c in components) / len(positions)
