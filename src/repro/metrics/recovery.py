"""Recovery metrics for fault-injection events.

Every lifecycle event (sensor deaths, injections, obstacle changes) opens
a measurement window.  The tracker observes the world once per period and
derives the three robustness metrics the lifecycle experiments report:

* **time to recover** — periods until coverage returns to a configurable
  fraction (default 95%) of its pre-event level;
* **extra moving distance** — total odometer accumulated between the
  event and recovery (or the horizon, when coverage never recovers);
* **message burst** — transmissions in the post-event window minus the
  same-length window before the event (the steady-state baseline).

Trackers consume plain scalars, so the same accounting serves both the
period-synchronous engine (CPVF / FLOOR) and the round-based Voronoi
baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Optional, Tuple

__all__ = ["EventOutcome", "RecoveryTracker"]


@dataclass(frozen=True)
class EventOutcome:
    """Measured aftermath of one lifecycle event."""

    #: Period (or VD round) at which the event fired.
    at_period: int
    #: Event kind (``failure`` / ``join`` / ``obstacle`` / ``clear-obstacle``).
    kind: str
    #: Coverage fraction measured immediately before the event.
    pre_coverage: float
    #: Coverage fraction measured immediately after applying the event.
    post_coverage: float
    #: Best coverage observed during the measurement window.
    best_coverage: float
    #: Coverage at the last observation.
    final_coverage: float
    #: ``best_coverage / pre_coverage`` (1.0 when there was nothing to lose).
    recovery_ratio: float
    #: Recovery threshold as a fraction of ``pre_coverage``.
    recovery_target: float
    #: Periods from the event until coverage first reached the target
    #: (``None`` when it never did within the horizon).
    time_to_recover: Optional[int]
    #: Odometer accumulated (all sensors) between event and recovery/horizon.
    extra_distance: float
    #: Post-event window transmissions minus the pre-event baseline window.
    message_burst: int

    def to_dict(self) -> dict:
        return {
            "at_period": self.at_period,
            "kind": self.kind,
            "pre_coverage": self.pre_coverage,
            "post_coverage": self.post_coverage,
            "best_coverage": self.best_coverage,
            "final_coverage": self.final_coverage,
            "recovery_ratio": self.recovery_ratio,
            "recovery_target": self.recovery_target,
            "time_to_recover": self.time_to_recover,
            "extra_distance": self.extra_distance,
            "message_burst": self.message_burst,
        }

    @staticmethod
    def from_dict(data: dict) -> "EventOutcome":
        known = {f.name for f in fields(EventOutcome)}
        return EventOutcome(**{k: v for k, v in data.items() if k in known})


@dataclass
class RecoveryTracker:
    """Accumulates one event's recovery metrics from per-period scalars.

    ``observe`` is called once per period (after the scheme stepped) with
    the current coverage, total moving distance and cumulative message
    total; the caller supplies the pre-event values at construction.
    """

    at_period: int
    kind: str
    pre_coverage: float
    post_coverage: float
    pre_distance: float
    pre_messages: int
    #: Transmissions in the ``burst_window`` periods *before* the event.
    baseline_window_messages: int
    recovery_target: float = 0.95
    burst_window: int = 25

    recovered_at: Optional[int] = field(default=None, init=False)
    best_coverage: float = field(default=0.0, init=False)
    final_coverage: float = field(default=0.0, init=False)
    extra_distance: float = field(default=0.0, init=False)
    _burst: Optional[int] = field(default=None, init=False)
    _last_messages: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.best_coverage = self.post_coverage
        self.final_coverage = self.post_coverage
        self._last_messages = self.pre_messages

    # ------------------------------------------------------------------
    def observe(
        self, period: int, coverage: float, distance: float, messages: int
    ) -> None:
        """Record one post-event period's metrics."""
        self.final_coverage = coverage
        if coverage > self.best_coverage:
            self.best_coverage = coverage
        self._last_messages = messages
        if self.recovered_at is None:
            self.extra_distance = distance - self.pre_distance
            if coverage >= self.recovery_target * self.pre_coverage - 1e-12:
                self.recovered_at = period
        if self._burst is None and period >= self.at_period + self.burst_window:
            self._burst = (
                messages - self.pre_messages
            ) - self.baseline_window_messages

    @property
    def settled(self) -> bool:
        """Whether both recovery and the burst window have concluded."""
        return self.recovered_at is not None and self._burst is not None

    def outcome(self) -> EventOutcome:
        """Finalise the metrics (call at recovery or at the horizon)."""
        if self.pre_coverage > 1e-12:
            ratio = self.best_coverage / self.pre_coverage
        else:
            ratio = 1.0
        burst = self._burst
        if burst is None:
            burst = (
                self._last_messages - self.pre_messages
            ) - self.baseline_window_messages
        return EventOutcome(
            at_period=self.at_period,
            kind=self.kind,
            pre_coverage=self.pre_coverage,
            post_coverage=self.post_coverage,
            best_coverage=self.best_coverage,
            final_coverage=self.final_coverage,
            recovery_ratio=ratio,
            recovery_target=self.recovery_target,
            time_to_recover=(
                None
                if self.recovered_at is None
                else self.recovered_at - self.at_period
            ),
            extra_distance=self.extra_distance,
            message_burst=burst,
        )
