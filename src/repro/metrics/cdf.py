"""Empirical cumulative distribution functions.

Figure 13 of the paper reports CDFs of coverage and moving distance over
hundreds of random-obstacle runs.  :class:`EmpiricalCDF` is the small
utility the experiment harness uses to build and query those curves.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["EmpiricalCDF"]


@dataclass
class EmpiricalCDF:
    """An empirical CDF built from a finite sample."""

    values: List[float]

    def __init__(self, samples: Sequence[float]):
        if not samples:
            raise ValueError("an empirical CDF needs at least one sample")
        self.values = sorted(float(v) for v in samples)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def probability_at_most(self, x: float) -> float:
        """``P(X <= x)`` under the empirical distribution."""
        return bisect_right(self.values, x) / len(self.values)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile, ``0 <= q <= 1`` (nearest-rank definition)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if q == 0.0:
            return self.values[0]
        rank = max(1, math.ceil(q * len(self.values)))
        return self.values[min(rank, len(self.values)) - 1]

    def mean(self) -> float:
        """Sample mean."""
        return sum(self.values) / len(self.values)

    def median(self) -> float:
        """Sample median (the 0.5 quantile)."""
        return self.quantile(0.5)

    def as_points(self) -> List[Tuple[float, float]]:
        """The CDF as a list of ``(value, cumulative probability)`` points."""
        n = len(self.values)
        return [(v, (i + 1) / n) for i, v in enumerate(self.values)]

    def series(self, num_points: int = 11) -> List[Tuple[float, float]]:
        """A fixed-size sampling of the CDF, convenient for printed tables."""
        if num_points < 2:
            raise ValueError("need at least two points")
        lo, hi = self.values[0], self.values[-1]
        if hi == lo:
            return [(lo, 1.0)] * num_points
        step = (hi - lo) / (num_points - 1)
        return [
            (lo + i * step, self.probability_at_most(lo + i * step))
            for i in range(num_points)
        ]
