"""Evaluation metrics: coverage, moving distance, connectivity, CDFs."""

from .cdf import EmpiricalCDF
from .connectivity import (
    connected_components,
    largest_component_fraction,
    positions_are_connected,
)
from .coverage import CoverageReport, coverage_fraction, coverage_report
from .distance import DistanceSummary, summarize_distances, summarize_sensor_distances
from .recovery import EventOutcome, RecoveryTracker

__all__ = [
    "EventOutcome",
    "RecoveryTracker",
    "EmpiricalCDF",
    "connected_components",
    "largest_component_fraction",
    "positions_are_connected",
    "CoverageReport",
    "coverage_fraction",
    "coverage_report",
    "DistanceSummary",
    "summarize_distances",
    "summarize_sensor_distances",
]
