"""Text-based visualisation of sensor layouts."""

from .ascii_plot import render_coverage_bar, render_layout

__all__ = ["render_coverage_bar", "render_layout"]
