"""ASCII rendering of sensor layouts.

matplotlib is not available in the offline environment, so layouts (the
counterparts of the paper's Figures 3 and 8) are rendered as character
grids: ``#`` marks obstacle cells, ``o`` marks cells covered by at least one
sensing disk, ``*`` marks cells containing a sensor, ``.`` marks uncovered
free cells and ``B`` marks the base station.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..field import Field
from ..geometry import Vec2

__all__ = ["render_layout", "render_coverage_bar"]


def render_layout(
    field: Field,
    positions: Sequence[Vec2],
    sensing_range: float,
    width: int = 60,
    base_station: Vec2 | None = None,
) -> str:
    """Render a field and sensor layout as an ASCII grid.

    ``width`` is the number of character columns; the number of rows is
    scaled to keep cells roughly square (terminal characters are about twice
    as tall as they are wide).
    """
    if width < 10:
        raise ValueError("width must be at least 10 characters")
    cols = width
    rows = max(5, int(round(width * field.height / field.width / 2.0)))
    cell_w = field.width / cols
    cell_h = field.height / rows

    grid: List[List[str]] = [["." for _ in range(cols)] for _ in range(rows)]
    r_sq = sensing_range * sensing_range

    for row in range(rows):
        for col in range(cols):
            center = Vec2((col + 0.5) * cell_w, (row + 0.5) * cell_h)
            if field.in_obstacle(center):
                grid[row][col] = "#"
                continue
            for p in positions:
                dx = center.x - p.x
                dy = center.y - p.y
                if dx * dx + dy * dy <= r_sq:
                    grid[row][col] = "o"
                    break

    for p in positions:
        col = min(cols - 1, max(0, int(p.x / cell_w)))
        row = min(rows - 1, max(0, int(p.y / cell_h)))
        if grid[row][col] != "#":
            grid[row][col] = "*"

    if base_station is not None:
        col = min(cols - 1, max(0, int(base_station.x / cell_w)))
        row = min(rows - 1, max(0, int(base_station.y / cell_h)))
        grid[row][col] = "B"

    # Rows are printed top-down (largest y first) so north is up.
    lines = ["".join(grid[row]) for row in range(rows - 1, -1, -1)]
    return "\n".join(lines)


def render_coverage_bar(label: str, fraction: float, width: int = 40) -> str:
    """A one-line textual bar chart entry, e.g. for scheme comparisons."""
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    bar = "=" * filled + " " * (width - filled)
    return f"{label:<12s} |{bar}| {100.0 * fraction:5.1f}%"
