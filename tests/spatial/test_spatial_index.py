"""Randomized parity tests: SpatialIndex vs brute-force squared distances.

The index contract is exact: candidate cells are an over-approximation
and the float64 predicate ``d2 <= r*r`` decides membership, so results
must be *identical* to a brute-force scan — same indices, same order.
"""

import numpy as np
import pytest

from repro.spatial import SpatialIndex


def brute_pairs(points, r):
    pairs = []
    for i in range(len(points)):
        for j in range(i + 1, len(points)):
            dx = points[i, 0] - points[j, 0]
            dy = points[i, 1] - points[j, 1]
            if dx * dx + dy * dy <= r * r:
                pairs.append((i, j))
    return pairs


def brute_query(points, q, r):
    hits = []
    for i in range(len(points)):
        dx = points[i, 0] - q[0]
        dy = points[i, 1] - q[1]
        if dx * dx + dy * dy <= r * r:
            hits.append(i)
    return hits


class TestSpatialIndexParity:
    @pytest.mark.parametrize("trial", range(40))
    def test_pairs_within_matches_bruteforce(self, trial):
        rng = np.random.default_rng(trial)
        n = int(rng.integers(0, 90))
        points = rng.uniform(-50, 150, size=(n, 2))
        r = float(rng.uniform(0.5, 60))
        cell = float(rng.uniform(0.5, 80))
        index = SpatialIndex(cell).build(points)
        ii, jj, d2 = index.pairs_within(r)
        assert list(zip(ii.tolist(), jj.tolist())) == brute_pairs(points, r)
        # Returned squared distances are the exact float64 values.
        for i, j, d in zip(ii.tolist(), jj.tolist(), d2.tolist()):
            dx = points[i, 0] - points[j, 0]
            dy = points[i, 1] - points[j, 1]
            assert d == dx * dx + dy * dy

    @pytest.mark.parametrize("trial", range(40))
    def test_query_radius_matches_bruteforce(self, trial):
        rng = np.random.default_rng(1000 + trial)
        n = int(rng.integers(0, 90))
        points = rng.uniform(0, 100, size=(n, 2))
        r = float(rng.uniform(0.5, 40))
        cell = float(rng.uniform(0.5, 50))
        index = SpatialIndex(cell).build(points)
        q = rng.uniform(-20, 120, size=2)
        assert index.query_radius(q, r).tolist() == brute_query(points, q, r)

    def test_directed_pairs_are_row_major_sorted(self):
        rng = np.random.default_rng(7)
        points = rng.uniform(0, 100, size=(60, 2))
        index = SpatialIndex(12.0).build(points)
        rows, cols, _ = index.neighbor_pairs_directed(15.0)
        pairs = list(zip(rows.tolist(), cols.tolist()))
        assert pairs == sorted(pairs)
        assert all(i != j for i, j in pairs)

    def test_radius_larger_than_cell(self):
        rng = np.random.default_rng(11)
        points = rng.uniform(0, 100, size=(70, 2))
        index = SpatialIndex(5.0).build(points)  # reach > 1
        ii, jj, _ = index.pairs_within(37.5)
        assert list(zip(ii.tolist(), jj.tolist())) == brute_pairs(points, 37.5)

    def test_empty_and_singleton(self):
        index = SpatialIndex(10.0).build(np.empty((0, 2)))
        assert index.query_radius((0.0, 0.0), 5.0).size == 0
        ii, jj, d2 = index.pairs_within(5.0)
        assert ii.size == jj.size == d2.size == 0
        index = SpatialIndex(10.0).build(np.array([[3.0, 4.0]]))
        assert index.query_radius((0.0, 0.0), 5.0).tolist() == [0]
        assert index.pairs_within(5.0)[0].size == 0

    def test_vec2_query_point_accepted(self):
        from repro.geometry import Vec2

        points = np.array([[0.0, 0.0], [3.0, 0.0], [10.0, 0.0]])
        index = SpatialIndex(4.0).build(points)
        assert index.query_radius(Vec2(1.0, 0.0), 3.0).tolist() == [0, 1]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            SpatialIndex(0.0)
        with pytest.raises(ValueError):
            SpatialIndex(10.0).build(np.zeros((3, 3)))
