"""Property-style parity tests: fast paths vs brute-force implementations.

Randomized layouts — with and without obstacles and line-of-sight
blocking — must produce *identical* neighbor tables, base-station
adjacency, connectivity verdicts and coverage fractions through the
spatial-index/cache/incremental paths and through the brute-force paths
they replace.
"""

import random

import numpy as np
import pytest

from repro.field import Field, two_obstacle_field
from repro.geometry import Vec2
from repro.metrics import connectivity as conn_metrics
from repro.metrics.connectivity import connected_components, positions_are_connected
from repro.sim import SimulationConfig, World
from repro.spatial import IncrementalCoverage

FIELD_SIZE = 300.0


def random_world(trial, n=None, with_obstacles=False, line_of_sight=False):
    rng = random.Random(trial)
    n = n if n is not None else rng.randint(2, 60)
    field = (
        two_obstacle_field(FIELD_SIZE)
        if with_obstacles
        else Field(FIELD_SIZE, FIELD_SIZE)
    )
    config = SimulationConfig(
        sensor_count=n,
        communication_range=rng.uniform(20.0, 70.0),
        sensing_range=rng.uniform(15.0, 50.0),
        duration=10.0,
        coverage_resolution=15.0,
        seed=trial,
        clustered_start=False,
    )
    positions = []
    while len(positions) < n:
        p = Vec2(rng.uniform(0, FIELD_SIZE), rng.uniform(0, FIELD_SIZE))
        if field.is_free(p):
            positions.append(p)
    world = World.create(config, field, initial_positions=positions)
    world.radio.line_of_sight = line_of_sight
    return world


def scatter(world, rng, count):
    """Move ``count`` random sensors to fresh free positions."""
    for _ in range(count):
        sensor = world.sensors[rng.randrange(len(world.sensors))]
        while True:
            p = Vec2(
                rng.uniform(0, FIELD_SIZE), rng.uniform(0, FIELD_SIZE)
            )
            if world.field.is_free(p):
                sensor.position = p
                break


CASES = [
    (False, False),
    (True, False),
    (True, True),
    (False, True),
]


class TestNeighborTableParity:
    @pytest.mark.parametrize("with_obstacles,line_of_sight", CASES)
    @pytest.mark.parametrize("trial", range(8))
    def test_indexed_table_matches_bruteforce(
        self, trial, with_obstacles, line_of_sight
    ):
        world = random_world(
            trial, with_obstacles=with_obstacles, line_of_sight=line_of_sight
        )
        brute = world.radio.neighbor_table_bruteforce(world.sensors)
        assert world.radio.neighbor_table_indexed(world.sensors) == brute
        # The world-level (cached) path agrees too — including list order.
        assert world.neighbor_table() == brute

    @pytest.mark.parametrize("trial", range(6))
    def test_heterogeneous_ranges(self, trial):
        world = random_world(trial)
        rng = random.Random(1000 + trial)
        for sensor in world.sensors:
            sensor.communication_range = rng.uniform(10.0, 80.0)
        brute = world.radio.neighbor_table_bruteforce(world.sensors)
        assert world.radio.neighbor_table_indexed(world.sensors) == brute


class TestBaseStationAndConnectivityParity:
    @pytest.mark.parametrize("with_obstacles,line_of_sight", CASES)
    @pytest.mark.parametrize("trial", range(8))
    def test_cached_queries_match_radio(
        self, trial, with_obstacles, line_of_sight
    ):
        world = random_world(
            trial, with_obstacles=with_obstacles, line_of_sight=line_of_sight
        )
        rc = world.config.communication_range
        radio = world.radio
        expected_near = radio.neighbors_of_point(
            world.base_station, world.sensors, rc
        )
        expected_component = radio.connected_component_of(
            world.sensors, world.base_station, rc
        )
        assert world.sensors_near_base_station() == expected_near
        assert world.connected_component_of() == expected_component
        assert world.network_is_connected() == radio.network_is_connected(
            world.sensors, world.base_station, rc
        )

    @pytest.mark.parametrize("trial", range(8))
    def test_cache_tracks_movement(self, trial):
        world = random_world(trial, n=40)
        rng = random.Random(2000 + trial)
        for _ in range(5):
            scatter(world, rng, 3)
            brute = world.radio.neighbor_table_bruteforce(world.sensors)
            assert world.neighbor_table() == brute
            assert world.sensors_near_base_station() == (
                world.radio.neighbors_of_point(
                    world.base_station,
                    world.sensors,
                    world.config.communication_range,
                )
            )

    def test_cache_invalidates_on_radio_parameter_change(self):
        world = random_world(5, n=30)
        before = world.neighbor_table()
        # Mutating a sensor's range mid-run must not serve the stale table.
        world.sensors[0].communication_range *= 2.0
        after = world.neighbor_table()
        assert after == world.radio.neighbor_table_bruteforce(world.sensors)
        assert world.sensors_near_base_station() == (
            world.radio.neighbors_of_point(
                world.base_station,
                world.sensors,
                world.config.communication_range,
            )
        )
        # Toggling line-of-sight blocking invalidates too.
        obstacle_world = random_world(6, n=30, with_obstacles=True)
        clear = obstacle_world.neighbor_table()
        obstacle_world.radio.line_of_sight = True
        blocked = obstacle_world.neighbor_table()
        assert blocked == obstacle_world.radio.neighbor_table_bruteforce(
            obstacle_world.sensors
        )
        assert before is not after  # copies, never the same object

    @pytest.mark.parametrize("trial", range(10))
    def test_metrics_components_match_bruteforce(self, trial):
        rng = random.Random(3000 + trial)
        n = rng.randint(0, 80)
        positions = [
            Vec2(rng.uniform(0, 200), rng.uniform(0, 200)) for _ in range(n)
        ]
        rc = rng.uniform(5.0, 60.0)
        spatial = connected_components(positions, rc)
        # Force the double-loop path by lifting the size threshold.
        old = conn_metrics._SPATIAL_MIN_POSITIONS
        conn_metrics._SPATIAL_MIN_POSITIONS = 10**9
        try:
            brute = connected_components(positions, rc)
        finally:
            conn_metrics._SPATIAL_MIN_POSITIONS = old
        assert spatial == brute
        base = Vec2(0.0, 0.0)
        assert positions_are_connected(positions, rc, base) == (
            len(connected_components(positions + [base], rc)) == 1
        )


class TestCoverageParity:
    @pytest.mark.parametrize("with_obstacles", [False, True])
    @pytest.mark.parametrize("trial", range(6))
    def test_incremental_matches_bruteforce_over_moves(
        self, trial, with_obstacles
    ):
        world = random_world(trial, n=25, with_obstacles=with_obstacles)
        rng = random.Random(4000 + trial)
        rs = world.config.sensing_range
        res = world.config.coverage_resolution
        world.use_incremental_coverage = True
        for _ in range(6):
            brute = world.field.coverage_fraction(world.positions(), rs, res)
            assert world.coverage() == brute
            scatter(world, rng, rng.randint(1, 5))

    def test_tracker_handles_population_change(self):
        field = Field(FIELD_SIZE, FIELD_SIZE)
        tracker = IncrementalCoverage(field, 30.0, 15.0)
        rng = np.random.default_rng(9)
        pts = rng.uniform(0, FIELD_SIZE, size=(10, 2))
        tracker.update(pts)
        first = tracker.covered_fraction()
        assert first == field.coverage_fraction(
            [Vec2(x, y) for x, y in pts], 30.0, 15.0
        )
        pts = rng.uniform(0, FIELD_SIZE, size=(25, 2))  # rebuild path
        tracker.update(pts)
        assert tracker.covered_fraction() == field.coverage_fraction(
            [Vec2(x, y) for x, y in pts], 30.0, 15.0
        )

    def test_zero_radius_covers_nothing(self):
        field = Field(FIELD_SIZE, FIELD_SIZE)
        tracker = IncrementalCoverage(field, 0.0, 15.0)
        tracker.update(np.array([[10.0, 10.0]]))
        assert tracker.covered_fraction() == 0.0
