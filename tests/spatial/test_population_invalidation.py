"""Cache invalidation under population churn.

The neighbor cache's epoch includes the world's population version and the
field's obstacle version, so killing, injecting or re-fielding sensors must
drop every derived structure.  Parity is checked the strong way: after a
random churn sequence, every cached query must equal the same query on a
freshly built world holding only the surviving sensors at their current
positions.
"""

import random

import pytest

from repro.field import Field, Obstacle
from repro.geometry import Vec2
from repro.sim import SimulationConfig, World

FIELD_SIZE = 250.0


def build_world(positions, seed=1, rc=60.0, cache=True):
    field = Field(FIELD_SIZE, FIELD_SIZE)
    config = SimulationConfig(
        sensor_count=len(positions),
        communication_range=rc,
        sensing_range=30.0,
        duration=10.0,
        coverage_resolution=25.0,
        seed=seed,
        clustered_start=False,
    )
    world = World.create(config, field, initial_positions=positions)
    world.use_neighbor_cache = cache
    world.use_incremental_coverage = cache
    return world


def random_positions(rng, n):
    return [
        Vec2(rng.uniform(0, FIELD_SIZE), rng.uniform(0, FIELD_SIZE))
        for _ in range(n)
    ]


def remap_table(table, id_map):
    return {
        id_map[sid]: [id_map[nb] for nb in row] for sid, row in table.items()
    }


@pytest.mark.parametrize("trial", range(10))
def test_churned_cache_matches_fresh_world(trial):
    """Kill/inject churn: cached queries == queries on a rebuilt world."""
    rng = random.Random(4000 + trial)
    world = build_world(random_positions(rng, rng.randint(10, 40)), seed=trial)

    # Warm every cached structure before churning.
    world.neighbor_table()
    world.coverage()

    for _ in range(rng.randint(1, 3)):
        if rng.random() < 0.7 and world.alive_count() > 2:
            victims = rng.sample(
                [s.sensor_id for s in world.alive_sensors()],
                rng.randint(1, max(1, world.alive_count() // 4)),
            )
            for sid in victims:
                world.remove_sensor(sid)
        else:
            for _ in range(rng.randint(1, 4)):
                world.add_sensor(
                    Vec2(rng.uniform(0, FIELD_SIZE), rng.uniform(0, FIELD_SIZE))
                )

    # A fresh world holding only the survivors, at their current positions.
    alive = world.alive_sensors()
    reference = build_world(
        [s.position for s in alive], seed=trial, cache=False
    )
    # Survivor ids differ (the fresh world renumbers 0..k-1); remap.
    id_map = {i: s.sensor_id for i, s in enumerate(alive)}

    assert world.neighbor_table() == remap_table(
        reference.neighbor_table(), id_map
    )
    assert world.sensors_near_base_station() == [
        id_map[sid] for sid in reference.sensors_near_base_station()
    ]
    assert world.connected_component_of() == {
        id_map[sid] for sid in reference.connected_component_of()
    }
    assert world.coverage() == pytest.approx(reference.coverage(), abs=1e-12)


@pytest.mark.parametrize("trial", range(6))
def test_cached_and_uncached_worlds_agree_under_identical_churn(trial):
    """The same churn on cached and brute worlds yields identical answers."""
    rng = random.Random(5000 + trial)
    positions = random_positions(rng, rng.randint(8, 30))
    cached = build_world(positions, seed=trial, cache=True)
    brute = build_world(positions, seed=trial, cache=False)

    script = []
    for _ in range(rng.randint(1, 4)):
        if rng.random() < 0.5 and cached.alive_count() > 2:
            script.append(
                ("kill", rng.choice([s.sensor_id for s in cached.alive_sensors()]))
            )
        else:
            script.append(
                (
                    "add",
                    Vec2(
                        rng.uniform(0, FIELD_SIZE), rng.uniform(0, FIELD_SIZE)
                    ),
                )
            )

    for world in (cached, brute):
        world.neighbor_table()
        for action, arg in script:
            if action == "kill":
                world.remove_sensor(arg)
            else:
                world.add_sensor(arg)

    assert cached.neighbor_table() == brute.neighbor_table()
    cached_rows, cached_cols = cached.neighbor_pairs()
    brute_rows, brute_cols = brute.neighbor_pairs()
    assert list(cached_rows) == list(brute_rows)
    assert list(cached_cols) == list(brute_cols)
    assert cached.coverage() == brute.coverage()
    assert cached.network_is_connected() == brute.network_is_connected()


def test_field_change_invalidates_coverage():
    rng = random.Random(42)
    world = build_world(random_positions(rng, 20))
    before = world.coverage()
    index = world.field.add_obstacle(
        Obstacle.rectangle(20.0, 20.0, 180.0, 180.0)
    )
    world.notify_field_changed()
    after = world.coverage()
    assert after != before

    world.field.remove_obstacle(index)
    world.notify_field_changed()
    assert world.coverage() == pytest.approx(before, abs=1e-12)


def test_epoch_bumps_without_explicit_invalidation():
    """The cache notices churn through its epoch, not manual invalidation."""
    rng = random.Random(11)
    world = build_world(random_positions(rng, 15), rc=120.0)
    table_before = world.neighbor_table()
    victim = 7
    assert any(victim in row for row in table_before.values())
    world.remove_sensor(victim)
    table_after = world.neighbor_table()
    assert victim not in table_after
    assert all(victim not in row for row in table_after.values())
