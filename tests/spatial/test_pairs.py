"""The packed pair view of the neighbour cache vs the dict table.

``NeighborCache.neighbor_pairs`` feeds the batched CPVF kernel; its
accepted pair set (at ``extra_radius=0``) must be exactly the neighbour
table's, and the inflated sets must nest around it.
"""

import random

import numpy as np

from repro.experiments.common import SMOKE_SCALE, make_config, make_world
from repro.field import uniform_initial_positions
from repro.sim import World


def _world(n=60, seed=4):
    config = make_config(SMOKE_SCALE, sensor_count=n, seed=seed)
    return make_world(config, SMOKE_SCALE)


class TestNeighborPairs:
    def test_pairs_match_table(self):
        world = _world()
        table = world.neighbor_table()
        rows, cols = world.neighbor_pairs()
        rebuilt = {sid: [] for sid in table}
        for r, c in zip(rows.tolist(), cols.tolist()):
            rebuilt[world.sensors[r].sensor_id].append(
                world.sensors[c].sensor_id
            )
        assert rebuilt == table

    def test_pairs_follow_movement(self):
        world = _world()
        rows0, _ = world.neighbor_pairs()
        # Move a sensor far away: its pairs must drop out on requery.
        sensor = world.sensors[0]
        from repro.geometry import Vec2

        sensor.motion.move_to(Vec2(0.1, 0.1))
        rows1, cols1 = world.neighbor_pairs()
        table = world.neighbor_table()
        rebuilt = {sid: [] for sid in table}
        for r, c in zip(rows1.tolist(), cols1.tolist()):
            rebuilt[world.sensors[r].sensor_id].append(
                world.sensors[c].sensor_id
            )
        assert rebuilt == table

    def test_inflated_pairs_nest_exactly(self):
        world = _world()
        rows, cols, d2 = world.neighbor_pairs(with_d2=True)
        irows, icols, id2 = world.neighbor_pairs(10.0, with_d2=True)
        base = set(zip(rows.tolist(), cols.tolist()))
        inflated = set(zip(irows.tolist(), icols.tolist()))
        assert base <= inflated
        rc = world.config.communication_range
        # Every inflated-only pair is beyond rc; every base pair within.
        for (r, c), dd in zip(zip(irows.tolist(), icols.tolist()), id2.tolist()):
            if (r, c) not in base:
                assert dd > (rc + 1e-9) ** 2
        assert np.all(d2 <= (rc + 1e-9) ** 2)

    def test_exact_request_after_inflated_is_masked_subset(self):
        world = _world()
        cache = world._cache()
        irows, icols = cache.neighbor_pairs(10.0)
        rows, cols = cache.neighbor_pairs(0.0)
        table = world.neighbor_table()
        rebuilt = {sid: [] for sid in table}
        for r, c in zip(rows.tolist(), cols.tolist()):
            rebuilt[world.sensors[r].sensor_id].append(
                world.sensors[c].sensor_id
            )
        assert rebuilt == table

    def test_neighbor_rows_match_table_subset(self):
        world = _world()
        table = world.neighbor_table()
        ids = random.Random(2).sample(sorted(table), 10)
        # Fresh world state (no cached table) exercises the index path.
        world._cache().invalidate()
        rows = world.neighbor_rows(ids)
        assert rows == {sid: table[sid] for sid in ids}

    def test_bruteforce_pairs_match_indexed(self):
        world = _world()
        rows_i, cols_i = world.neighbor_pairs()
        world.use_neighbor_cache = False
        rows_b, cols_b = world.neighbor_pairs()
        assert np.array_equal(rows_i, rows_b)
        assert np.array_equal(cols_i, cols_b)
