"""Incremental pair maintenance: the store must be invisible.

``NeighborCache.neighbor_pairs`` now answers most requests from a
:class:`~repro.spatial.PairStore` — an inflated-radius pair set anchored
at frozen positions, repaired in place when sensors out-drift their
slack budget.  The contract is *bit-identical* output: every answer,
whatever maintenance path produced it (serve, repair, rebuild, memo,
nesting derivation), must equal a fresh
``SpatialIndex.neighbor_pairs_directed`` build over the live positions —
same pairs, same lexicographic order, same float64 squared distances.
This module pins that contract across drift, teleports, mixed-radius
request sequences, population churn and the numpy-only fallback.
"""

import random

import numpy as np
import pytest

from repro.experiments.common import SMOKE_SCALE, make_config, make_world
from repro.geometry import Vec2
from repro.spatial import PairStore, SpatialIndex
from repro.spatial import pairstore as pairstore_mod
from repro.spatial.cache import _LINK_EPS, _PAIRS_MEMO_LIMIT
from repro.spatial.pairstore import directed_pairs_sorted

FIELD = 200.0


def _world(n=60, seed=4):
    config = make_config(SMOKE_SCALE, sensor_count=n, seed=seed)
    return make_world(config, SMOKE_SCALE)


def _coords(rng, n, size=FIELD):
    x = np.array([rng.uniform(0.0, size) for _ in range(n)], dtype=float)
    y = np.array([rng.uniform(0.0, size) for _ in range(n)], dtype=float)
    return x, y


def _fresh_pairs(x, y, limit):
    """The reference pair generation the store must reproduce exactly."""
    idx = SpatialIndex(max(limit, 1e-9) * 1.001 / 2.0).build(
        np.column_stack([x, y])
    )
    return idx.neighbor_pairs_directed(limit)


def _world_arrays(world):
    xs = np.array([s.position.x for s in world.sensors], dtype=float)
    ys = np.array([s.position.y for s in world.sensors], dtype=float)
    return xs, ys


def _assert_exact(got, expected):
    grows, gcols, gd2 = got
    erows, ecols, ed2 = expected
    assert np.array_equal(grows, erows)
    assert np.array_equal(gcols, ecols)
    # Bit-identical float64 distances, not approx: downstream nesting
    # derivations re-mask these values against squared limits.
    assert np.array_equal(gd2, ed2)


def _jiggle(rng, world, step):
    for sensor in world.sensors:
        p = sensor.position
        sensor.motion.move_to(
            Vec2(
                min(FIELD, max(0.0, p.x + rng.uniform(-step, step))),
                min(FIELD, max(0.0, p.y + rng.uniform(-step, step))),
            )
        )


class TestDirectedPairsSorted:
    @pytest.mark.parametrize("trial", range(8))
    def test_matches_spatial_index_exactly(self, trial):
        rng = random.Random(900 + trial)
        n = rng.randint(2, 120)
        x, y = _coords(rng, n)
        limit = rng.uniform(5.0, 80.0)
        _assert_exact(
            directed_pairs_sorted(x, y, limit), _fresh_pairs(x, y, limit)
        )

    def test_fallback_path_matches(self, monkeypatch):
        """numpy-only CI path == kd-tree path (same exact predicate)."""
        rng = random.Random(17)
        x, y = _coords(rng, 80)
        with_tree = directed_pairs_sorted(x, y, 40.0)
        monkeypatch.setattr(pairstore_mod, "cKDTree", None)
        _assert_exact(directed_pairs_sorted(x, y, 40.0), with_tree)

    def test_degenerate_inputs(self):
        rows, cols, d2 = directed_pairs_sorted(
            np.array([1.0]), np.array([1.0]), 10.0
        )
        assert len(rows) == len(cols) == len(d2) == 0
        x = np.array([0.0, 1.0])
        rows, cols, d2 = directed_pairs_sorted(x, x, -1.0)
        assert len(rows) == 0


class TestPairStore:
    @pytest.mark.parametrize("trial", range(6))
    def test_serve_exact_within_drift_budget(self, trial):
        rng = random.Random(300 + trial)
        x, y = _coords(rng, 90)
        limit = 45.0
        store = PairStore.build(x, y, limit * 1.2)
        budget = 0.5 * (store.limit - limit) - 1e-6
        for _ in range(4):
            # Drift every sensor strictly inside the budget.
            theta = np.array([rng.uniform(0, 6.28) for _ in range(len(x))])
            r = np.array(
                [rng.uniform(0, budget * 0.95) for _ in range(len(x))]
            )
            lx = np.clip(store.ax + r * np.cos(theta), 0, FIELD)
            ly = np.clip(store.ay + r * np.sin(theta), 0, FIELD)
            assert len(store.movers(lx, ly, limit)) == 0
            _assert_exact(
                store.serve(lx, ly, limit), _fresh_pairs(lx, ly, limit)
            )

    @pytest.mark.parametrize("trial", range(6))
    def test_repaired_store_equals_rebuilt_store(self, trial):
        """After repair the arrays equal a fresh build over the anchors."""
        rng = random.Random(500 + trial)
        x, y = _coords(rng, 90)
        limit = 45.0
        store = PairStore.build(x, y, limit * 1.2)
        lx, ly = x.copy(), y.copy()
        for _ in range(3):
            # Teleport a few sensors far beyond the budget.
            for m in rng.sample(range(len(x)), rng.randint(1, 6)):
                lx[m] = rng.uniform(0, FIELD)
                ly[m] = rng.uniform(0, FIELD)
            movers = store.movers(lx, ly, limit)
            assert len(movers) > 0
            store.repair(lx, ly, movers)
            rebuilt = PairStore.build(store.ax, store.ay, store.limit)
            assert np.array_equal(store.rows, rebuilt.rows)
            assert np.array_equal(store.cols, rebuilt.cols)
            assert np.array_equal(store.counts, rebuilt.counts)
            # Movers are re-anchored, so the serve is exact again.
            assert len(store.movers(lx, ly, limit)) == 0
            _assert_exact(
                store.serve(lx, ly, limit), _fresh_pairs(lx, ly, limit)
            )

    def test_repair_fallback_path_matches(self, monkeypatch):
        rng = random.Random(23)
        x, y = _coords(rng, 70)
        limit = 40.0

        def run():
            store = PairStore.build(x, y, limit * 1.2)
            lx, ly = x.copy(), y.copy()
            for m in (3, 11, 40):
                lx[m] = rng_fixed[m][0]
                ly[m] = rng_fixed[m][1]
            store.repair(lx, ly, np.array([3, 11, 40]))
            return store

        rng_fixed = {m: (rng.uniform(0, FIELD), rng.uniform(0, FIELD))
                     for m in (3, 11, 40)}
        with_tree = run()
        monkeypatch.setattr(pairstore_mod, "cKDTree", None)
        without = run()
        assert np.array_equal(with_tree.rows, without.rows)
        assert np.array_equal(with_tree.cols, without.cols)

    def test_unserveable_requests_return_none(self):
        rng = random.Random(5)
        x, y = _coords(rng, 20)
        store = PairStore.build(x, y, 50.0)
        assert store.movers(x, y, 51.0) is None  # beyond inflated radius
        assert store.movers(x[:-1], y[:-1], 40.0) is None  # churned length


class TestWorldIncrementalPairs:
    """The cache-level integration: drift cycles, events, exactness."""

    def _expected(self, world, extra):
        xs, ys = _world_arrays(world)
        limit = world.config.communication_range + _LINK_EPS + extra
        return _fresh_pairs(xs, ys, limit)

    @pytest.mark.parametrize("seed", [1, 9])
    def test_drift_cycle_parity_all_radii(self, seed):
        """Small per-period drift: serves/repairs stay exact vs rebuild."""
        world = _world(n=70, seed=seed)
        rng = random.Random(seed)
        cache = world._cache()
        extras = (7.5, 0.0)  # larger first: the 0.0 answer derives from it
        for period in range(10):
            _jiggle(rng, world, step=1.5)
            if period == 6:
                # A handful of teleports forces the repair path.
                for sid in (0, 3, 9):
                    world.sensors[sid].motion.move_to(
                        Vec2(rng.uniform(0, FIELD), rng.uniform(0, FIELD))
                    )
            for extra in extras:
                got = world.neighbor_pairs(extra, with_d2=True)
                _assert_exact(got, self._expected(world, extra))
        events = cache.pair_events
        # The maintained store must actually carry the run: the first
        # period builds it, later periods serve or repair.
        assert events["rebuilds"] >= 1
        assert events["serves"] + events["repairs"] >= 3
        assert events["bypasses"] == 0

    def test_hint_predicts_maintenance_kind(self):
        world = _world(n=50, seed=7)
        rng = random.Random(7)
        for period in range(6):
            _jiggle(rng, world, step=2.0)
            hint = world.pairs_maintenance_hint()
            world.neighbor_pairs()
            last = world.pairs_maintenance_last()
            incremental = last in ("memo", "derived", "serve", "repair")
            assert (hint == "incremental") == incremental
            # Same epoch, second request: always a memo hit.
            assert world.pairs_maintenance_hint() == "incremental"
            world.neighbor_pairs()
            assert world.pairs_maintenance_last() == "memo"

    def test_mass_teleport_triggers_rebuild_and_stays_exact(self):
        world = _world(n=60, seed=3)
        rng = random.Random(3)
        world.neighbor_pairs()  # build the store
        for sensor in world.sensors:
            sensor.motion.move_to(
                Vec2(rng.uniform(0, FIELD), rng.uniform(0, FIELD))
            )
        got = world.neighbor_pairs(with_d2=True)
        assert world.pairs_maintenance_last() == "rebuild"
        _assert_exact(got, self._expected(world, 0.0))

    def test_mixed_radius_sequence_regression(self):
        """0 -> r -> 0 across epochs: every answer exact, store swaps.

        The store is sized for the radius it last served; a larger
        request must rebuild it (movers() returns None), and the return
        to the smaller radius must serve from the bigger store by
        masking — never a stale or truncated pair set.
        """
        world = _world(n=60, seed=11)
        cache = world._cache()
        # The store is inflated by 20%, so an extra beyond 0.2 * rc
        # cannot be served from the 0-radius store.
        big = 0.25 * world.config.communication_range
        sequence = (0.0, big, 0.0)
        for period, extra in enumerate(sequence):
            # New epoch each step so the memo cannot short-circuit.
            world.sensors[0].motion.move_to(
                world.sensors[0].position + Vec2(0.01, 0.0)
            )
            got = world.neighbor_pairs(extra, with_d2=True)
            _assert_exact(got, self._expected(world, extra))
        # Step 1 builds, step 2 outgrows the store (rebuild at the
        # inflated radius), step 3 serves the smaller radius from it.
        assert cache.pair_events["rebuilds"] == 2
        assert cache.pair_events["serves"] == 1
        # And the 0-radius answer still equals the neighbour table.
        rows, cols = world.neighbor_pairs()
        table = world.neighbor_table()
        rebuilt = {sid: [] for sid in table}
        for r, c in zip(rows.tolist(), cols.tolist()):
            rebuilt[world.sensors[r].sensor_id].append(
                world.sensors[c].sensor_id
            )
        assert rebuilt == table

    def test_memo_is_bounded(self):
        world = _world(n=40, seed=2)
        cache = world._cache()
        for k in range(2 * _PAIRS_MEMO_LIMIT):
            world.neighbor_pairs(float(k))
        assert len(cache._pairs) <= _PAIRS_MEMO_LIMIT
        # Bounded, yet every answer stays exact (evicted radii recompute).
        got = world.neighbor_pairs(1.0, with_d2=True)
        _assert_exact(got, self._expected(world, 1.0))


class TestChurnInvalidation:
    """Population churn: rebuild, never repair, and survivor parity."""

    @pytest.mark.parametrize("trial", range(4))
    def test_churned_pairs_equal_fresh_world_of_survivors(self, trial):
        rng = random.Random(7000 + trial)
        world = _world(n=50, seed=trial)
        # Warm the store across a couple of drift epochs first.
        for _ in range(2):
            _jiggle(rng, world, step=1.0)
            world.neighbor_pairs()
        cache = world._cache()
        assert cache._pair_store is not None

        victims = rng.sample(
            [s.sensor_id for s in world.alive_sensors()], rng.randint(1, 8)
        )
        for sid in victims:
            world.remove_sensor(sid)
        # Churn drops the store wholesale — its anchors are meaningless
        # over a different population.
        assert cache._pair_store is None

        rows, cols = world.neighbor_pairs()
        # The churned cache's pair set equals the authoritative table of
        # the surviving population (ids, not positions).
        table = world.neighbor_table()
        rebuilt = {sid: [] for sid in table}
        for r, c in zip(rows.tolist(), cols.tolist()):
            rebuilt[world.sensors[r].sensor_id].append(
                world.sensors[c].sensor_id
            )
        assert rebuilt == table
        # With dead sensors the store is ineligible: the request must
        # have bypassed it, not repaired a stale one.
        assert world.pairs_maintenance_last() == "bypass"
        assert world.pairs_maintenance_hint() == "incremental"  # memo now

    def test_injection_forces_rebuild_not_repair(self):
        rng = random.Random(42)
        world = _world(n=40, seed=6)
        world.neighbor_pairs()
        cache = world._cache()
        repairs_before = cache.pair_events["repairs"]
        world.add_sensor(Vec2(rng.uniform(0, FIELD), rng.uniform(0, FIELD)))
        assert cache._pair_store is None
        got = world.neighbor_pairs(with_d2=True)
        assert cache.pair_events["repairs"] == repairs_before
        assert world.pairs_maintenance_last() == "rebuild"
        xs, ys = _world_arrays(world)
        limit = world.config.communication_range + _LINK_EPS
        _assert_exact(got, _fresh_pairs(xs, ys, limit))
