"""Tests for the lifecycle experiment suite (fault-injection robustness)."""

import pytest

from repro.api import RunRecord, RunSpec, SweepRunner, execute_run
from repro.experiments import SMOKE_SCALE, make_scenario
from repro.experiments.lifecycle import (
    DEFAULT_LIFECYCLE_SCHEMES,
    LIFECYCLE_SCRIPTS,
    format_lifecycle,
    lifecycle_events,
    rows_lifecycle,
    sweep_lifecycle,
)


class TestSweepStructure:
    def test_four_curated_scripts(self):
        assert set(LIFECYCLE_SCRIPTS) == {
            "mass-failure",
            "interior-cascade",
            "reinforcements",
            "door-slam",
        }

    def test_every_script_builds_a_nonempty_timeline(self):
        for script in LIFECYCLE_SCRIPTS:
            events = lifecycle_events(script, SMOKE_SCALE)
            assert events
            horizon = int(SMOKE_SCALE.duration)
            assert all(0 < e.at_period < horizon for e in events)

    def test_unknown_script_rejected(self):
        with pytest.raises(KeyError):
            lifecycle_events("volcano", SMOKE_SCALE)

    def test_sweep_crosses_scripts_schemes_and_reps(self):
        sweep = sweep_lifecycle(SMOKE_SCALE)
        reps = min(SMOKE_SCALE.repetitions, 4)
        assert len(sweep.runs) == len(LIFECYCLE_SCRIPTS) * len(
            DEFAULT_LIFECYCLE_SCHEMES
        ) * reps
        for run in sweep.runs:
            assert run.scenario.events, "every lifecycle run carries events"
            assert run.tag("script") in LIFECYCLE_SCRIPTS

    def test_repetitions_use_distinct_derived_seeds(self):
        sweep = sweep_lifecycle(SMOKE_SCALE, scripts=["mass-failure"])
        seeds = {run.scenario.seed for run in sweep.runs}
        reps = min(SMOKE_SCALE.repetitions, 4)
        assert len(seeds) == reps


class TestExecution:
    def test_records_round_trip_with_events(self):
        scenario = make_scenario(
            SMOKE_SCALE,
            seed=3,
            events=lifecycle_events("mass-failure", SMOKE_SCALE),
        )
        record = execute_run(RunSpec(scenario=scenario, scheme="CPVF"))
        assert len(record.events) == 1
        rebuilt = RunRecord.from_dict(record.to_dict())
        assert rebuilt == record

    def test_same_spec_runs_identically(self):
        scenario = make_scenario(
            SMOKE_SCALE,
            seed=5,
            events=lifecycle_events("interior-cascade", SMOKE_SCALE),
        )
        spec = RunSpec(scenario=scenario, scheme="CPVF")
        assert execute_run(spec) == execute_run(spec)

    def test_serial_and_sharded_sweeps_agree(self):
        sweep = sweep_lifecycle(
            SMOKE_SCALE, schemes=("CPVF", "VOR"), scripts=["reinforcements"]
        )
        serial = SweepRunner(jobs=1).run(sweep)
        sharded = SweepRunner(jobs=2).run(sweep)
        assert serial == sharded

    @pytest.mark.parametrize("scheme", ["CPVF", "FLOOR"])
    def test_mass_failure_recovery_contract(self, scheme):
        """The acceptance scenario: a 20% kill recovers >= 90% coverage."""
        scenario = make_scenario(
            SMOKE_SCALE,
            seed=1,
            events=lifecycle_events("mass-failure", SMOKE_SCALE),
        )
        record = execute_run(RunSpec(scenario=scenario, scheme=scheme))
        outcome = record.events[0]
        assert outcome.kind == "failure"
        assert outcome.pre_coverage > 0.0
        assert outcome.recovery_ratio >= 0.9

    def test_vor_baseline_reports_outcomes_too(self):
        scenario = make_scenario(
            SMOKE_SCALE,
            seed=2,
            events=lifecycle_events("door-slam", SMOKE_SCALE),
        )
        record = execute_run(RunSpec(scenario=scenario, scheme="VOR"))
        assert len(record.events) == 2
        assert [o.kind for o in record.events] == ["obstacle", "clear-obstacle"]
        # VOR has no protocol messages; bursts are structurally zero.
        assert all(o.message_burst == 0 for o in record.events)


class TestPresentation:
    def test_rows_aggregate_per_script_and_scheme(self):
        sweep = sweep_lifecycle(
            SMOKE_SCALE, schemes=("CPVF",), scripts=["mass-failure"]
        )
        records = SweepRunner(jobs=1).run(sweep)
        rows = rows_lifecycle(records)
        assert len(rows) == 1
        row = rows[0]
        assert row.script == "mass-failure"
        assert row.scheme == "CPVF"
        assert row.events_per_run == 1
        assert 0.0 <= row.coverage <= 1.0
        assert row.recovery_ratio > 0.0

        report = format_lifecycle(rows)
        assert "mass-failure" in report
        assert "CPVF" in report
        assert "recovery" in report
