"""End-to-end CLI smoke test: sharded run with JSON artifact persistence."""

import json

from repro.api import RunRecord
from repro.experiments.runner import EXPERIMENTS, main


class TestRunnerCLI:
    def test_list_prints_experiments(self, capsys):
        assert main(["--list"]) == 0
        listed = capsys.readouterr().out.split()
        assert listed == sorted(EXPERIMENTS)

    def test_end_to_end_sharded_run_writes_loadable_artifacts(self, tmp_path, capsys):
        exit_code = main(
            [
                "--scale",
                "smoke",
                "--only",
                "fig3",
                "--jobs",
                "2",
                "--trace-every",
                "20",
                "--out",
                str(tmp_path),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "coverage over time" in out  # --trace-every renders the series

        artifact = tmp_path / "fig3.json"
        assert artifact.exists()
        payload = json.loads(artifact.read_text())
        assert payload["experiment"] == "fig3"
        assert payload["jobs"] == 2
        assert payload["trace_every"] == 20
        assert "Figure 3" in payload["report"]

        records = [RunRecord.from_dict(r) for r in payload["records"]]
        assert [r.tag("scenario") for r in records] == ["a", "b", "c"]
        for record in records:
            assert 0.0 <= record.coverage <= 1.0
            assert record.trace, "traced records should persist their series"

    def test_unknown_experiment_is_an_argparse_error(self, capsys):
        try:
            main(["--only", "fig99"])
        except SystemExit as exc:
            assert exc.code == 2
        else:  # pragma: no cover - argparse always exits
            raise AssertionError("expected SystemExit")
