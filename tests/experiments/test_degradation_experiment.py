"""Tests for the degradation experiment (loss x staleness grid)."""

import pytest

from repro.api import SweepRunner
from repro.experiments import SMOKE_SCALE
from repro.experiments.degradation import (
    DEFAULT_DEGRADATION_SCHEMES,
    DEGRADATION_LOSSES,
    DEGRADATION_STALENESS,
    format_degradation,
    rows_degradation,
    sweep_degradation,
)


class TestSweepStructure:
    def test_grid_crosses_losses_staleness_schemes_and_reps(self):
        sweep = sweep_degradation(SMOKE_SCALE)
        reps = min(SMOKE_SCALE.repetitions, 3)
        assert len(sweep.runs) == (
            len(DEGRADATION_LOSSES)
            * len(DEGRADATION_STALENESS)
            * len(DEFAULT_DEGRADATION_SCHEMES)
            * reps
        )

    def test_perfect_cell_carries_no_network_spec(self):
        sweep = sweep_degradation(SMOKE_SCALE)
        for run in sweep.runs:
            if run.tag("loss") == 0.0 and run.tag("staleness") == 0:
                assert run.network is None
            else:
                assert run.network is not None
                assert not run.network.is_structural()
                assert run.network.loss == run.tag("loss")
                assert run.network.staleness == run.tag("staleness")

    def test_cells_reuse_the_same_derived_seed_scenarios(self):
        """Ratios compare paired runs: every cell sees the same scenarios."""
        sweep = sweep_degradation(SMOKE_SCALE, schemes=("CPVF",))
        by_cell = {}
        for run in sweep.runs:
            cell = (run.tag("loss"), run.tag("staleness"))
            by_cell.setdefault(cell, []).append(run.scenario.seed)
        seed_sets = {tuple(sorted(seeds)) for seeds in by_cell.values()}
        assert len(seed_sets) == 1


class TestExecution:
    def test_serial_and_sharded_grids_agree(self):
        sweep = sweep_degradation(
            SMOKE_SCALE,
            schemes=("CPVF", "FLOOR"),
            losses=(0.0, 0.1),
            staleness_levels=(0,),
        )
        serial = SweepRunner(jobs=1).run(sweep)
        sharded = SweepRunner(jobs=2).run(sweep)
        assert serial == sharded

    def test_rows_report_ratios_against_the_perfect_cell(self):
        sweep = sweep_degradation(
            SMOKE_SCALE,
            schemes=("CPVF",),
            losses=(0.0, 0.1),
            staleness_levels=(0,),
        )
        records = SweepRunner(jobs=1).run(sweep)
        rows = rows_degradation(records)
        assert len(rows) == 2
        baseline = next(r for r in rows if r.loss == 0.0)
        degraded = next(r for r in rows if r.loss == 0.1)
        assert baseline.coverage_ratio == pytest.approx(1.0)
        assert baseline.message_overhead == pytest.approx(1.0)
        assert degraded.coverage_ratio == pytest.approx(
            degraded.coverage / baseline.coverage
        )
        # The acceptance bar, at experiment granularity.
        assert degraded.coverage_ratio >= 0.85

        report = format_degradation(rows)
        assert "staleness 0" in report
        assert "CPVF" in report
        assert "10%" in report
