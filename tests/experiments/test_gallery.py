"""End-to-end tests for the gallery experiment over the curated suite."""

from repro.api import SweepRunner
from repro.experiments.common import ExperimentScale
from repro.experiments.gallery import (
    DEFAULT_GALLERY_SCHEMES,
    format_gallery,
    rows_gallery,
    sweep_gallery,
)
from repro.scenarios import DEFAULT_SUITE

#: Tiny scale so the full suite x scheme grid stays test-suite friendly.
TINY_SCALE = ExperimentScale(
    field_size=240.0,
    sensor_count=16,
    duration=40.0,
    coverage_resolution=15.0,
    repetitions=1,
)


class TestGallerySweep:
    def test_sweep_covers_suite_times_schemes(self):
        sweep = sweep_gallery(TINY_SCALE)
        assert len(sweep.runs) == len(DEFAULT_SUITE) * len(DEFAULT_GALLERY_SCHEMES)
        scenarios = {run.tag("scenario") for run in sweep.runs}
        assert scenarios == set(DEFAULT_SUITE.names())

    def test_subset_and_scheme_selection(self):
        sweep = sweep_gallery(
            TINY_SCALE, schemes=("FLOOR",), scenarios=["maze-quad", "rooms-grid"]
        )
        assert [run.tag("scenario") for run in sweep.runs] == [
            "maze-quad",
            "rooms-grid",
        ]
        assert {run.scheme for run in sweep.runs} == {"FLOOR"}

    def test_sharded_run_matches_serial_over_curated_suite(self):
        sweep = sweep_gallery(TINY_SCALE)
        serial = SweepRunner(jobs=1).run(sweep)
        sharded = SweepRunner(jobs=2).run(sweep)
        assert serial == sharded

        rows = rows_gallery(serial)
        assert len(rows) == len(sweep.runs)
        for row in rows:
            assert 0.0 <= row.coverage <= 1.0
            assert row.average_moving_distance >= 0.0

        report = format_gallery(rows)
        for name in DEFAULT_SUITE.names():
            assert name in report
        for scheme in DEFAULT_GALLERY_SCHEMES:
            assert scheme in report
